//! Deflation-feasibility analysis of cloud traces (§3.2, Figures 5–12).
//!
//! Generates the synthetic Azure and Alibaba populations and reports how much
//! of the time VMs / containers would sit above a deflated allocation, broken
//! down by workload class — the analysis that motivates deflation in the
//! first place.
//!
//! Run with: `cargo run --release --example feasibility_analysis`

use vmdeflate::core::vm::VmClass;
use vmdeflate::traces::alibaba::{AlibabaTraceConfig, AlibabaTraceGenerator};
use vmdeflate::traces::analysis;
use vmdeflate::traces::azure::{AzureTraceConfig, AzureTraceGenerator};

fn main() {
    let vms = AzureTraceGenerator::generate(&AzureTraceConfig {
        num_vms: 2_000,
        duration_hours: 24.0,
        seed: 1,
        ..Default::default()
    });
    let levels = [0.1, 0.3, 0.5, 0.7];

    println!("Fraction of time VMs exceed their deflated CPU allocation (median VM):");
    println!(
        "{:>20}  {:>6} {:>6} {:>6} {:>6}",
        "class", "10%", "30%", "50%", "70%"
    );
    for (class, points) in analysis::cpu_feasibility_by_class(&vms, &levels) {
        let row: Vec<String> = points
            .iter()
            .map(|p| format!("{:>5.1}%", 100.0 * p.distribution.median))
            .collect();
        println!("{:>20}  {}", class.to_string(), row.join(" "));
    }

    let interactive_slack = analysis::cpu_feasibility_by_class(&vms, &[0.5])
        .into_iter()
        .find(|(c, _)| *c == VmClass::Interactive)
        .map(|(_, p)| p[0].distribution.mean)
        .unwrap_or(0.0);
    println!(
        "\nEven at 50% deflation the average interactive VM is underallocated only {:.1}% of the time.",
        100.0 * interactive_slack
    );

    let containers = AlibabaTraceGenerator::generate(&AlibabaTraceConfig {
        num_containers: 1_000,
        duration_hours: 24.0,
        seed: 2,
        ..Default::default()
    });
    let bw = analysis::memory_bandwidth_usage(&containers);
    let disk = analysis::disk_feasibility(&containers, &[0.5]);
    let net = analysis::network_feasibility(&containers, &[0.7]);
    println!("\nAlibaba container population:");
    println!(
        "  memory-bandwidth utilisation: mean {:.3}%, max {:.2}%",
        100.0 * bw.mean,
        100.0 * bw.max
    );
    println!(
        "  disk underallocation at 50% deflation: {:.2}% of the time (mean container)",
        100.0 * disk[0].distribution.mean
    );
    println!(
        "  network underallocation at 70% deflation: {:.2}% of the time (mean container)",
        100.0 * net[0].distribution.mean
    );
}
