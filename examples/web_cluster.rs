//! Deflation-aware web cluster (the scenario of §7.3 / Figure 19).
//!
//! Three Wikipedia replicas sit behind a weighted-round-robin load balancer;
//! two of them run on deflatable VMs. As the deflatable replicas are deflated
//! harder and harder, the vanilla load balancer keeps sending them a third of
//! the traffic each and the tail latency blows up, while the deflation-aware
//! balancer re-weights traffic towards the undeflated replica.
//!
//! Run with: `cargo run --release --example web_cluster`

use vmdeflate::appsim::loadbalancer::{LbPolicy, WebCluster, WebClusterConfig};

fn main() {
    let config = WebClusterConfig::figure19(60.0, 7);
    println!(
        "3 replicas x {} cores, 2 deflatable, {} req/s\n",
        config.replica_cores[0], config.workload.rate_per_sec
    );
    println!(
        "{:>10}  {:>14} {:>14}  {:>14} {:>14}",
        "deflation", "vanilla mean", "aware mean", "vanilla p90", "aware p90"
    );
    for deflation in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let vanilla = WebCluster::run(&config, LbPolicy::Vanilla, deflation);
        let aware = WebCluster::run(&config, LbPolicy::DeflationAware, deflation);
        println!(
            "{:>9.0}%  {:>13.3}s {:>13.3}s  {:>13.3}s {:>13.3}s",
            deflation * 100.0,
            vanilla.mean(),
            aware.mean(),
            vanilla.p90(),
            aware.p90()
        );
    }
    println!("\nThe deflation-aware balancer keeps tail latency low even at 80% deflation.");
}
