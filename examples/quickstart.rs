//! Quickstart: deflate VMs on a single server.
//!
//! This example walks through the core workflow of the library:
//!
//! 1. create a simulated server and launch VMs on it through the per-server
//!    local controller;
//! 2. admit a new VM under resource pressure, letting the proportional
//!    deflation policy shrink the residents to make room;
//! 3. inspect the deflation notifications the controller emits (the signal a
//!    deflation-aware load balancer consumes);
//! 4. remove a VM and watch the survivors reinflate.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;
use vmdeflate::core::policy::ProportionalDeflation;
use vmdeflate::core::prelude::*;
use vmdeflate::hypervisor::prelude::*;

fn main() {
    // A 32-core, 64 GiB server.
    let server = SimServer::new(
        ServerId(0),
        ResourceVector::new(32_000.0, 65_536.0, 2_000.0, 10_000.0),
    );
    let policy = Arc::new(ProportionalDeflation::default());
    let mut controller = LocalController::new(server, policy, DeflationMechanism::Hybrid);

    // Two deflatable web VMs fill most of the server.
    for (id, cores, mem_gib) in [(1u64, 16.0, 24.0), (2, 12.0, 24.0)] {
        let spec = VmSpec::deflatable(
            VmId(id),
            VmClass::Interactive,
            ResourceVector::new(cores * 1000.0, mem_gib * 1024.0, 500.0, 2_000.0),
        )
        .with_priority(Priority::new(0.4));
        let outcome = controller.try_admit(spec).expect("valid spec");
        println!("vm-{id}: admitted -> {outcome:?}");
    }

    // A high-priority on-demand VM arrives; the residents must shrink.
    let on_demand = VmSpec::on_demand(
        VmId(3),
        VmClass::Unknown,
        ResourceVector::new(12_000.0, 24_576.0, 500.0, 2_000.0),
    );
    let outcome = controller.try_admit(on_demand).expect("valid spec");
    println!("vm-3 (on-demand): admitted -> {outcome:?}");

    println!("\nDeflation notifications (what the load balancer would see):");
    for note in controller.take_notifications() {
        println!(
            "  {}: {} -> {}",
            note.vm, note.old_allocation, note.new_allocation
        );
    }

    println!("\nAllocations after admission under pressure:");
    for domain in controller.server().domains() {
        println!(
            "  {} deflated {:.0}% -> {}",
            domain.spec.id,
            100.0 * domain.deflation_fraction(ResourceKind::Cpu),
            domain.effective_allocation()
        );
    }

    // The on-demand VM departs; the deflated VMs get their resources back.
    controller.on_departure(VmId(3)).expect("vm-3 is resident");
    println!("\nAfter vm-3 departs (reinflation):");
    for domain in controller.server().domains() {
        println!(
            "  {} deflated {:.0}% -> {}",
            domain.spec.id,
            100.0 * domain.deflation_fraction(ResourceKind::Cpu),
            domain.effective_allocation()
        );
    }
}
