//! Trace-driven cluster simulation (the experiment of §7.4).
//!
//! Generates a synthetic Azure-like VM trace, sizes a cluster for a chosen
//! overcommitment level, and replays the trace under three deflation policies
//! and the preemption baseline, reporting reclamation-failure probability,
//! throughput loss and per-server revenue.
//!
//! Run with: `cargo run --release --example cluster_simulation`

use std::sync::Arc;
use vmdeflate::cluster::prelude::*;
use vmdeflate::core::policy::{DeterministicDeflation, PriorityDeflation, ProportionalDeflation};
use vmdeflate::core::pricing::{PricingPolicy, RateCard};
use vmdeflate::traces::azure::{AzureTraceConfig, AzureTraceGenerator};

fn main() {
    // 1. Workload: 2,000 synthetic Azure VMs over 24 hours.
    let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
        num_vms: 2_000,
        duration_hours: 24.0,
        seed: 42,
        ..Default::default()
    });
    let workload = workload_from_azure(&traces, MinAllocationRule::None);

    // 2. Size the cluster for 50 % overcommitment.
    let capacity = paper_server_capacity();
    let baseline_servers = min_cluster_size(&workload, capacity);
    let servers = servers_for_overcommitment(&workload, capacity, 0.5);
    println!(
        "workload: {} VMs, baseline cluster {} servers, overcommitted cluster {} servers\n",
        workload.len(),
        baseline_servers,
        servers
    );

    // 3. Replay the trace under each reclamation mode.
    let modes: Vec<(&str, ReclamationMode)> = vec![
        (
            "proportional",
            ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
        ),
        (
            "priority",
            ReclamationMode::Deflation(Arc::new(PriorityDeflation::default())),
        ),
        (
            "deterministic",
            ReclamationMode::Deflation(Arc::new(DeterministicDeflation::binary())),
        ),
        ("preemption", ReclamationMode::Preemption),
    ];
    let rates = RateCard::default();
    println!(
        "{:>14}  {:>10} {:>12} {:>12} {:>16}",
        "policy", "failures", "thpt loss", "deflated", "revenue/server"
    );
    for (name, mode) in modes {
        let config = ClusterConfig::paper_default(servers);
        let result = ClusterSimulation::new(config, mode).run(&workload);
        println!(
            "{:>14}  {:>9.2}% {:>11.2}% {:>11.1}% {:>15.2}$",
            name,
            100.0 * result.failure_probability(),
            100.0 * result.mean_throughput_loss(),
            100.0 * result.deflated_vm_fraction(),
            result.deflatable_revenue_per_server(&PricingPolicy::static_default(), &rates),
        );
    }
    println!("\nDeflation keeps failures near zero where preemption kills VMs outright.");
}
