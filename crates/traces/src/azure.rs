//! Synthetic Azure-like VM trace generator.
//!
//! The paper's feasibility analysis (§3.2.1, Figures 5–8) and its cluster
//! simulation (§7.1.2, Figures 20–22) consume the public Azure 2017 VM
//! dataset: per-VM CPU-utilisation time series at 5-minute granularity, a
//! workload-class label (interactive / delay-insensitive / unknown), VM sizes
//! and lifetimes. The dataset itself is not available offline, so this module
//! generates a statistically similar synthetic population:
//!
//! * **low average utilisation** — the central observation the paper builds
//!   on ("the resource utilization of cloud VMs is low");
//! * **interactive VMs are more over-provisioned than batch VMs** — they show
//!   lower utilisation and therefore more deflation slack (Figure 6);
//! * **utilisation is independent of VM size** (Figure 7);
//! * **heavy-tailed peaks** — a minority of VMs run hot, which drives the
//!   95th-percentile breakdown of Figure 8;
//! * **diurnal pattern** for interactive workloads, burstier behaviour for
//!   batch.
//!
//! Every generator takes an explicit seed so experiments are reproducible.

use crate::dist;
use crate::timeseries::{TimeSeries, DEFAULT_INTERVAL_SECS};
use deflate_core::resources::ResourceVector;
use deflate_core::vm::{Priority, VmClass, VmId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// VM memory-size groups used by Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeClass {
    /// ≤ 2 GB of RAM.
    Small,
    /// > 2 GB and ≤ 8 GB.
    Medium,
    /// > 8 GB.
    Large,
}

impl SizeClass {
    /// All size classes in canonical order.
    pub const ALL: [SizeClass; 3] = [SizeClass::Small, SizeClass::Medium, SizeClass::Large];

    /// Classify a memory size in MiB.
    pub fn of_memory_mb(memory_mb: f64) -> Self {
        if memory_mb <= 2048.0 {
            SizeClass::Small
        } else if memory_mb <= 8192.0 {
            SizeClass::Medium
        } else {
            SizeClass::Large
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            SizeClass::Small => "<=2GB",
            SizeClass::Medium => "2-8GB",
            SizeClass::Large => ">8GB",
        }
    }
}

/// Peak-utilisation groups used by Figure 8 (by 95th-percentile CPU usage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeakClass {
    /// 95th-percentile utilisation below 33 %.
    Low,
    /// Between 33 % and 66 %.
    Moderate,
    /// Between 66 % and 80 %.
    High,
    /// Above 80 %.
    VeryHigh,
}

impl PeakClass {
    /// All peak classes in canonical order.
    pub const ALL: [PeakClass; 4] = [
        PeakClass::Low,
        PeakClass::Moderate,
        PeakClass::High,
        PeakClass::VeryHigh,
    ];

    /// Classify a 95th-percentile utilisation in `[0, 1]`.
    pub fn of_p95(p95: f64) -> Self {
        if p95 < 0.33 {
            PeakClass::Low
        } else if p95 < 0.66 {
            PeakClass::Moderate
        } else if p95 < 0.80 {
            PeakClass::High
        } else {
            PeakClass::VeryHigh
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            PeakClass::Low => "<33%",
            PeakClass::Moderate => "33-66%",
            PeakClass::High => "66-80%",
            PeakClass::VeryHigh => ">80%",
        }
    }
}

/// One synthetic Azure VM: metadata plus its CPU-utilisation time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AzureVmTrace {
    /// VM identity.
    pub vm_id: VmId,
    /// Workload-class label.
    pub class: VmClass,
    /// Allocated size (CPU millicores + memory MiB; disk/net left at their
    /// defaults since the Azure dataset does not report them).
    pub size: ResourceVector,
    /// Arrival time, seconds from the start of the trace.
    pub start_secs: f64,
    /// Lifetime, seconds.
    pub lifetime_secs: f64,
    /// CPU utilisation relative to the allocation, 5-minute samples.
    pub cpu_util: TimeSeries,
}

impl AzureVmTrace {
    /// End time of the VM (seconds from the start of the trace).
    pub fn end_secs(&self) -> f64 {
        self.start_secs + self.lifetime_secs
    }

    /// 95th-percentile CPU utilisation.
    pub fn p95_cpu(&self) -> f64 {
        self.cpu_util.percentile(95.0)
    }

    /// Memory size class (Figure 7 grouping).
    pub fn size_class(&self) -> SizeClass {
        SizeClass::of_memory_mb(self.size.memory())
    }

    /// Peak class (Figure 8 grouping).
    pub fn peak_class(&self) -> PeakClass {
        PeakClass::of_p95(self.p95_cpu())
    }

    /// Deflation priority derived from the 95th-percentile CPU usage, as the
    /// cluster simulation does (§7.1.2).
    pub fn priority(&self) -> Priority {
        Priority::from_p95_utilization(self.p95_cpu())
    }

    /// Whether the cluster simulation treats this VM as deflatable
    /// (interactive VMs are deflatable; unknown and batch VMs are treated as
    /// on-demand, §7.1.2).
    pub fn deflatable(&self) -> bool {
        self.class == VmClass::Interactive
    }
}

/// Configuration for the synthetic Azure trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AzureTraceConfig {
    /// Number of VMs to generate.
    pub num_vms: usize,
    /// Total trace horizon in hours.
    pub duration_hours: f64,
    /// Fraction of VMs labelled interactive (the paper reports the
    /// interactive class at roughly 50 % of VMs once unknowns are split).
    pub interactive_fraction: f64,
    /// Fraction labelled delay-insensitive (batch); the remainder is
    /// `unknown`.
    pub delay_insensitive_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AzureTraceConfig {
    fn default() -> Self {
        AzureTraceConfig {
            num_vms: 1_000,
            duration_hours: 24.0,
            interactive_fraction: 0.5,
            delay_insensitive_fraction: 0.3,
            seed: 0xA2D7,
        }
    }
}

impl AzureTraceConfig {
    /// Convenience constructor for a given VM count and seed.
    pub fn with_vms(num_vms: usize, seed: u64) -> Self {
        AzureTraceConfig {
            num_vms,
            seed,
            ..Default::default()
        }
    }
}

/// Deterministic synthetic Azure trace generator.
#[derive(Debug, Clone, Copy, Default)]
pub struct AzureTraceGenerator;

impl AzureTraceGenerator {
    /// Generate the full VM population described by `config`.
    pub fn generate(config: &AzureTraceConfig) -> Vec<AzureVmTrace> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let horizon_secs = config.duration_hours.max(1.0) * 3600.0;
        (0..config.num_vms)
            .map(|i| Self::generate_vm(&mut rng, VmId(i as u64), config, horizon_secs))
            .collect()
    }

    fn generate_vm(
        rng: &mut StdRng,
        vm_id: VmId,
        config: &AzureTraceConfig,
        horizon_secs: f64,
    ) -> AzureVmTrace {
        // Class label.
        let u: f64 = rng.gen_range(0.0..1.0);
        let class = if u < config.interactive_fraction {
            VmClass::Interactive
        } else if u < config.interactive_fraction + config.delay_insensitive_fraction {
            VmClass::DelayInsensitive
        } else {
            VmClass::Unknown
        };

        // Size: Azure offerings are 1–32 cores with a few GiB per core; the
        // distribution is skewed towards small VMs.
        let cores = [1.0, 2.0, 4.0, 8.0, 16.0, 24.0, 32.0];
        let core_weights = [0.30, 0.28, 0.20, 0.12, 0.06, 0.02, 0.02];
        let cores = cores[dist::weighted_index(rng, &core_weights)];
        let gib_per_core = [0.75, 1.0, 1.75, 2.0, 3.5, 4.0, 8.0];
        let mem_weights = [0.15, 0.15, 0.25, 0.20, 0.12, 0.08, 0.05];
        let memory_mb = cores * gib_per_core[dist::weighted_index(rng, &mem_weights)] * 1024.0;
        let size = ResourceVector::new(cores * 1000.0, memory_mb, 100.0, 1000.0);

        // Lifetime: heavy-tailed, between 30 minutes and the full horizon.
        let lifetime_secs = dist::bounded_pareto(rng, 1.1, 1800.0, horizon_secs).min(horizon_secs);
        let start_secs = rng.gen_range(0.0..(horizon_secs - lifetime_secs).max(1.0));

        // Utilisation profile. Parameters are drawn per VM; the class shifts
        // the distribution (interactive = lower base utilisation, stronger
        // diurnal swing), while size intentionally does not (Figure 7).
        let (mu, sigma, diurnal_amp, spike_prob, spike_mag) = match class {
            VmClass::Interactive => (-2.4f64, 0.80f64, 0.40, 0.010, 0.45),
            VmClass::DelayInsensitive => (-1.40, 0.70, 0.15, 0.05, 0.45),
            VmClass::Unknown => (-1.8, 0.75, 0.30, 0.03, 0.45),
        };
        let base = dist::log_normal(rng, mu, sigma).min(0.85);
        // A small share of VMs in every class run persistently hot, which
        // produces the >80 % peak group of Figure 8.
        let hot = rng.gen_bool(0.05);
        let base = if hot { base.max(0.72) } else { base };
        let diurnal_amp = diurnal_amp * rng.gen_range(0.5..1.5) * base;
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        let noise_sigma = 0.04 + 0.08 * base;

        let n_samples = ((lifetime_secs / DEFAULT_INTERVAL_SECS).ceil() as usize).max(1);
        let mut samples = Vec::with_capacity(n_samples);
        for k in 0..n_samples {
            let t_secs = start_secs + k as f64 * DEFAULT_INTERVAL_SECS;
            let day_fraction = (t_secs / 86_400.0) * std::f64::consts::TAU;
            let diurnal = diurnal_amp * (day_fraction + phase).sin();
            let noise = dist::normal(rng, 0.0, noise_sigma);
            let spike = if rng.gen_bool(spike_prob) {
                rng.gen_range(0.0..spike_mag)
            } else {
                0.0
            };
            samples.push((base + diurnal + noise + spike).clamp(0.0, 1.0));
        }

        AzureVmTrace {
            vm_id,
            class,
            size,
            start_secs,
            lifetime_secs,
            cpu_util: TimeSeries::five_minute(samples),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_population() -> Vec<AzureVmTrace> {
        AzureTraceGenerator::generate(&AzureTraceConfig {
            num_vms: 600,
            duration_hours: 24.0,
            ..Default::default()
        })
    }

    #[test]
    fn generates_requested_population() {
        let vms = sample_population();
        assert_eq!(vms.len(), 600);
        for vm in &vms {
            assert!(vm.lifetime_secs > 0.0);
            assert!(vm.end_secs() <= 24.0 * 3600.0 + 1.0);
            assert!(!vm.cpu_util.is_empty());
            assert!(vm.size.cpu() >= 1000.0);
            assert!(vm.size.memory() > 0.0);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = AzureTraceGenerator::generate(&AzureTraceConfig::with_vms(50, 7));
        let b = AzureTraceGenerator::generate(&AzureTraceConfig::with_vms(50, 7));
        assert_eq!(a, b);
        let c = AzureTraceGenerator::generate(&AzureTraceConfig::with_vms(50, 8));
        assert_ne!(a, c);
    }

    #[test]
    fn class_mix_matches_config() {
        let vms = sample_population();
        let interactive = vms
            .iter()
            .filter(|v| v.class == VmClass::Interactive)
            .count() as f64
            / vms.len() as f64;
        assert!(
            (interactive - 0.5).abs() < 0.08,
            "interactive = {interactive}"
        );
    }

    #[test]
    fn utilisation_is_low_on_average() {
        // "The resource utilization of cloud VMs is low" — median mean-CPU
        // utilisation should be well under 50 %.
        let vms = sample_population();
        let mut means: Vec<f64> = vms.iter().map(|v| v.cpu_util.mean()).collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = means[means.len() / 2];
        assert!(median < 0.4, "median mean utilisation {median}");
    }

    #[test]
    fn interactive_vms_have_more_slack_than_batch() {
        let vms = sample_population();
        let mean_of = |class: VmClass| {
            let v: Vec<f64> = vms
                .iter()
                .filter(|t| t.class == class)
                .map(|t| t.cpu_util.mean())
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        assert!(
            mean_of(VmClass::Interactive) < mean_of(VmClass::DelayInsensitive),
            "interactive should be less utilised than batch"
        );
    }

    #[test]
    fn peak_classes_cover_the_spectrum() {
        let vms = sample_population();
        let mut counts = std::collections::HashMap::new();
        for vm in &vms {
            *counts.entry(vm.peak_class()).or_insert(0usize) += 1;
        }
        // Every group of Figure 8 should be populated.
        for class in PeakClass::ALL {
            assert!(
                counts.get(&class).copied().unwrap_or(0) > 0,
                "no VMs in peak class {class:?}"
            );
        }
    }

    #[test]
    fn size_and_peak_classification() {
        assert_eq!(SizeClass::of_memory_mb(1024.0), SizeClass::Small);
        assert_eq!(SizeClass::of_memory_mb(4096.0), SizeClass::Medium);
        assert_eq!(SizeClass::of_memory_mb(32_768.0), SizeClass::Large);
        assert_eq!(PeakClass::of_p95(0.1), PeakClass::Low);
        assert_eq!(PeakClass::of_p95(0.5), PeakClass::Moderate);
        assert_eq!(PeakClass::of_p95(0.7), PeakClass::High);
        assert_eq!(PeakClass::of_p95(0.95), PeakClass::VeryHigh);
        assert_eq!(SizeClass::Small.label(), "<=2GB");
        assert_eq!(PeakClass::VeryHigh.label(), ">80%");
    }

    #[test]
    fn priority_and_deflatability_derivation() {
        let vms = sample_population();
        let interactive = vms
            .iter()
            .find(|v| v.class == VmClass::Interactive)
            .unwrap();
        assert!(interactive.deflatable());
        let batch = vms
            .iter()
            .find(|v| v.class == VmClass::DelayInsensitive)
            .unwrap();
        assert!(!batch.deflatable());
        // Priorities must come from the discrete levels.
        for vm in vms.iter().take(50) {
            assert!(Priority::LEVELS.contains(&vm.priority()));
        }
    }

    #[test]
    fn all_size_classes_present() {
        let vms = sample_population();
        for class in SizeClass::ALL {
            assert!(
                vms.iter().filter(|v| v.size_class() == class).count() > 0,
                "no VMs in size class {class:?}"
            );
        }
    }
}
