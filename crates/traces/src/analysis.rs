//! Deflation-feasibility analysis over resource-usage traces (§3.2).
//!
//! These functions compute exactly the quantities plotted in Figures 5–12:
//! for each deflation level, the per-VM (or per-container) *fraction of time
//! spent above the deflated allocation*, summarised as a box plot across the
//! population, with the breakdowns by workload class, VM memory size and
//! 95th-percentile peak utilisation that the paper uses.

use crate::alibaba::ContainerTrace;
use crate::azure::{AzureVmTrace, PeakClass, SizeClass};
use crate::timeseries::{BoxplotSummary, TimeSeries};
use deflate_core::vm::VmClass;
use serde::{Deserialize, Serialize};

/// The deflation levels swept by the feasibility figures (10 %–90 %).
pub const DEFLATION_LEVELS: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// One row of a feasibility figure: a deflation level and the distribution of
/// per-VM underallocation fractions at that level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeasibilityPoint {
    /// Deflation level in `[0, 1]`.
    pub deflation: f64,
    /// Distribution of "fraction of time underallocated" across the
    /// population.
    pub distribution: BoxplotSummary,
}

/// Compute the underallocation distribution of a set of series at one
/// deflation level.
pub fn feasibility_at<'a>(
    series: impl Iterator<Item = &'a TimeSeries>,
    deflation: f64,
) -> BoxplotSummary {
    let fractions: Vec<f64> = series
        .map(|s| s.fraction_underallocated(deflation))
        .collect();
    BoxplotSummary::from_values(&fractions)
}

/// Sweep a set of series over several deflation levels.
pub fn feasibility_sweep<'a, I>(series: I, levels: &[f64]) -> Vec<FeasibilityPoint>
where
    I: Iterator<Item = &'a TimeSeries> + Clone,
{
    levels
        .iter()
        .map(|&deflation| FeasibilityPoint {
            deflation,
            distribution: feasibility_at(series.clone(), deflation),
        })
        .collect()
}

/// Figure 5: CPU-deflation feasibility across the whole Azure VM population.
pub fn cpu_feasibility(vms: &[AzureVmTrace], levels: &[f64]) -> Vec<FeasibilityPoint> {
    feasibility_sweep(vms.iter().map(|v| &v.cpu_util), levels)
}

/// Figure 6: CPU-deflation feasibility broken down by workload class.
pub fn cpu_feasibility_by_class(
    vms: &[AzureVmTrace],
    levels: &[f64],
) -> Vec<(VmClass, Vec<FeasibilityPoint>)> {
    VmClass::ALL
        .iter()
        .map(|&class| {
            let points = feasibility_sweep(
                vms.iter()
                    .filter(move |v| v.class == class)
                    .map(|v| &v.cpu_util),
                levels,
            );
            (class, points)
        })
        .collect()
}

/// Figure 7: CPU-deflation feasibility broken down by VM memory size.
pub fn cpu_feasibility_by_size(
    vms: &[AzureVmTrace],
    levels: &[f64],
) -> Vec<(SizeClass, Vec<FeasibilityPoint>)> {
    SizeClass::ALL
        .iter()
        .map(|&size| {
            let points = feasibility_sweep(
                vms.iter()
                    .filter(move |v| v.size_class() == size)
                    .map(|v| &v.cpu_util),
                levels,
            );
            (size, points)
        })
        .collect()
}

/// Figure 8: CPU-deflation feasibility broken down by 95th-percentile peak
/// utilisation.
pub fn cpu_feasibility_by_peak(
    vms: &[AzureVmTrace],
    levels: &[f64],
) -> Vec<(PeakClass, Vec<FeasibilityPoint>)> {
    PeakClass::ALL
        .iter()
        .map(|&peak| {
            let points = feasibility_sweep(
                vms.iter()
                    .filter(move |v| v.peak_class() == peak)
                    .map(|v| &v.cpu_util),
                levels,
            );
            (peak, points)
        })
        .collect()
}

/// Figure 9: raw memory-occupancy feasibility of the Alibaba containers.
pub fn memory_feasibility(containers: &[ContainerTrace], levels: &[f64]) -> Vec<FeasibilityPoint> {
    feasibility_sweep(containers.iter().map(|c| &c.memory_util), levels)
}

/// Figure 10: distribution of memory-bus bandwidth utilisation across
/// containers (mean per container).
pub fn memory_bandwidth_usage(containers: &[ContainerTrace]) -> BoxplotSummary {
    let means: Vec<f64> = containers.iter().map(|c| c.memory_bw_util.mean()).collect();
    BoxplotSummary::from_values(&means)
}

/// Figure 11: disk-bandwidth deflation feasibility of the Alibaba containers.
pub fn disk_feasibility(containers: &[ContainerTrace], levels: &[f64]) -> Vec<FeasibilityPoint> {
    feasibility_sweep(containers.iter().map(|c| &c.disk_util), levels)
}

/// Figure 12: network-bandwidth deflation feasibility of the Alibaba
/// containers (incoming + outgoing traffic combined).
pub fn network_feasibility(containers: &[ContainerTrace], levels: &[f64]) -> Vec<FeasibilityPoint> {
    feasibility_sweep(containers.iter().map(|c| &c.net_util), levels)
}

/// Mean throughput loss across a VM population when every VM is deflated to
/// `1 − deflation` of its allocation for its whole lifetime — the worst-case
/// accounting behind Figure 4 / §7.4.2.
pub fn mean_throughput_loss(vms: &[AzureVmTrace], deflation: f64) -> f64 {
    if vms.is_empty() {
        return 0.0;
    }
    let allocation = 1.0 - deflation.clamp(0.0, 1.0);
    vms.iter()
        .map(|v| v.cpu_util.throughput_loss(allocation))
        .sum::<f64>()
        / vms.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alibaba::{AlibabaTraceConfig, AlibabaTraceGenerator};
    use crate::azure::{AzureTraceConfig, AzureTraceGenerator};

    fn azure() -> Vec<AzureVmTrace> {
        AzureTraceGenerator::generate(&AzureTraceConfig {
            num_vms: 400,
            duration_hours: 24.0,
            ..Default::default()
        })
    }

    fn alibaba() -> Vec<ContainerTrace> {
        AlibabaTraceGenerator::generate(&AlibabaTraceConfig {
            num_containers: 200,
            duration_hours: 12.0,
            ..Default::default()
        })
    }

    #[test]
    fn figure5_median_vm_tolerates_50_percent_deflation() {
        // "Even at high deflation levels (50%), the median VM spends 80% of
        // the time below the deflated allocation."
        let vms = azure();
        let points = cpu_feasibility(&vms, &DEFLATION_LEVELS);
        assert_eq!(points.len(), DEFLATION_LEVELS.len());
        let at_50 = points
            .iter()
            .find(|p| (p.deflation - 0.5).abs() < 1e-9)
            .unwrap();
        assert!(
            at_50.distribution.median < 0.25,
            "median underallocation at 50% deflation = {}",
            at_50.distribution.median
        );
        // Feasibility worsens monotonically with deflation (median).
        for w in points.windows(2) {
            assert!(w[0].distribution.median <= w[1].distribution.median + 1e-9);
        }
    }

    #[test]
    fn figure6_interactive_less_impacted_than_batch() {
        let vms = azure();
        let by_class = cpu_feasibility_by_class(&vms, &[0.3, 0.5]);
        let find = |class: VmClass| {
            by_class
                .iter()
                .find(|(c, _)| *c == class)
                .map(|(_, pts)| pts.clone())
                .unwrap()
        };
        let interactive = find(VmClass::Interactive);
        let batch = find(VmClass::DelayInsensitive);
        for (i, b) in interactive.iter().zip(batch.iter()) {
            assert!(
                i.distribution.mean <= b.distribution.mean + 0.02,
                "interactive ({}) should be less impacted than batch ({}) at {}",
                i.distribution.mean,
                b.distribution.mean,
                i.deflation
            );
        }
    }

    #[test]
    fn figure7_size_has_little_effect() {
        let vms = azure();
        let by_size = cpu_feasibility_by_size(&vms, &[0.4]);
        let medians: Vec<f64> = by_size
            .iter()
            .map(|(_, pts)| pts[0].distribution.median)
            .collect();
        let max = medians.iter().copied().fold(f64::MIN, f64::max);
        let min = medians.iter().copied().fold(f64::MAX, f64::min);
        assert!(
            max - min < 0.25,
            "size classes diverge too much: {medians:?}"
        );
    }

    #[test]
    fn figure8_peak_class_orders_deflatability() {
        let vms = azure();
        let by_peak = cpu_feasibility_by_peak(&vms, &[0.5]);
        let mean_of = |class: PeakClass| {
            by_peak
                .iter()
                .find(|(c, _)| *c == class)
                .map(|(_, pts)| pts[0].distribution.mean)
                .unwrap()
        };
        assert!(mean_of(PeakClass::Low) < mean_of(PeakClass::Moderate));
        assert!(mean_of(PeakClass::Moderate) < mean_of(PeakClass::VeryHigh));
    }

    #[test]
    fn figure9_to_12_alibaba_characteristics() {
        let containers = alibaba();
        // Fig 9: memory occupancy is high — at 10% deflation the median
        // container is above the deflated allocation most of the time.
        let mem = memory_feasibility(&containers, &[0.1]);
        assert!(mem[0].distribution.median > 0.5);
        // Fig 10: memory bandwidth is tiny.
        let bw = memory_bandwidth_usage(&containers);
        assert!(bw.mean < 0.002);
        assert!(bw.max < 0.02);
        // Fig 11: disk rarely underallocated at 50% deflation.
        let disk = disk_feasibility(&containers, &[0.5]);
        assert!(disk[0].distribution.mean < 0.02);
        // Fig 12: network rarely underallocated even at 70% deflation.
        let net = network_feasibility(&containers, &[0.7]);
        assert!(net[0].distribution.mean < 0.05);
    }

    #[test]
    fn throughput_loss_grows_with_deflation() {
        let vms = azure();
        let low = mean_throughput_loss(&vms, 0.1);
        let mid = mean_throughput_loss(&vms, 0.5);
        let high = mean_throughput_loss(&vms, 0.9);
        assert!(low <= mid && mid <= high);
        assert!(
            low < 0.05,
            "10% deflation should cost almost nothing: {low}"
        );
        assert_eq!(mean_throughput_loss(&[], 0.5), 0.0);
    }

    #[test]
    fn feasibility_sweep_empty_population() {
        let points = feasibility_sweep(std::iter::empty(), &[0.5]);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].distribution.mean, 0.0);
    }
}
