//! Small deterministic distribution samplers used by the trace generators.
//!
//! The workspace's offline dependency set includes `rand` but not
//! `rand_distr`, so the handful of non-uniform distributions the generators
//! need (exponential, normal / log-normal, bounded Pareto, Poisson counts)
//! are implemented here with inverse-transform / Box–Muller / Knuth methods.
//! All samplers take `&mut impl Rng` so experiments stay reproducible from an
//! explicit seed.

use rand::Rng;

/// Sample an exponential variate with the given rate `λ` (mean `1/λ`).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    let rate = rate.max(1e-12);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

/// Sample a standard normal variate (Box–Muller transform).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sample a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev.max(0.0) * standard_normal(rng)
}

/// Sample a log-normal variate parameterised by the *underlying* normal's
/// mean `mu` and standard deviation `sigma`.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Sample a bounded Pareto variate on `[lo, hi]` with shape `alpha`.
/// Heavy-tailed service demands and VM lifetimes use this.
pub fn bounded_pareto<R: Rng + ?Sized>(rng: &mut R, alpha: f64, lo: f64, hi: f64) -> f64 {
    let alpha = alpha.max(1e-6);
    let (lo, hi) = (lo.max(1e-12), hi.max(lo.max(1e-12) * (1.0 + 1e-12)));
    let u: f64 = rng.gen_range(0.0..1.0);
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
    x.clamp(lo, hi)
}

/// Sample a Poisson count with mean `lambda` (Knuth's method for small
/// means, normal approximation for large ones).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    let lambda = lambda.max(0.0);
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation with continuity correction.
        let x = normal(rng, lambda, lambda.sqrt());
        return x.round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k: u64 = 0;
    let mut p = 1.0;
    loop {
        k += 1;
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k - 1;
        }
    }
}

/// Sample an index according to a discrete (unnormalised) weight vector.
/// Returns 0 when all weights are zero or the vector is empty-safe (callers
/// must pass at least one weight).
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    if total <= 0.0 || weights.is_empty() {
        return 0;
    }
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        let w = w.max(0.0);
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1);
        assert!((var - 4.0).abs() < 0.3);
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(log_normal(&mut r, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut r = rng();
        for _ in 0..2000 {
            let x = bounded_pareto(&mut r, 1.5, 2.0, 50.0);
            assert!((2.0..=50.0).contains(&x), "{x} out of bounds");
        }
    }

    #[test]
    fn poisson_mean() {
        let mut r = rng();
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut r, 4.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean was {mean}");
        // Large-lambda path.
        let mean_large: f64 = (0..n).map(|_| poisson(&mut r, 100.0) as f64).sum::<f64>() / n as f64;
        assert!((mean_large - 100.0).abs() < 1.0, "mean was {mean_large}");
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn weighted_index_distribution() {
        let mut r = rng();
        let weights = [1.0, 3.0, 0.0];
        let mut counts = [0usize; 3];
        for _ in 0..8000 {
            counts[weighted_index(&mut r, &weights)] += 1;
        }
        assert_eq!(counts[2], 0);
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio was {ratio}");
        assert_eq!(weighted_index(&mut r, &[0.0, 0.0]), 0);
    }

    #[test]
    fn determinism_from_seed() {
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| exponential(&mut r, 1.0)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| exponential(&mut r, 1.0)).collect()
        };
        assert_eq!(a, b);
    }
}
