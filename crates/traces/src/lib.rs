//! # deflate-traces
//!
//! Synthetic cloud resource-usage traces and the deflation-feasibility
//! analysis of §3 of the paper.
//!
//! The paper's analysis is driven by two public datasets that are not
//! available in this environment: the Azure 2017 VM dataset (per-VM CPU
//! utilisation, classes, sizes) and the Alibaba 2018 container dataset
//! (memory, memory-bandwidth, disk and network usage). This crate replaces
//! them with statistically matched synthetic generators — see `DESIGN.md`
//! for the substitution rationale — and implements the analysis on top:
//!
//! * [`timeseries`] — fixed-interval utilisation series, percentiles,
//!   underallocation metrics, box-plot summaries.
//! * [`dist`] — deterministic samplers for the non-uniform distributions the
//!   generators need.
//! * [`azure`] — synthetic Azure VM population (Figures 5–8 inputs, and the
//!   workload for the cluster simulation of §7.4).
//! * [`azure_csv`] — loader for the *real* Azure Public Dataset CSV files,
//!   for users who have downloaded the dataset the paper analysed.
//! * [`alibaba`] — synthetic Alibaba container population (Figures 9–12).
//! * [`analysis`] — the feasibility computations behind Figures 5–12.
//!
//! # Example
//!
//! Generate a small deterministic Azure-like population and ask the §3
//! question directly — how often would each VM actually notice a 50 %
//! deflation?
//!
//! ```
//! use deflate_traces::azure::{AzureTraceConfig, AzureTraceGenerator};
//!
//! let vms = AzureTraceGenerator::generate(&AzureTraceConfig {
//!     num_vms: 16,
//!     duration_hours: 2.0,
//!     seed: 42,
//!     ..Default::default()
//! });
//! assert_eq!(vms.len(), 16);
//! for vm in &vms {
//!     // Utilisation series are bounded and non-empty…
//!     assert!(!vm.cpu_util.is_empty());
//!     assert!(vm.cpu_util.max() <= 1.0);
//!     // …and the fraction of samples above a half-size allocation is
//!     // the per-VM deflatability metric of Figures 5–8.
//!     let above = vm.cpu_util.fraction_above(0.5);
//!     assert!((0.0..=1.0).contains(&above));
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alibaba;
pub mod analysis;
pub mod azure;
pub mod azure_csv;
pub mod dist;
pub mod timeseries;

pub use alibaba::{AlibabaTraceConfig, AlibabaTraceGenerator, ContainerTrace};
pub use azure::{AzureTraceConfig, AzureTraceGenerator, AzureVmTrace, PeakClass, SizeClass};
pub use timeseries::{BoxplotSummary, TimeSeries};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::alibaba::{AlibabaTraceConfig, AlibabaTraceGenerator, ContainerTrace};
    pub use crate::analysis::{self, FeasibilityPoint, DEFLATION_LEVELS};
    pub use crate::azure::{
        AzureTraceConfig, AzureTraceGenerator, AzureVmTrace, PeakClass, SizeClass,
    };
    pub use crate::timeseries::{BoxplotSummary, TimeSeries};
}
