//! Loader for the real **Azure Public Dataset (V1, 2017)** CSV files.
//!
//! The feasibility analysis and the cluster simulation normally run on the
//! synthetic population from [`crate::azure`], but a downstream user who has
//! downloaded the actual dataset the paper uses
//! (<https://github.com/Azure/AzurePublicDataset>) can load it here and feed
//! it through exactly the same analysis and simulation code. Two files are
//! consumed, both header-less CSV:
//!
//! * `vmtable.csv` — one row per VM:
//!   `vmid, subscriptionid, deploymentid, vmcreated, vmdeleted, maxcpu,
//!    avgcpu, p95maxcpu, vmcategory, vmcorecount, vmmemory`
//!   (timestamps in seconds, category one of `Interactive`,
//!   `Delay-insensitive`, `Unknown`, memory in GiB);
//! * `vm_cpu_readings-*.csv` — 5-minute utilisation readings:
//!   `timestamp, vmid, mincpu, maxcpu, avgcpu` (CPU in percent, 0–100).
//!
//! The loader is hand-rolled (the dataset is plain comma-separated values
//! with no quoting) so it adds no new dependencies.

use crate::azure::AzureVmTrace;
use crate::timeseries::{TimeSeries, DEFAULT_INTERVAL_SECS};
use deflate_core::resources::ResourceVector;
use deflate_core::vm::{VmClass, VmId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::BufRead;

/// One row of `vmtable.csv`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmTableRow {
    /// Opaque VM identifier (a hash in the public dataset).
    pub vm_key: String,
    /// Creation timestamp, seconds.
    pub created_secs: f64,
    /// Deletion timestamp, seconds.
    pub deleted_secs: f64,
    /// Workload-class label.
    pub category: VmClass,
    /// vCPU core count.
    pub core_count: f64,
    /// Memory in GiB.
    pub memory_gib: f64,
}

/// Errors raised while parsing the dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    /// A row had fewer columns than the schema requires.
    MissingColumns {
        /// 1-based line number.
        line: usize,
        /// Columns found.
        found: usize,
        /// Columns expected.
        expected: usize,
    },
    /// A numeric column failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Column index (0-based).
        column: usize,
        /// Offending text.
        value: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingColumns {
                line,
                found,
                expected,
            } => write!(
                f,
                "line {line}: expected at least {expected} columns, found {found}"
            ),
            CsvError::BadNumber {
                line,
                column,
                value,
            } => write!(
                f,
                "line {line}, column {column}: cannot parse number {value:?}"
            ),
        }
    }
}

impl std::error::Error for CsvError {}

fn parse_f64(field: &str, line: usize, column: usize) -> Result<f64, CsvError> {
    let trimmed = field.trim();
    if trimmed.is_empty() {
        return Ok(0.0);
    }
    trimmed.parse::<f64>().map_err(|_| CsvError::BadNumber {
        line,
        column,
        value: field.to_string(),
    })
}

fn parse_category(field: &str) -> VmClass {
    match field.trim().to_ascii_lowercase().as_str() {
        "interactive" => VmClass::Interactive,
        "delay-insensitive" | "delayinsensitive" => VmClass::DelayInsensitive,
        _ => VmClass::Unknown,
    }
}

/// Parse `vmtable.csv` content.
pub fn parse_vmtable<R: BufRead>(reader: R) -> Result<Vec<VmTableRow>, CsvError> {
    let mut rows = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.unwrap_or_default();
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = trimmed.split(',').collect();
        if cols.len() < 11 {
            return Err(CsvError::MissingColumns {
                line: line_no,
                found: cols.len(),
                expected: 11,
            });
        }
        rows.push(VmTableRow {
            vm_key: cols[0].trim().to_string(),
            created_secs: parse_f64(cols[3], line_no, 3)?,
            deleted_secs: parse_f64(cols[4], line_no, 4)?,
            category: parse_category(cols[8]),
            core_count: parse_f64(cols[9], line_no, 9)?,
            memory_gib: parse_f64(cols[10], line_no, 10)?,
        });
    }
    Ok(rows)
}

/// One reading of `vm_cpu_readings-*.csv`: `(timestamp, vm key, max CPU %)`.
pub type CpuReading = (f64, String, f64);

/// Parse a `vm_cpu_readings` file, keeping the per-interval *maximum* CPU
/// utilisation (the paper's feasibility metric uses the maximum usage over
/// each interval).
pub fn parse_cpu_readings<R: BufRead>(reader: R) -> Result<Vec<CpuReading>, CsvError> {
    let mut rows = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.unwrap_or_default();
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = trimmed.split(',').collect();
        if cols.len() < 4 {
            return Err(CsvError::MissingColumns {
                line: line_no,
                found: cols.len(),
                expected: 4,
            });
        }
        let timestamp = parse_f64(cols[0], line_no, 0)?;
        let max_cpu = parse_f64(cols[3], line_no, 3)?;
        rows.push((timestamp, cols[1].trim().to_string(), max_cpu));
    }
    Ok(rows)
}

/// Assemble [`AzureVmTrace`]s from a parsed VM table and CPU readings.
///
/// * VM keys are mapped to dense numeric [`VmId`]s in table order.
/// * Readings are bucketed into the VM's lifetime at 5-minute granularity and
///   normalised from percent to `[0, 1]`; missing intervals are filled with
///   the previous reading (or zero before the first one).
/// * VMs without any readings get an all-zero utilisation series, mirroring
///   how idle VMs appear in the dataset.
pub fn build_traces(vmtable: &[VmTableRow], readings: &[CpuReading]) -> Vec<AzureVmTrace> {
    let key_to_index: HashMap<&str, usize> = vmtable
        .iter()
        .enumerate()
        .map(|(i, row)| (row.vm_key.as_str(), i))
        .collect();
    // Group readings per VM.
    let mut per_vm: Vec<Vec<(f64, f64)>> = vec![Vec::new(); vmtable.len()];
    for (timestamp, key, max_cpu) in readings {
        if let Some(&i) = key_to_index.get(key.as_str()) {
            per_vm[i].push((*timestamp, (max_cpu / 100.0).clamp(0.0, 1.0)));
        }
    }
    vmtable
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let lifetime = (row.deleted_secs - row.created_secs).max(DEFAULT_INTERVAL_SECS);
            let samples_len = (lifetime / DEFAULT_INTERVAL_SECS).ceil() as usize;
            let mut samples = vec![0.0f64; samples_len.max(1)];
            let mut readings = std::mem::take(&mut per_vm[i]);
            readings.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut last = 0.0;
            let mut cursor = 0usize;
            for (k, slot) in samples.iter_mut().enumerate() {
                let slot_time = row.created_secs + k as f64 * DEFAULT_INTERVAL_SECS;
                while cursor < readings.len() && readings[cursor].0 <= slot_time + 1e-9 {
                    last = readings[cursor].1;
                    cursor += 1;
                }
                *slot = last;
            }
            AzureVmTrace {
                vm_id: VmId(i as u64),
                class: row.category,
                size: ResourceVector::new(
                    row.core_count.max(1.0) * 1000.0,
                    row.memory_gib.max(0.5) * 1024.0,
                    100.0,
                    1000.0,
                ),
                start_secs: row.created_secs,
                lifetime_secs: lifetime,
                cpu_util: TimeSeries::five_minute(samples),
            }
        })
        .collect()
}

/// Convenience wrapper: parse both files and build the traces in one call.
pub fn load_from_strings(
    vmtable_csv: &str,
    readings_csv: &str,
) -> Result<Vec<AzureVmTrace>, CsvError> {
    let vmtable = parse_vmtable(vmtable_csv.as_bytes())?;
    let readings = parse_cpu_readings(readings_csv.as_bytes())?;
    Ok(build_traces(&vmtable, &readings))
}

#[cfg(test)]
mod tests {
    use super::*;

    const VMTABLE: &str = "\
vmA,sub1,dep1,0,3600,95.0,20.0,80.0,Interactive,4,8.0
vmB,sub1,dep2,300,7500,50.0,10.0,30.0,Delay-insensitive,2,3.5
vmC,sub2,dep3,0,1800,5.0,1.0,2.0,Unknown,1,1.75
";

    const READINGS: &str = "\
0,vmA,1.0,40.0,20.0
300,vmA,2.0,60.0,30.0
600,vmA,1.0,90.0,45.0
300,vmB,0.0,10.0,5.0
3900,vmB,0.0,25.0,12.0
0,vmZ,0.0,99.0,50.0
";

    #[test]
    fn parses_vmtable_rows() {
        let rows = parse_vmtable(VMTABLE.as_bytes()).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].category, VmClass::Interactive);
        assert_eq!(rows[1].category, VmClass::DelayInsensitive);
        assert_eq!(rows[2].category, VmClass::Unknown);
        assert_eq!(rows[0].core_count, 4.0);
        assert!((rows[1].memory_gib - 3.5).abs() < 1e-12);
        assert_eq!(rows[0].deleted_secs, 3600.0);
    }

    #[test]
    fn rejects_malformed_rows() {
        let err = parse_vmtable("a,b,c\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::MissingColumns { expected: 11, .. }));
        let err =
            parse_vmtable("vmA,s,d,zero,3600,95,20,80,Interactive,4,8\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::BadNumber { column: 3, .. }));
        assert!(err.to_string().contains("column 3"));
        // Blank lines and comments are skipped.
        assert!(parse_vmtable("\n# comment\n".as_bytes())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn parses_readings_and_builds_traces() {
        let traces = load_from_strings(VMTABLE, READINGS).unwrap();
        assert_eq!(traces.len(), 3);
        let a = &traces[0];
        assert_eq!(a.class, VmClass::Interactive);
        assert_eq!(a.size.cpu(), 4000.0);
        // One hour of 5-minute samples; readings are normalised from
        // percent and placed at the right slots.
        assert_eq!(a.cpu_util.len(), 12);
        assert!((a.cpu_util.samples()[0] - 0.40).abs() < 1e-12);
        assert!((a.cpu_util.samples()[1] - 0.60).abs() < 1e-12);
        assert!((a.cpu_util.samples()[2] - 0.90).abs() < 1e-12);
        // Gaps carry the last reading forward.
        assert!((a.cpu_util.samples()[5] - 0.90).abs() < 1e-12);
        // VM C has no readings: all-zero series, still present.
        assert!(traces[2].cpu_util.samples().iter().all(|&s| s == 0.0));
        // Unknown VM keys in the readings file are ignored.
    }

    #[test]
    fn built_traces_work_with_the_analysis_pipeline() {
        let traces = load_from_strings(VMTABLE, READINGS).unwrap();
        let points = crate::analysis::cpu_feasibility(&traces, &[0.5]);
        assert_eq!(points.len(), 1);
        assert!(points[0].distribution.max <= 1.0);
        // The interactive VM (p95 = 90 %) is deflation-sensitive; priorities
        // derive correctly from the loaded series.
        assert!(traces[0].p95_cpu() > 0.8);
        assert!(traces[0].deflatable());
        assert!(!traces[1].deflatable());
    }
}
