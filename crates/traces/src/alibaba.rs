//! Synthetic Alibaba-like container trace generator.
//!
//! §3.2.2 analyses memory, memory-bandwidth, disk and network deflation
//! feasibility on Alibaba's container traces (Figures 9–12). The public
//! dataset is unavailable offline; this generator reproduces the qualitative
//! characteristics the paper reports and reasons from:
//!
//! * **memory occupancy is high** (Figure 9): >90 % of the services are
//!   JVM-based and pre-allocate large heaps, so the *total used memory* sits
//!   at a high fraction of the allocation for most of the trace;
//! * **memory bandwidth is tiny** (Figure 10): mean utilisation below 0.1 %
//!   of the available bandwidth, maximum around 1 %, showing the memory is
//!   mostly cold;
//! * **disk bandwidth is low** (Figure 11): even at 50 % deflation containers
//!   are underallocated less than 1 % of the time;
//! * **network bandwidth is low** (Figure 12): combined in+out traffic only
//!   exceeds a 70 %-deflated allocation about 1 % of the time.

use crate::dist;
use crate::timeseries::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One synthetic Alibaba container: normalised utilisation series for the
/// four resources the paper analyses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContainerTrace {
    /// Container index within the trace.
    pub container_id: u64,
    /// Total memory occupancy relative to the memory allocation.
    pub memory_util: TimeSeries,
    /// Memory-bus bandwidth utilisation relative to available bandwidth.
    pub memory_bw_util: TimeSeries,
    /// Disk bandwidth utilisation relative to the allocated I/O bandwidth.
    pub disk_util: TimeSeries,
    /// Network bandwidth utilisation (incoming + outgoing, normalised).
    pub net_util: TimeSeries,
}

/// Configuration for the synthetic Alibaba trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlibabaTraceConfig {
    /// Number of containers.
    pub num_containers: usize,
    /// Trace horizon in hours.
    pub duration_hours: f64,
    /// Fraction of containers that behave like JVM services with large
    /// pre-allocated heaps (the paper reports over 90 %).
    pub jvm_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AlibabaTraceConfig {
    fn default() -> Self {
        AlibabaTraceConfig {
            num_containers: 1_000,
            duration_hours: 24.0,
            jvm_fraction: 0.9,
            seed: 0xA11B,
        }
    }
}

/// Deterministic synthetic Alibaba trace generator.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlibabaTraceGenerator;

impl AlibabaTraceGenerator {
    /// Generate the container population described by `config`.
    pub fn generate(config: &AlibabaTraceConfig) -> Vec<ContainerTrace> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let samples = ((config.duration_hours.max(1.0) * 3600.0) / 300.0).ceil() as usize;
        (0..config.num_containers)
            .map(|i| Self::generate_container(&mut rng, i as u64, samples, config))
            .collect()
    }

    fn generate_container(
        rng: &mut StdRng,
        container_id: u64,
        samples: usize,
        config: &AlibabaTraceConfig,
    ) -> ContainerTrace {
        let is_jvm = rng.gen_bool(config.jvm_fraction.clamp(0.0, 1.0));

        // Memory occupancy: JVM services pre-allocate their heap and the OS
        // fills the rest with page cache, so the *total* used memory sits
        // very close to the allocation for most of the trace (Figure 9 shows
        // >70 % of time above even a 10 %-deflated allocation); non-JVM
        // services are more moderate. The lower bound of the JVM range must
        // stay high enough that the median container actually spends the
        // majority of its time above a 10 %-deflated allocation (0.85 left
        // the median right on the 50 % boundary).
        let mem_base = if is_jvm {
            rng.gen_range(0.88..0.99)
        } else {
            rng.gen_range(0.35..0.75)
        };
        let mem_noise = 0.04;

        // Memory bandwidth: extremely low. Mean across containers ≈ 0.05–0.1 %
        // with rare excursions towards ~1 %.
        let mem_bw_base = dist::log_normal(rng, -7.6, 0.5).min(0.004);

        // Disk bandwidth: low, bursty. Base well under 10 % with occasional
        // compaction/flush spikes.
        let disk_base = dist::log_normal(rng, -3.8, 0.6).min(0.25);

        // Network: low, diurnal-ish, combined in+out.
        let net_base = dist::log_normal(rng, -3.5, 0.6).min(0.25);
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);

        let mut memory = Vec::with_capacity(samples);
        let mut mem_bw = Vec::with_capacity(samples);
        let mut disk = Vec::with_capacity(samples);
        let mut net = Vec::with_capacity(samples);
        for k in 0..samples {
            let t = k as f64 * 300.0;
            let day = (t / 86_400.0) * std::f64::consts::TAU + phase;
            memory.push((mem_base + dist::normal(rng, 0.0, mem_noise)).clamp(0.0, 1.0));
            let bw_spike = if rng.gen_bool(0.002) {
                rng.gen_range(0.0..0.008)
            } else {
                0.0
            };
            mem_bw.push((mem_bw_base + bw_spike).clamp(0.0, 0.012));
            let disk_spike = if rng.gen_bool(0.01) {
                rng.gen_range(0.0..0.3)
            } else {
                0.0
            };
            disk.push((disk_base * rng.gen_range(0.5..1.5) + disk_spike).clamp(0.0, 1.0));
            let diurnal = 0.3 * net_base * day.sin();
            net.push((net_base + diurnal + dist::normal(rng, 0.0, 0.01)).clamp(0.0, 1.0));
        }

        ContainerTrace {
            container_id,
            memory_util: TimeSeries::five_minute(memory),
            memory_bw_util: TimeSeries::five_minute(mem_bw),
            disk_util: TimeSeries::five_minute(disk),
            net_util: TimeSeries::five_minute(net),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> Vec<ContainerTrace> {
        AlibabaTraceGenerator::generate(&AlibabaTraceConfig {
            num_containers: 300,
            duration_hours: 12.0,
            ..Default::default()
        })
    }

    #[test]
    fn generates_population_with_equal_length_series() {
        let containers = population();
        assert_eq!(containers.len(), 300);
        let n = containers[0].memory_util.len();
        assert!(n > 0);
        for c in &containers {
            assert_eq!(c.memory_util.len(), n);
            assert_eq!(c.memory_bw_util.len(), n);
            assert_eq!(c.disk_util.len(), n);
            assert_eq!(c.net_util.len(), n);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = AlibabaTraceConfig {
            num_containers: 20,
            seed: 3,
            ..Default::default()
        };
        assert_eq!(
            AlibabaTraceGenerator::generate(&cfg),
            AlibabaTraceGenerator::generate(&cfg)
        );
    }

    #[test]
    fn memory_occupancy_is_high() {
        // Figure 9: even at 10 % memory deflation most containers spend the
        // majority of time "underallocated" by the raw-occupancy metric.
        let containers = population();
        let mean_occupancy: f64 =
            containers.iter().map(|c| c.memory_util.mean()).sum::<f64>() / containers.len() as f64;
        assert!(
            mean_occupancy > 0.6,
            "mean memory occupancy {mean_occupancy} too low"
        );
    }

    #[test]
    fn memory_bandwidth_is_tiny() {
        // Figure 10: mean memory-bandwidth utilisation below 0.1 %, max ~1 %.
        let containers = population();
        let mean: f64 = containers
            .iter()
            .map(|c| c.memory_bw_util.mean())
            .sum::<f64>()
            / containers.len() as f64;
        let max = containers
            .iter()
            .map(|c| c.memory_bw_util.max())
            .fold(0.0f64, f64::max);
        assert!(mean < 0.002, "mean memory-bw utilisation {mean}");
        assert!(max <= 0.015, "max memory-bw utilisation {max}");
    }

    #[test]
    fn disk_is_rarely_above_half_allocation() {
        // Figure 11: at 50 % deflation, containers are underallocated less
        // than ~1 % of the time.
        let containers = population();
        let mean_fraction: f64 = containers
            .iter()
            .map(|c| c.disk_util.fraction_underallocated(0.5))
            .sum::<f64>()
            / containers.len() as f64;
        assert!(mean_fraction < 0.02, "disk underallocation {mean_fraction}");
    }

    #[test]
    fn network_is_rarely_above_30_percent_allocation() {
        // Figure 12: even at 70 % deflation the network is underallocated
        // only ~1 % of the time.
        let containers = population();
        let mean_fraction: f64 = containers
            .iter()
            .map(|c| c.net_util.fraction_underallocated(0.7))
            .sum::<f64>()
            / containers.len() as f64;
        assert!(mean_fraction < 0.05, "net underallocation {mean_fraction}");
    }
}
