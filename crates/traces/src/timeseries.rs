//! Fixed-interval resource-utilisation time series.
//!
//! The Azure dataset provides CPU utilisation "for each VM at 5-minute
//! granularity" (§3.2.1); the Alibaba dataset provides analogous series for
//! container memory, memory bandwidth, disk and network. [`TimeSeries`] is
//! the in-memory representation used throughout the feasibility analysis and
//! the trace-driven cluster simulation: a start offset, a sample interval and
//! a vector of utilisation samples normalised to the resource's allocation
//! (`1.0` = the VM is using 100 % of what it was sold).

use serde::{Deserialize, Serialize};

/// Seconds in one trace sampling interval (5 minutes).
pub const DEFAULT_INTERVAL_SECS: f64 = 300.0;

/// A utilisation time series sampled at a fixed interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Seconds between consecutive samples.
    interval_secs: f64,
    /// Utilisation samples, each in `[0, 1]` relative to the allocation.
    samples: Vec<f64>,
}

impl TimeSeries {
    /// Create a series from samples (values are clamped into `[0, 1]`).
    pub fn new(interval_secs: f64, samples: Vec<f64>) -> Self {
        let interval_secs = if interval_secs > 0.0 {
            interval_secs
        } else {
            DEFAULT_INTERVAL_SECS
        };
        let samples = samples.into_iter().map(|s| s.clamp(0.0, 1.0)).collect();
        TimeSeries {
            interval_secs,
            samples,
        }
    }

    /// Create a series at the default 5-minute interval.
    pub fn five_minute(samples: Vec<f64>) -> Self {
        Self::new(DEFAULT_INTERVAL_SECS, samples)
    }

    /// Sample interval in seconds.
    pub fn interval_secs(&self) -> f64 {
        self.interval_secs
    }

    /// The raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Owned heap bytes behind the series (the sample buffer's capacity).
    /// Feeds the engine's per-subsystem memory ledger.
    pub fn accounted_bytes(&self) -> u64 {
        deflate_core::mem::vec_capacity_bytes(&self.samples)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total duration covered, in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.samples.len() as f64 * self.interval_secs
    }

    /// Utilisation at an arbitrary time offset (seconds), using the sample
    /// covering that instant; times beyond the end return the last sample,
    /// an empty series returns 0.
    pub fn at(&self, time_secs: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let idx = (time_secs / self.interval_secs).floor() as usize;
        self.samples[idx.min(self.samples.len() - 1)]
    }

    /// Mean utilisation.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Maximum utilisation.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// The `p`-th percentile (`p` in `[0, 100]`) using linear interpolation
    /// between order statistics.
    pub fn percentile(&self, p: f64) -> f64 {
        percentile(&self.samples, p)
    }

    /// Fraction of samples strictly above `threshold` — the paper's core
    /// feasibility metric: "the percentage of time for which the maximum CPU
    /// usage over each interval in the original trace exceeds this value"
    /// (§3.2.1).
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let above = self.samples.iter().filter(|&&s| s > threshold).count();
        above as f64 / self.samples.len() as f64
    }

    /// Fraction of time a VM deflated to `1 − deflation` of its allocation
    /// would be underallocated (usage above the deflated allocation).
    pub fn fraction_underallocated(&self, deflation: f64) -> f64 {
        self.fraction_above(1.0 - deflation.clamp(0.0, 1.0))
    }

    /// Total underallocation area (Figure 4): the integral, over the trace,
    /// of `max(0, usage − allocation_fraction)` in units of
    /// allocation-seconds. Normalised by the trace duration this is the
    /// throughput loss under the worst-case linear performance assumption.
    pub fn underallocation_area(&self, allocation_fraction: f64) -> f64 {
        let a = allocation_fraction.clamp(0.0, 1.0);
        self.samples
            .iter()
            .map(|&s| (s - a).max(0.0) * self.interval_secs)
            .sum()
    }

    /// Relative throughput loss caused by capping the allocation at
    /// `allocation_fraction`: lost demand divided by total demand. Returns 0
    /// for an all-idle trace.
    pub fn throughput_loss(&self, allocation_fraction: f64) -> f64 {
        let total: f64 = self.samples.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let a = allocation_fraction.clamp(0.0, 1.0);
        let lost: f64 = self.samples.iter().map(|&s| (s - a).max(0.0)).sum();
        lost / total
    }

    /// Element-wise maximum of two series (used to combine e.g. incoming and
    /// outgoing network usage); the result has the length of the longer
    /// series.
    pub fn pointwise_max(&self, other: &TimeSeries) -> TimeSeries {
        let n = self.samples.len().max(other.samples.len());
        let samples = (0..n)
            .map(|i| {
                let a = self.samples.get(i).copied().unwrap_or(0.0);
                let b = other.samples.get(i).copied().unwrap_or(0.0);
                a.max(b)
            })
            .collect();
        TimeSeries::new(self.interval_secs, samples)
    }

    /// Element-wise saturating sum of two series (clamped at 1.0).
    pub fn pointwise_sum(&self, other: &TimeSeries) -> TimeSeries {
        let n = self.samples.len().max(other.samples.len());
        let samples = (0..n)
            .map(|i| {
                let a = self.samples.get(i).copied().unwrap_or(0.0);
                let b = other.samples.get(i).copied().unwrap_or(0.0);
                (a + b).min(1.0)
            })
            .collect();
        TimeSeries::new(self.interval_secs, samples)
    }
}

/// Percentile of a slice (`p` in `[0, 100]`), linear interpolation, 0 for an
/// empty slice.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0) / 100.0;
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Five-number summary used to report the paper's box plots (Figures 5–12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxplotSummary {
    /// Minimum observation.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum observation.
    pub max: f64,
    /// Arithmetic mean (shown as a marker in several of the paper's plots).
    pub mean: f64,
}

impl BoxplotSummary {
    /// Summarise a set of observations. Returns an all-zero summary for an
    /// empty input.
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return BoxplotSummary {
                min: 0.0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0.0,
                mean: 0.0,
            };
        }
        BoxplotSummary {
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            q1: percentile(values, 25.0),
            median: percentile(values, 50.0),
            q3: percentile(values, 75.0),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean: values.iter().sum::<f64>() / values.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_clamps_and_defaults() {
        let ts = TimeSeries::new(-5.0, vec![0.5, 1.7, -0.2]);
        assert_eq!(ts.interval_secs(), DEFAULT_INTERVAL_SECS);
        assert_eq!(ts.samples(), &[0.5, 1.0, 0.0]);
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
        assert_eq!(ts.duration_secs(), 900.0);
    }

    #[test]
    fn at_indexes_by_interval() {
        let ts = TimeSeries::new(10.0, vec![0.1, 0.2, 0.3]);
        assert_eq!(ts.at(0.0), 0.1);
        assert_eq!(ts.at(15.0), 0.2);
        assert_eq!(ts.at(29.9), 0.3);
        assert_eq!(ts.at(1e9), 0.3);
        assert_eq!(TimeSeries::five_minute(vec![]).at(5.0), 0.0);
    }

    #[test]
    fn summary_statistics() {
        let ts = TimeSeries::five_minute(vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert!((ts.mean() - 0.5).abs() < 1e-12);
        assert_eq!(ts.max(), 1.0);
        assert!((ts.percentile(50.0) - 0.5).abs() < 1e-12);
        assert!((ts.percentile(0.0) - 0.0).abs() < 1e-12);
        assert!((ts.percentile(100.0) - 1.0).abs() < 1e-12);
        assert_eq!(TimeSeries::five_minute(vec![]).mean(), 0.0);
    }

    #[test]
    fn fraction_above_and_underallocated() {
        let ts = TimeSeries::five_minute(vec![0.1, 0.2, 0.6, 0.9]);
        assert!((ts.fraction_above(0.5) - 0.5).abs() < 1e-12);
        // 30% deflation → allocation 0.7 → only the 0.9 sample exceeds it.
        assert!((ts.fraction_underallocated(0.3) - 0.25).abs() < 1e-12);
        assert_eq!(ts.fraction_underallocated(0.0), 0.0);
    }

    #[test]
    fn underallocation_area_and_throughput_loss() {
        let ts = TimeSeries::new(1.0, vec![0.5, 0.8, 0.2]);
        // Allocation capped at 0.5: losses are 0, 0.3, 0.
        assert!((ts.underallocation_area(0.5) - 0.3).abs() < 1e-12);
        assert!((ts.throughput_loss(0.5) - 0.3 / 1.5).abs() < 1e-12);
        assert_eq!(ts.throughput_loss(1.0), 0.0);
        assert_eq!(
            TimeSeries::new(1.0, vec![0.0, 0.0]).throughput_loss(0.0),
            0.0
        );
    }

    #[test]
    fn pointwise_combinators() {
        let a = TimeSeries::new(1.0, vec![0.2, 0.8]);
        let b = TimeSeries::new(1.0, vec![0.5, 0.5, 0.4]);
        let m = a.pointwise_max(&b);
        assert_eq!(m.samples(), &[0.5, 0.8, 0.4]);
        let s = a.pointwise_sum(&b);
        assert_eq!(s.samples(), &[0.7, 1.0, 0.4]);
    }

    #[test]
    fn percentile_helper_edge_cases() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[3.0], 99.0), 3.0);
        assert!((percentile(&[1.0, 2.0], 50.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn boxplot_summary() {
        let s = BoxplotSummary::from_values(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        assert_eq!(s.min, 0.1);
        assert_eq!(s.max, 0.5);
        assert!((s.median - 0.3).abs() < 1e-12);
        assert!((s.mean - 0.3).abs() < 1e-12);
        assert!(s.q1 < s.median && s.median < s.q3);
        let empty = BoxplotSummary::from_values(&[]);
        assert_eq!(empty.max, 0.0);
    }
}
