//! Multi-dimensional resource vectors.
//!
//! Every allocation, demand, usage sample and deflation decision in the
//! system is expressed as a [`ResourceVector`] over the four resource kinds
//! the paper deflates: CPU, memory, disk bandwidth and network bandwidth
//! (§3, §4.2 of the paper). All policies in [`crate::policy`] operate on one
//! [`ResourceKind`] at a time and are lifted to full vectors by the cluster
//! manager, mirroring "The proportional deflation is performed for each
//! resource (CPU, memory, disk bandwidth, network bandwidth) individually"
//! (§5.1.1).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// The resource dimensions subject to deflation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKind {
    /// CPU capacity, measured in millicores (1000 = one physical core).
    Cpu,
    /// Memory, measured in mebibytes.
    Memory,
    /// Local disk I/O bandwidth, measured in MB/s.
    DiskBw,
    /// Network bandwidth, measured in Mbit/s.
    NetBw,
}

impl ResourceKind {
    /// All resource kinds, in canonical order.
    pub const ALL: [ResourceKind; 4] = [
        ResourceKind::Cpu,
        ResourceKind::Memory,
        ResourceKind::DiskBw,
        ResourceKind::NetBw,
    ];

    /// Canonical index of this kind inside a [`ResourceVector`].
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            ResourceKind::Cpu => 0,
            ResourceKind::Memory => 1,
            ResourceKind::DiskBw => 2,
            ResourceKind::NetBw => 3,
        }
    }

    /// Human-readable unit for this resource kind.
    pub const fn unit(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "millicores",
            ResourceKind::Memory => "MiB",
            ResourceKind::DiskBw => "MB/s",
            ResourceKind::NetBw => "Mbit/s",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Memory => "memory",
            ResourceKind::DiskBw => "disk-bw",
            ResourceKind::NetBw => "net-bw",
        };
        f.write_str(name)
    }
}

/// A non-negative quantity of each resource kind.
///
/// The vector is stored as four `f64` components indexed by
/// [`ResourceKind::index`]. Fractional values are meaningful: transparent
/// deflation can assign e.g. 1.5 cores of CPU bandwidth (§4.3 notes only the
/// *hotplug* path is whole-unit granular).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceVector {
    components: [f64; 4],
}

impl ResourceVector {
    /// The zero vector.
    pub const ZERO: ResourceVector = ResourceVector {
        components: [0.0; 4],
    };

    /// Create a vector from explicit components.
    ///
    /// * `cpu_millis` — CPU in millicores.
    /// * `memory_mb` — memory in MiB.
    /// * `disk_mbps` — disk bandwidth in MB/s.
    /// * `net_mbps` — network bandwidth in Mbit/s.
    #[inline]
    pub const fn new(cpu_millis: f64, memory_mb: f64, disk_mbps: f64, net_mbps: f64) -> Self {
        ResourceVector {
            components: [cpu_millis, memory_mb, disk_mbps, net_mbps],
        }
    }

    /// Convenience constructor for CPU-and-memory-only vectors (the two
    /// dimensions the cluster simulation bin-packs on, §7.1.2).
    #[inline]
    pub const fn cpu_mem(cpu_millis: f64, memory_mb: f64) -> Self {
        Self::new(cpu_millis, memory_mb, 0.0, 0.0)
    }

    /// A vector with the same `value` in every component.
    #[inline]
    pub const fn splat(value: f64) -> Self {
        ResourceVector {
            components: [value; 4],
        }
    }

    /// A vector that is `value` in `kind` and zero elsewhere.
    #[inline]
    pub fn only(kind: ResourceKind, value: f64) -> Self {
        let mut v = Self::ZERO;
        v[kind] = value;
        v
    }

    /// CPU component in millicores.
    #[inline]
    pub fn cpu(&self) -> f64 {
        self.components[ResourceKind::Cpu.index()]
    }

    /// Memory component in MiB.
    #[inline]
    pub fn memory(&self) -> f64 {
        self.components[ResourceKind::Memory.index()]
    }

    /// Disk-bandwidth component in MB/s.
    #[inline]
    pub fn disk_bw(&self) -> f64 {
        self.components[ResourceKind::DiskBw.index()]
    }

    /// Network-bandwidth component in Mbit/s.
    #[inline]
    pub fn net_bw(&self) -> f64 {
        self.components[ResourceKind::NetBw.index()]
    }

    /// Value of a single resource kind.
    #[inline]
    pub fn get(&self, kind: ResourceKind) -> f64 {
        self.components[kind.index()]
    }

    /// Set a single resource kind, returning the modified vector.
    #[inline]
    pub fn with(mut self, kind: ResourceKind, value: f64) -> Self {
        self[kind] = value;
        self
    }

    /// Iterate over `(kind, value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceKind, f64)> + '_ {
        ResourceKind::ALL
            .iter()
            .map(move |&k| (k, self.components[k.index()]))
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(&self, other: &Self) -> Self {
        self.zip_with(other, f64::min)
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(&self, other: &Self) -> Self {
        self.zip_with(other, f64::max)
    }

    /// Element-wise clamp of every component to `[lo, hi]` (per-component
    /// bounds given by the corresponding components of `lo` / `hi`).
    #[inline]
    pub fn clamp(&self, lo: &Self, hi: &Self) -> Self {
        self.max(lo).min(hi)
    }

    /// Apply `f` to every component.
    #[inline]
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Self {
        let mut out = *self;
        for c in &mut out.components {
            *c = f(*c);
        }
        out
    }

    /// Combine two vectors component-wise with `f`.
    #[inline]
    pub fn zip_with(&self, other: &Self, mut f: impl FnMut(f64, f64) -> f64) -> Self {
        let mut out = Self::ZERO;
        for i in 0..4 {
            out.components[i] = f(self.components[i], other.components[i]);
        }
        out
    }

    /// Component-wise saturating subtraction: `max(self - other, 0)`.
    #[inline]
    pub fn saturating_sub(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| (a - b).max(0.0))
    }

    /// Element-wise multiplication (Hadamard product).
    #[inline]
    pub fn hadamard(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a * b)
    }

    /// Element-wise division. Components of `other` that are zero yield zero
    /// rather than infinity, which is the convention used when normalising a
    /// usage vector by a capacity vector that lacks some dimension.
    #[inline]
    pub fn checked_div(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| if b == 0.0 { 0.0 } else { a / b })
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: &Self) -> f64 {
        self.components
            .iter()
            .zip(other.components.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Sum of all components (useful for scalarised capacity accounting).
    #[inline]
    pub fn total(&self) -> f64 {
        self.components.iter().sum()
    }

    /// Largest component value.
    #[inline]
    pub fn max_component(&self) -> f64 {
        self.components.iter().copied().fold(f64::MIN, f64::max)
    }

    /// Cosine similarity with another vector, the placement "fitness" metric
    /// of §5.2: `fitness(D, A) = A·D / (|A||D|)`.
    ///
    /// Returns 0 when either vector is (numerically) zero; the paper handles
    /// the zero-availability case by adding a small epsilon or removing the
    /// server from consideration, which callers do at a higher level.
    pub fn cosine_similarity(&self, other: &Self) -> f64 {
        let denom = self.norm() * other.norm();
        if denom <= f64::EPSILON {
            0.0
        } else {
            (self.dot(other) / denom).clamp(-1.0, 1.0)
        }
    }

    /// True iff every component of `self` is less than or equal to the
    /// corresponding component of `other` (within `1e-9` absolute slack).
    pub fn fits_within(&self, other: &Self) -> bool {
        self.components
            .iter()
            .zip(other.components.iter())
            .all(|(a, b)| *a <= *b + 1e-9)
    }

    /// True iff all components are `>= 0`.
    pub fn is_non_negative(&self) -> bool {
        self.components.iter().all(|c| *c >= -1e-9)
    }

    /// True iff all components are finite.
    pub fn is_finite(&self) -> bool {
        self.components.iter().all(|c| c.is_finite())
    }

    /// True iff every component is (numerically) zero.
    pub fn is_zero(&self) -> bool {
        self.components.iter().all(|c| c.abs() <= 1e-12)
    }

    /// Scale each component by a per-component factor in `[0, 1]`, typically a
    /// deflation ratio vector.
    pub fn scaled_by(&self, factors: &Self) -> Self {
        self.hadamard(factors)
    }

    /// The fraction of `capacity` used by `self`, component-wise, clamped to
    /// `[0, 1]` where capacity is non-zero.
    pub fn utilization_of(&self, capacity: &Self) -> Self {
        self.checked_div(capacity).map(|v| v.clamp(0.0, 1.0))
    }
}

impl Index<ResourceKind> for ResourceVector {
    type Output = f64;
    #[inline]
    fn index(&self, kind: ResourceKind) -> &f64 {
        &self.components[kind.index()]
    }
}

impl IndexMut<ResourceKind> for ResourceVector {
    #[inline]
    fn index_mut(&mut self, kind: ResourceKind) -> &mut f64 {
        &mut self.components[kind.index()]
    }
}

impl Add for ResourceVector {
    type Output = ResourceVector;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.zip_with(&rhs, |a, b| a + b)
    }
}

impl AddAssign for ResourceVector {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for ResourceVector {
    type Output = ResourceVector;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.zip_with(&rhs, |a, b| a - b)
    }
}

impl SubAssign for ResourceVector {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Neg for ResourceVector {
    type Output = ResourceVector;
    #[inline]
    fn neg(self) -> Self {
        self.map(|v| -v)
    }
}

impl Mul<f64> for ResourceVector {
    type Output = ResourceVector;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.map(|v| v * rhs)
    }
}

impl Div<f64> for ResourceVector {
    type Output = ResourceVector;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        self.map(|v| v / rhs)
    }
}

impl Sum for ResourceVector {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, v| acc + v)
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[cpu={:.1}m mem={:.1}MiB disk={:.1}MB/s net={:.1}Mb/s]",
            self.cpu(),
            self.memory(),
            self.disk_bw(),
            self.net_bw()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let v = ResourceVector::new(4000.0, 8192.0, 100.0, 1000.0);
        assert_eq!(v.cpu(), 4000.0);
        assert_eq!(v.memory(), 8192.0);
        assert_eq!(v.disk_bw(), 100.0);
        assert_eq!(v.net_bw(), 1000.0);
        assert_eq!(v.get(ResourceKind::Cpu), 4000.0);
        let cm = ResourceVector::cpu_mem(2000.0, 4096.0);
        assert_eq!(cm.disk_bw(), 0.0);
        assert_eq!(cm.net_bw(), 0.0);
    }

    #[test]
    fn only_sets_single_component() {
        let v = ResourceVector::only(ResourceKind::Memory, 512.0);
        assert_eq!(v.memory(), 512.0);
        assert_eq!(v.cpu(), 0.0);
        assert_eq!(v.total(), 512.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = ResourceVector::new(1.0, 2.0, 3.0, 4.0);
        let b = ResourceVector::new(4.0, 3.0, 2.0, 1.0);
        assert_eq!(a + b, ResourceVector::splat(5.0));
        assert_eq!((a - b).cpu(), -3.0);
        assert_eq!((a * 2.0).memory(), 4.0);
        assert_eq!((a / 2.0).net_bw(), 2.0);
        assert_eq!((-a).cpu(), -1.0);
        let sum: ResourceVector = vec![a, b].into_iter().sum();
        assert_eq!(sum, a + b);
    }

    #[test]
    fn saturating_sub_never_negative() {
        let a = ResourceVector::new(1.0, 5.0, 0.0, 2.0);
        let b = ResourceVector::new(2.0, 3.0, 1.0, 2.0);
        let d = a.saturating_sub(&b);
        assert!(d.is_non_negative());
        assert_eq!(d.memory(), 2.0);
        assert_eq!(d.cpu(), 0.0);
    }

    #[test]
    fn cosine_similarity_basics() {
        let a = ResourceVector::new(1.0, 0.0, 0.0, 0.0);
        let b = ResourceVector::new(0.0, 1.0, 0.0, 0.0);
        assert!((a.cosine_similarity(&a) - 1.0).abs() < 1e-12);
        assert!(a.cosine_similarity(&b).abs() < 1e-12);
        assert_eq!(a.cosine_similarity(&ResourceVector::ZERO), 0.0);
        // Parallel vectors of different magnitude still have similarity 1.
        let c = a * 42.0;
        assert!((a.cosine_similarity(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fits_within_and_dominance() {
        let small = ResourceVector::new(1.0, 1.0, 1.0, 1.0);
        let big = ResourceVector::splat(2.0);
        assert!(small.fits_within(&big));
        assert!(!big.fits_within(&small));
        assert!(small.fits_within(&small));
    }

    #[test]
    fn utilization_and_division() {
        let used = ResourceVector::new(500.0, 2048.0, 0.0, 0.0);
        let cap = ResourceVector::new(1000.0, 4096.0, 0.0, 100.0);
        let u = used.utilization_of(&cap);
        assert!((u.cpu() - 0.5).abs() < 1e-12);
        assert!((u.memory() - 0.5).abs() < 1e-12);
        assert_eq!(u.disk_bw(), 0.0); // 0/0 treated as 0
        assert_eq!(u.net_bw(), 0.0);
    }

    #[test]
    fn clamp_and_min_max() {
        let v = ResourceVector::new(5.0, -1.0, 10.0, 0.5);
        let lo = ResourceVector::ZERO;
        let hi = ResourceVector::splat(4.0);
        let c = v.clamp(&lo, &hi);
        assert_eq!(c, ResourceVector::new(4.0, 0.0, 4.0, 0.5));
    }

    #[test]
    fn display_contains_units() {
        let s = format!("{}", ResourceVector::new(1000.0, 2048.0, 50.0, 100.0));
        assert!(s.contains("cpu=1000.0m"));
        assert!(s.contains("mem=2048.0MiB"));
        let k = format!("{}", ResourceKind::Cpu);
        assert_eq!(k, "cpu");
        assert_eq!(ResourceKind::Memory.unit(), "MiB");
    }

    #[test]
    fn index_mut_roundtrip() {
        let mut v = ResourceVector::ZERO;
        v[ResourceKind::NetBw] = 123.0;
        assert_eq!(v.net_bw(), 123.0);
        assert_eq!(v.with(ResourceKind::Cpu, 7.0).cpu(), 7.0);
    }

    #[test]
    fn iter_yields_all_kinds_in_order() {
        let v = ResourceVector::new(1.0, 2.0, 3.0, 4.0);
        let collected: Vec<_> = v.iter().collect();
        assert_eq!(collected.len(), 4);
        assert_eq!(collected[0], (ResourceKind::Cpu, 1.0));
        assert_eq!(collected[3], (ResourceKind::NetBw, 4.0));
    }
}
