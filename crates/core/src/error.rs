//! Error types shared across the workspace.

use crate::resources::ResourceKind;
use crate::vm::{ServerId, VmId};
use std::fmt;

/// Errors produced by deflation policies, placement, and the hypervisor
/// substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum DeflateError {
    /// A VM specification was internally inconsistent.
    InvalidSpec {
        /// Offending VM.
        vm: VmId,
        /// Human-readable reason.
        reason: String,
    },
    /// A policy was asked to reclaim more than the deflatable pool can yield.
    InsufficientDeflatableCapacity {
        /// Resource dimension that fell short.
        kind: ResourceKind,
        /// Amount requested.
        requested: f64,
        /// Amount available for reclamation.
        available: f64,
    },
    /// Placement could not find a feasible server for a VM.
    PlacementFailed {
        /// VM that could not be placed.
        vm: VmId,
    },
    /// A VM was not found where it was expected (server or cluster map).
    UnknownVm(VmId),
    /// A server was not found in the cluster map.
    UnknownServer(ServerId),
    /// A hotplug operation was rejected by the (simulated) guest OS.
    HotplugRejected {
        /// VM whose guest OS rejected the operation.
        vm: VmId,
        /// Resource dimension of the operation.
        kind: ResourceKind,
        /// Reason for rejection.
        reason: String,
    },
    /// A hypervisor operation referenced an allocation outside valid bounds.
    InvalidAllocation {
        /// Offending VM.
        vm: VmId,
        /// Human-readable reason.
        reason: String,
    },
    /// Admission control rejected a VM (e.g. a full partition, §5.2.1).
    AdmissionRejected {
        /// VM that was rejected.
        vm: VmId,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for DeflateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeflateError::InvalidSpec { vm, reason } => {
                write!(f, "invalid spec for {vm}: {reason}")
            }
            DeflateError::InsufficientDeflatableCapacity {
                kind,
                requested,
                available,
            } => write!(
                f,
                "cannot reclaim {requested:.1} {unit} of {kind}: only {available:.1} deflatable",
                unit = kind.unit()
            ),
            DeflateError::PlacementFailed { vm } => write!(f, "no feasible server for {vm}"),
            DeflateError::UnknownVm(vm) => write!(f, "unknown VM {vm}"),
            DeflateError::UnknownServer(s) => write!(f, "unknown server {s}"),
            DeflateError::HotplugRejected { vm, kind, reason } => {
                write!(f, "hotplug of {kind} rejected for {vm}: {reason}")
            }
            DeflateError::InvalidAllocation { vm, reason } => {
                write!(f, "invalid allocation for {vm}: {reason}")
            }
            DeflateError::AdmissionRejected { vm, reason } => {
                write!(f, "admission rejected for {vm}: {reason}")
            }
        }
    }
}

impl std::error::Error for DeflateError {}

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, DeflateError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DeflateError::InsufficientDeflatableCapacity {
            kind: ResourceKind::Cpu,
            requested: 100.0,
            available: 10.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("100.0"));
        assert!(msg.contains("millicores"));

        let e = DeflateError::HotplugRejected {
            vm: VmId(9),
            kind: ResourceKind::Memory,
            reason: "below RSS".into(),
        };
        assert!(e.to_string().contains("vm-9"));
        assert!(e.to_string().contains("below RSS"));

        let e = DeflateError::PlacementFailed { vm: VmId(1) };
        assert!(e.to_string().contains("vm-1"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(DeflateError::UnknownVm(VmId(5)));
        assert!(e.to_string().contains("vm-5"));
    }
}
