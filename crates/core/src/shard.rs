//! Engine-sharding configuration.
//!
//! The discrete-event simulator can split its global event queue into
//! per-shard queues driven by a coordinator (see `deflate-transient`'s
//! `ShardedEventQueue`) and fan embarrassingly-parallel per-server work
//! out to one `std::thread` worker per shard. [`ShardConfig`] is the
//! knob: how many shards to run, and how servers are partitioned across
//! them.
//!
//! Sharding is a **performance** setting, never a semantic one: the
//! engine guarantees that a run with any shard count is bit-identical
//! to the sequential run (shards = 1, the default). The determinism
//! contract and the parallelisation strategy are documented in
//! `docs/PERFORMANCE.md`; the parity tests in `tests/shard_parity.rs`
//! pin the guarantee.
//!
//! Servers are partitioned into *contiguous* index ranges — shard `k`
//! of `S` owns servers `[k·⌈n/S⌉, (k+1)·⌈n/S⌉)` clipped to `n` — so a
//! shard's state stays cache-local and the split is a cheap
//! `split_at_mut` chain over the per-server controller array.

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// How many shards the simulation engine runs, and how per-server state
/// is partitioned across them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Number of shards (engine workers). `1` — the default — is the
    /// sequential engine; anything larger fans per-shard work out to
    /// `std::thread` workers while the coordinator preserves the global
    /// event order. A value of `0` (possible via a struct literal or
    /// deserialisation, which bypass [`with_shards`](Self::with_shards)'s
    /// clamp) is treated as `1` by every method — see
    /// [`count`](Self::count).
    pub shards: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig::sequential()
    }
}

impl ShardConfig {
    /// The sequential engine: one shard, no worker threads — today's
    /// behaviour, and what every regression test pins.
    pub fn sequential() -> Self {
        ShardConfig { shards: 1 }
    }

    /// An engine with `shards` workers. Zero is clamped to one.
    pub fn with_shards(shards: usize) -> Self {
        ShardConfig {
            shards: shards.max(1),
        }
    }

    /// The effective shard count: [`shards`](Self::shards) with `0`
    /// normalised to `1`, so a zero smuggled in through a struct literal
    /// or `Deserialize` degrades to the sequential engine instead of
    /// panicking with a divide-by-zero deep inside the partition maths.
    pub fn count(&self) -> usize {
        self.shards.max(1)
    }

    /// True when this configuration actually runs worker threads.
    pub fn is_parallel(&self) -> bool {
        self.count() > 1
    }

    /// The shard owning item `index` out of `count` items partitioned
    /// into contiguous ranges (servers, workload slots, …). Returns 0
    /// when `count` is 0.
    pub fn shard_of(&self, index: usize, count: usize) -> usize {
        if count == 0 {
            return 0;
        }
        let span = count.div_ceil(self.count());
        (index / span.max(1)).min(self.count() - 1)
    }

    /// The contiguous index ranges each shard owns when `count` items are
    /// partitioned across the configured shards. Always returns exactly
    /// [`count()`](Self::count) ranges; trailing ranges are empty when
    /// `count < shards`.
    pub fn spans(&self, count: usize) -> Vec<Range<usize>> {
        let span = count.div_ceil(self.count()).max(1);
        (0..self.count())
            .map(|k| {
                let start = (k * span).min(count);
                let end = ((k + 1) * span).min(count);
                start..end
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential() {
        assert_eq!(ShardConfig::default(), ShardConfig::sequential());
        assert_eq!(ShardConfig::default().shards, 1);
        assert!(!ShardConfig::default().is_parallel());
        assert!(ShardConfig::with_shards(2).is_parallel());
    }

    #[test]
    fn zero_clamps_to_one() {
        assert_eq!(ShardConfig::with_shards(0).shards, 1);
    }

    #[test]
    fn zero_struct_literal_degrades_to_sequential_without_panicking() {
        // Struct literals and Deserialize bypass with_shards's clamp;
        // every method must treat shards: 0 as the sequential engine.
        let zero = ShardConfig { shards: 0 };
        assert_eq!(zero.count(), 1);
        assert!(!zero.is_parallel());
        assert_eq!(zero.shard_of(5, 10), 0);
        assert_eq!(zero.spans(10), vec![0..10]);
    }

    #[test]
    fn spans_cover_everything_exactly_once() {
        for shards in 1..6 {
            for count in [0usize, 1, 2, 5, 7, 16, 100] {
                let cfg = ShardConfig::with_shards(shards);
                let spans = cfg.spans(count);
                assert_eq!(spans.len(), shards);
                let mut covered = 0;
                for (k, span) in spans.iter().enumerate() {
                    assert_eq!(span.start, covered.min(count));
                    covered = span.end;
                    for i in span.clone() {
                        assert_eq!(cfg.shard_of(i, count), k, "item {i}, {shards} shards");
                    }
                }
                assert_eq!(covered, count);
            }
        }
    }

    #[test]
    fn shard_of_is_total_and_in_range() {
        let cfg = ShardConfig::with_shards(4);
        for i in 0..50 {
            assert!(cfg.shard_of(i, 10) < 4);
        }
        assert_eq!(cfg.shard_of(0, 0), 0);
    }
}
