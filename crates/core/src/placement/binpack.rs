//! Classic bin-packing placement baselines (§5.2 mentions best-fit and
//! first-fit as the conventional policies for non-deflatable VMs).
//!
//! These serve both as baselines for the fitness-based policy and as the
//! packing policy inside cluster partitions. "Fit" is measured on the
//! availability vector (free + deflatable/overcommitment), so the baselines
//! are also deflation-aware; setting a server's `deflatable` headroom to zero
//! recovers the conventional non-deflatable behaviour.

use super::{pick_best, PlacementDecision, PlacementPolicy, ServerView};
use crate::vm::VmSpec;
use serde::{Deserialize, Serialize};

/// First-fit: choose the first (lowest-id) feasible server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FirstFit;

impl PlacementPolicy for FirstFit {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn place(&self, vm: &VmSpec, servers: &[ServerView]) -> Option<PlacementDecision> {
        let demand = vm.max_allocation;
        servers
            .iter()
            .find(|s| s.can_accommodate(&demand))
            .map(|s| PlacementDecision {
                server: s.id,
                score: 0.0,
                requires_deflation: !s.fits_without_deflation(&demand),
            })
    }
}

/// Best-fit: choose the feasible server with the *least* remaining
/// availability after placement (tightest fit), measured by the total of the
/// availability vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BestFit;

impl PlacementPolicy for BestFit {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn place(&self, vm: &VmSpec, servers: &[ServerView]) -> Option<PlacementDecision> {
        let demand = vm.max_allocation;
        pick_best(vm, servers, |s| {
            // Smaller leftover == better, so negate for pick_best's argmax.
            -(s.availability().saturating_sub(&demand).total())
        })
    }
}

/// Worst-fit: choose the feasible server with the *most* remaining
/// availability (spreads load, reduces interference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WorstFit;

impl PlacementPolicy for WorstFit {
    fn name(&self) -> &'static str {
        "worst-fit"
    }

    fn place(&self, vm: &VmSpec, servers: &[ServerView]) -> Option<PlacementDecision> {
        let demand = vm.max_allocation;
        pick_best(vm, servers, |s| {
            s.availability().saturating_sub(&demand).total()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceVector;
    use crate::vm::{ServerId, VmClass, VmId};

    fn server(id: u32, free_cpu: f64, free_mem: f64) -> ServerView {
        let total = ResourceVector::cpu_mem(48_000.0, 131_072.0);
        ServerView {
            id: ServerId(id),
            total,
            used: total.saturating_sub(&ResourceVector::cpu_mem(free_cpu, free_mem)),
            deflatable: ResourceVector::ZERO,
            overcommitment: 1.0,
            partition: None,
        }
    }

    fn vm(cpu: f64, mem: f64) -> VmSpec {
        VmSpec::deflatable(
            VmId(7),
            VmClass::Interactive,
            ResourceVector::cpu_mem(cpu, mem),
        )
    }

    #[test]
    fn first_fit_takes_first_feasible() {
        let servers = vec![
            server(1, 1_000.0, 1_024.0),
            server(2, 10_000.0, 16_384.0),
            server(3, 40_000.0, 100_000.0),
        ];
        let d = FirstFit.place(&vm(8_000.0, 8_192.0), &servers).unwrap();
        assert_eq!(d.server, ServerId(2));
    }

    #[test]
    fn best_fit_takes_tightest() {
        let servers = vec![server(1, 40_000.0, 100_000.0), server(2, 9_000.0, 9_000.0)];
        let d = BestFit.place(&vm(8_000.0, 8_192.0), &servers).unwrap();
        assert_eq!(d.server, ServerId(2));
    }

    #[test]
    fn worst_fit_takes_emptiest() {
        let servers = vec![server(1, 40_000.0, 100_000.0), server(2, 9_000.0, 9_000.0)];
        let d = WorstFit.place(&vm(8_000.0, 8_192.0), &servers).unwrap();
        assert_eq!(d.server, ServerId(1));
    }

    #[test]
    fn all_return_none_when_infeasible() {
        let servers = vec![server(1, 1_000.0, 1_024.0)];
        let big = vm(2_000.0, 2_048.0);
        assert!(FirstFit.place(&big, &servers).is_none());
        assert!(BestFit.place(&big, &servers).is_none());
        assert!(WorstFit.place(&big, &servers).is_none());
    }

    #[test]
    fn deflatable_headroom_counts_as_capacity() {
        let mut s = server(1, 1_000.0, 1_024.0);
        s.deflatable = ResourceVector::cpu_mem(8_000.0, 8_192.0);
        let d = FirstFit.place(&vm(4_000.0, 4_096.0), &[s]).unwrap();
        assert!(d.requires_deflation);
    }

    #[test]
    fn names() {
        assert_eq!(FirstFit.name(), "first-fit");
        assert_eq!(BestFit.name(), "best-fit");
        assert_eq!(WorstFit.name(), "worst-fit");
    }
}
