//! The placement-ranking engine knob.
//!
//! Placement ranking — scoring candidate servers for one arrival — is the
//! engine's measured bottleneck at large cluster sizes (`placement_rank`
//! is 75.6% of engine self time at 100k VMs; see `docs/PERFORMANCE.md`).
//! The cluster manager maintains an **incremental score index** over
//! server views either way; [`PlacementEngine`] decides how that index
//! *evaluates* a ranking pass:
//!
//! * [`PlacementEngine::Sequential`] (the default) scores eligible
//!   servers on the coordinator thread, in server order — today's
//!   behaviour, and what every regression test pins.
//! * [`PlacementEngine::Parallel`] fans the pure-read scoring pass out to
//!   one worker per span of servers and reduces the per-span argmaxes in
//!   span order — strictly-greater score replaces, ties keep the earlier
//!   span — reproducing the sequential first-argmax **bit for bit** (the
//!   same trick the utilisation tick uses for cross-shard sums).
//!
//! Like [`ShardConfig`](crate::shard::ShardConfig) and
//! [`TelemetrySpec`](crate::telemetry::TelemetrySpec), the knob lives in
//! `deflate-core` as plain configuration data so any layer can name it
//! without depending on the ranking machinery in `deflate-cluster`. It is
//! a **performance** setting, never a semantic one: `tests/shard_parity.rs`
//! pins parallel-ranking runs bit-identical to the sequential default and
//! `tests/placement_golden.rs` pins the default itself.

use serde::{Deserialize, Serialize};

/// How the cluster manager's placement index evaluates a ranking pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PlacementEngine {
    /// Score eligible servers on the coordinator thread, in server order
    /// — the default, regression-pinned behaviour.
    #[default]
    Sequential,
    /// Fan scoring out to `workers` spans of servers with a deterministic
    /// span-order reduce. Zero is clamped to one (the sequential engine).
    Parallel {
        /// Number of scoring workers (spans). `0` and `1` both degrade
        /// to the sequential pass.
        workers: usize,
    },
}

impl PlacementEngine {
    /// The sequential ranking pass (what `Default` also yields).
    pub fn sequential() -> Self {
        PlacementEngine::Sequential
    }

    /// A parallel ranking pass with `workers` scoring spans. Values
    /// below 2 degrade to the sequential engine.
    pub fn parallel(workers: usize) -> Self {
        if workers < 2 {
            PlacementEngine::Sequential
        } else {
            PlacementEngine::Parallel { workers }
        }
    }

    /// The effective worker count: 1 for the sequential pass, the
    /// clamped span count otherwise (a `0` smuggled in through a struct
    /// literal or `Deserialize` degrades to sequential).
    pub fn workers(&self) -> usize {
        match self {
            PlacementEngine::Sequential => 1,
            PlacementEngine::Parallel { workers } => (*workers).max(1),
        }
    }

    /// True when ranking actually fans out to worker threads.
    pub fn is_parallel(&self) -> bool {
        self.workers() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential() {
        assert_eq!(PlacementEngine::default(), PlacementEngine::Sequential);
        assert_eq!(PlacementEngine::default(), PlacementEngine::sequential());
        assert!(!PlacementEngine::default().is_parallel());
        assert_eq!(PlacementEngine::default().workers(), 1);
    }

    #[test]
    fn small_worker_counts_degrade_to_sequential() {
        assert_eq!(PlacementEngine::parallel(0), PlacementEngine::Sequential);
        assert_eq!(PlacementEngine::parallel(1), PlacementEngine::Sequential);
        let zero = PlacementEngine::Parallel { workers: 0 };
        assert_eq!(zero.workers(), 1);
        assert!(!zero.is_parallel());
    }

    #[test]
    fn parallel_reports_its_span_count() {
        let engine = PlacementEngine::parallel(4);
        assert_eq!(engine, PlacementEngine::Parallel { workers: 4 });
        assert!(engine.is_parallel());
        assert_eq!(engine.workers(), 4);
    }
}
