//! Deflation-aware VM placement (§5.2).
//!
//! Placement decides *which server* a new VM lands on; deflation policies
//! (see [`crate::policy`]) then decide how the server makes room for it. The
//! paper's placement uses multi-dimensional bin-packing with a cosine
//! "fitness" score between the VM's demand vector and each server's
//! availability vector, where availability includes the resources that could
//! be reclaimed by deflating resident VMs, discounted by how overcommitted
//! the server already is.
//!
//! The module provides:
//!
//! * [`ServerView`] — the lightweight per-server state placement needs.
//! * [`PlacementPolicy`] — trait with [`CosineFitness`],
//!   [`FirstFit`], [`BestFit`] and
//!   [`WorstFit`] implementations.
//! * [`PartitionedPlacement`] — the cluster
//!   partitioning scheme of §5.2.1 that restricts each priority class to its
//!   own pool of servers.

pub mod binpack;
pub mod engine;
pub mod fitness;
pub mod partition;

pub use binpack::{BestFit, FirstFit, WorstFit};
pub use engine::PlacementEngine;
pub use fitness::CosineFitness;
pub use partition::{PartitionScheme, PartitionedPlacement};

use crate::resources::ResourceVector;
use crate::vm::{Priority, ServerId, VmSpec};
use serde::{Deserialize, Serialize};

/// Snapshot of a server's capacity state, as seen by the placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerView {
    /// Server identity.
    pub id: ServerId,
    /// Total hardware capacity of the server.
    pub total: ResourceVector,
    /// Sum of the *current* allocations of all resident VMs.
    pub used: ResourceVector,
    /// Resources that could still be reclaimed from resident deflatable VMs
    /// (`deflatable_j` in §5.2).
    pub deflatable: ResourceVector,
    /// Extent of deflation already performed on this server, expressed as an
    /// overcommitment factor `committed / total ≥ 1.0`
    /// (`overcommitted_j` in §5.2). Servers that have not deflated anything
    /// report `1.0`.
    pub overcommitment: f64,
    /// Partition this server belongs to (used only by
    /// [`PartitionedPlacement`]); `None` means the shared pool.
    pub partition: Option<u8>,
}

impl ServerView {
    /// Create a view for an empty server.
    pub fn empty(id: ServerId, total: ResourceVector) -> Self {
        ServerView {
            id,
            total,
            used: ResourceVector::ZERO,
            deflatable: ResourceVector::ZERO,
            overcommitment: 1.0,
            partition: None,
        }
    }

    /// Free (unallocated) capacity, ignoring deflation headroom.
    pub fn free(&self) -> ResourceVector {
        self.total.saturating_sub(&self.used)
    }

    /// The availability vector of §5.2:
    /// `A_j = Total_j − Used_j + deflatable_j / overcommitted_j`.
    ///
    /// Dividing the deflatable headroom by the overcommitment factor makes
    /// already-overcommitted servers look less attractive, "prefer\[ring\]
    /// servers with lower overcommitment" for better load balancing.
    pub fn availability(&self) -> ResourceVector {
        let oc = self.overcommitment.max(1.0);
        self.free() + self.deflatable / oc
    }

    /// Whether the VM could be accommodated at all, counting both free space
    /// and every reclaimable resource (ignoring the overcommitment discount).
    pub fn can_accommodate(&self, demand: &ResourceVector) -> bool {
        demand.fits_within(&(self.free() + self.deflatable))
    }

    /// Whether the VM fits without deflating anyone.
    pub fn fits_without_deflation(&self, demand: &ResourceVector) -> bool {
        demand.fits_within(&self.free())
    }
}

/// A placement decision: the chosen server and the score it was chosen with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementDecision {
    /// Chosen server.
    pub server: ServerId,
    /// Policy-specific score (higher is better); informational.
    pub score: f64,
    /// Whether placing the VM will require deflating resident VMs.
    pub requires_deflation: bool,
}

/// A VM-to-server placement policy.
pub trait PlacementPolicy: Send + Sync {
    /// Short policy name used in experiment output.
    fn name(&self) -> &'static str;

    /// Choose a server for `vm` among `servers`. Returns `None` when no
    /// server can accommodate the VM even after deflating everything.
    fn place(&self, vm: &VmSpec, servers: &[ServerView]) -> Option<PlacementDecision>;
}

/// Helper shared by concrete policies: iterate over feasible servers and pick
/// the one maximising `score`.
pub(crate) fn pick_best<F>(
    vm: &VmSpec,
    servers: &[ServerView],
    mut score: F,
) -> Option<PlacementDecision>
where
    F: FnMut(&ServerView) -> f64,
{
    let demand = vm.max_allocation;
    let mut best: Option<PlacementDecision> = None;
    for server in servers {
        if !server.can_accommodate(&demand) {
            continue;
        }
        let s = score(server);
        let candidate = PlacementDecision {
            server: server.id,
            score: s,
            requires_deflation: !server.fits_without_deflation(&demand),
        };
        match &best {
            Some(b) if b.score >= s => {}
            _ => best = Some(candidate),
        }
    }
    best
}

/// Group servers into priority partitions for [`PartitionedPlacement`]:
/// returns the partition index a VM of the given priority should use, when
/// the cluster is split into `partitions` equal pools ordered from lowest to
/// highest priority.
pub fn partition_for_priority(priority: Priority, partitions: u8) -> u8 {
    if partitions == 0 {
        return 0;
    }
    let idx = (priority.value() * partitions as f64).floor() as i64;
    idx.clamp(0, partitions as i64 - 1) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{VmClass, VmId};

    fn view(id: u32, free_cpu: f64, deflatable_cpu: f64, oc: f64) -> ServerView {
        let total = ResourceVector::cpu_mem(48_000.0, 131_072.0);
        ServerView {
            id: ServerId(id),
            total,
            used: total - ResourceVector::cpu_mem(free_cpu, 65_536.0),
            deflatable: ResourceVector::cpu_mem(deflatable_cpu, 0.0),
            overcommitment: oc,
            partition: None,
        }
    }

    #[test]
    fn availability_includes_discounted_deflatable() {
        let v = view(1, 8_000.0, 4_000.0, 2.0);
        let a = v.availability();
        assert!((a.cpu() - (8_000.0 + 2_000.0)).abs() < 1e-6);
        // With no overcommitment the full deflatable headroom counts.
        let v1 = view(1, 8_000.0, 4_000.0, 1.0);
        assert!((v1.availability().cpu() - 12_000.0).abs() < 1e-6);
    }

    #[test]
    fn can_accommodate_uses_undiscounted_headroom() {
        let v = view(1, 1_000.0, 4_000.0, 4.0);
        let vm = VmSpec::deflatable(
            VmId(1),
            VmClass::Interactive,
            ResourceVector::cpu_mem(4_500.0, 1_024.0),
        );
        assert!(v.can_accommodate(&vm.max_allocation));
        assert!(!v.fits_without_deflation(&vm.max_allocation));
        let too_big = ResourceVector::cpu_mem(6_000.0, 1_024.0);
        assert!(!v.can_accommodate(&too_big));
    }

    #[test]
    fn empty_server_view() {
        let v = ServerView::empty(ServerId(3), ResourceVector::cpu_mem(1_000.0, 1_024.0));
        assert_eq!(v.free(), v.total);
        assert_eq!(v.availability(), v.total);
        assert_eq!(v.overcommitment, 1.0);
    }

    #[test]
    fn partition_for_priority_buckets() {
        assert_eq!(partition_for_priority(Priority::new(0.1), 4), 0);
        assert_eq!(partition_for_priority(Priority::new(0.3), 4), 1);
        assert_eq!(partition_for_priority(Priority::new(0.6), 4), 2);
        assert_eq!(partition_for_priority(Priority::new(0.99), 4), 3);
        assert_eq!(partition_for_priority(Priority::MAX, 4), 3);
        assert_eq!(partition_for_priority(Priority::new(0.5), 0), 0);
    }

    #[test]
    fn pick_best_skips_infeasible_servers() {
        let vm = VmSpec::deflatable(
            VmId(1),
            VmClass::Interactive,
            ResourceVector::cpu_mem(10_000.0, 1_024.0),
        );
        let servers = vec![view(1, 2_000.0, 0.0, 1.0), view(2, 20_000.0, 0.0, 1.0)];
        let d = pick_best(&vm, &servers, |s| s.free().cpu()).unwrap();
        assert_eq!(d.server, ServerId(2));
        assert!(!d.requires_deflation);
        // No server fits: None.
        let vm_huge = VmSpec::deflatable(
            VmId(2),
            VmClass::Interactive,
            ResourceVector::cpu_mem(1e9, 1_024.0),
        );
        assert!(pick_best(&vm_huge, &servers, |s| s.free().cpu()).is_none());
    }
}
