//! Placement with cluster partitions (§5.2.1).
//!
//! Mixing VMs of different priority levels on the same servers improves
//! utilisation but increases the risk of performance interference for the
//! higher-priority VMs. The partitioning scheme splits the cluster into
//! priority pools and restricts each VM to the servers of its own pool; the
//! regular (fitness / bin-packing) policy is applied *within* the pool. If a
//! pool is full even after deflating all of its VMs, the VM is rejected by
//! admission control rather than spilling into another pool.

use super::{partition_for_priority, PlacementDecision, PlacementPolicy, ServerView};
use crate::vm::{Priority, VmSpec};
use serde::{Deserialize, Serialize};

/// How servers are assigned to priority pools.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PartitionScheme {
    /// No partitioning — every VM may use every server (the "mixing"
    /// baseline of §5.2).
    None,
    /// The cluster is split into `n` pools of (approximately) equal size,
    /// pool `k` hosting VMs whose priority falls in the `k`-th quantile.
    ByPriority {
        /// Number of pools.
        pools: u8,
    },
    /// Dedicated pool for non-deflatable (on-demand) VMs, shared pool for all
    /// deflatable VMs; the fraction is the share of servers reserved for the
    /// on-demand pool.
    OnDemandSplit {
        /// Fraction of servers in the on-demand pool, `0.0‥1.0`.
        on_demand_fraction: f64,
    },
}

impl PartitionScheme {
    /// Assign a partition index to each of `n_servers` servers.
    pub fn assign_servers(&self, n_servers: usize) -> Vec<Option<u8>> {
        match self {
            PartitionScheme::None => vec![None; n_servers],
            PartitionScheme::ByPriority { pools } => {
                let pools = (*pools).max(1) as usize;
                (0..n_servers)
                    .map(|i| Some((i * pools / n_servers.max(1)).min(pools - 1) as u8))
                    .collect()
            }
            PartitionScheme::OnDemandSplit { on_demand_fraction } => {
                let cut =
                    ((n_servers as f64) * on_demand_fraction.clamp(0.0, 1.0)).round() as usize;
                (0..n_servers)
                    .map(|i| Some(if i < cut { 1 } else { 0 }))
                    .collect()
            }
        }
    }

    /// The partition a VM belongs to under this scheme.
    pub fn partition_of(&self, deflatable: bool, priority: Priority) -> Option<u8> {
        match self {
            PartitionScheme::None => None,
            PartitionScheme::ByPriority { pools } => Some(partition_for_priority(priority, *pools)),
            PartitionScheme::OnDemandSplit { .. } => Some(if deflatable { 0 } else { 1 }),
        }
    }
}

/// Wraps an inner placement policy and restricts candidate servers to the
/// VM's priority pool.
pub struct PartitionedPlacement<P> {
    /// Partitioning scheme.
    pub scheme: PartitionScheme,
    /// Policy applied within the pool.
    pub inner: P,
}

impl<P: PlacementPolicy> PartitionedPlacement<P> {
    /// Create a partitioned placement wrapper.
    pub fn new(scheme: PartitionScheme, inner: P) -> Self {
        PartitionedPlacement { scheme, inner }
    }
}

impl<P: PlacementPolicy> PlacementPolicy for PartitionedPlacement<P> {
    fn name(&self) -> &'static str {
        "partitioned"
    }

    fn place(&self, vm: &VmSpec, servers: &[ServerView]) -> Option<PlacementDecision> {
        match self.scheme.partition_of(vm.deflatable, vm.priority) {
            None => self.inner.place(vm, servers),
            Some(pool) => {
                let eligible: Vec<ServerView> = servers
                    .iter()
                    .copied()
                    .filter(|s| s.partition == Some(pool) || s.partition.is_none())
                    .collect();
                self.inner.place(vm, &eligible)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::FirstFit;
    use crate::resources::ResourceVector;
    use crate::vm::{ServerId, VmClass, VmId};

    fn server(id: u32, partition: Option<u8>) -> ServerView {
        ServerView {
            id: ServerId(id),
            total: ResourceVector::cpu_mem(48_000.0, 131_072.0),
            used: ResourceVector::ZERO,
            deflatable: ResourceVector::ZERO,
            overcommitment: 1.0,
            partition,
        }
    }

    fn vm(id: u64, priority: f64, deflatable: bool) -> VmSpec {
        let spec = VmSpec::deflatable(
            VmId(id),
            VmClass::Interactive,
            ResourceVector::cpu_mem(4_000.0, 8_192.0),
        )
        .with_priority(Priority::new(priority));
        if deflatable {
            spec
        } else {
            VmSpec::on_demand(
                VmId(id),
                VmClass::Unknown,
                ResourceVector::cpu_mem(4_000.0, 8_192.0),
            )
        }
    }

    #[test]
    fn scheme_none_assigns_no_partitions() {
        let scheme = PartitionScheme::None;
        assert_eq!(scheme.assign_servers(3), vec![None, None, None]);
        assert_eq!(scheme.partition_of(true, Priority::new(0.3)), None);
    }

    #[test]
    fn by_priority_assigns_equal_pools() {
        let scheme = PartitionScheme::ByPriority { pools: 4 };
        let assigned = scheme.assign_servers(8);
        assert_eq!(assigned.len(), 8);
        for pool in 0..4u8 {
            assert_eq!(
                assigned.iter().filter(|p| **p == Some(pool)).count(),
                2,
                "pool {pool} should have 2 servers"
            );
        }
        assert_eq!(scheme.partition_of(true, Priority::new(0.1)), Some(0));
        assert_eq!(scheme.partition_of(true, Priority::new(0.9)), Some(3));
    }

    #[test]
    fn on_demand_split_reserves_servers() {
        let scheme = PartitionScheme::OnDemandSplit {
            on_demand_fraction: 0.25,
        };
        let assigned = scheme.assign_servers(8);
        assert_eq!(assigned.iter().filter(|p| **p == Some(1)).count(), 2);
        assert_eq!(assigned.iter().filter(|p| **p == Some(0)).count(), 6);
        assert_eq!(scheme.partition_of(false, Priority::MAX), Some(1));
        assert_eq!(scheme.partition_of(true, Priority::new(0.4)), Some(0));
    }

    #[test]
    fn placement_restricted_to_pool() {
        let scheme = PartitionScheme::ByPriority { pools: 2 };
        let policy = PartitionedPlacement::new(scheme, FirstFit);
        let servers = vec![server(1, Some(0)), server(2, Some(1))];
        // Low priority VM must land in pool 0 (server 1).
        let d = policy.place(&vm(1, 0.2, true), &servers).unwrap();
        assert_eq!(d.server, ServerId(1));
        // High priority VM in pool 1 (server 2).
        let d = policy.place(&vm(2, 0.9, true), &servers).unwrap();
        assert_eq!(d.server, ServerId(2));
    }

    #[test]
    fn full_pool_rejects_even_if_other_pool_has_space() {
        let scheme = PartitionScheme::ByPriority { pools: 2 };
        let policy = PartitionedPlacement::new(scheme, FirstFit);
        // Pool 0 server is completely full; pool 1 server is empty.
        let mut full = server(1, Some(0));
        full.used = full.total;
        let servers = vec![full, server(2, Some(1))];
        assert!(policy.place(&vm(1, 0.2, true), &servers).is_none());
    }

    #[test]
    fn unpartitioned_servers_accept_everyone() {
        let scheme = PartitionScheme::ByPriority { pools: 2 };
        let policy = PartitionedPlacement::new(scheme, FirstFit);
        let servers = vec![server(1, None)];
        assert!(policy.place(&vm(1, 0.2, true), &servers).is_some());
        assert!(policy.place(&vm(2, 0.9, true), &servers).is_some());
    }
}
