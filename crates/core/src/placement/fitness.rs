//! Cosine-similarity ("fitness") placement, §5.2.
//!
//! `fitness(D, A_j) = A_j · D / (|A_j| |D|)` where `D` is the demand vector of
//! the new VM and `A_j` the availability vector of server `j`
//! (free + deflatable/overcommitment). Picking the server with the highest
//! fitness aligns the VM with servers whose spare capacity has the same
//! *shape* as the demand, which is the multi-resource packing heuristic of
//! Tetris [Grandl et al., SIGCOMM'14] that the paper cites.

use super::{pick_best, PlacementDecision, PlacementPolicy, ServerView};
use crate::vm::VmSpec;
use serde::{Deserialize, Serialize};

/// Cosine-fitness placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CosineFitness {
    /// When `true`, the score is the *projection* of the availability vector
    /// onto the demand direction (`A·D / |D|`) instead of the pure cosine.
    /// The projection keeps the shape-matching property but also prefers
    /// servers with more absolute availability, which is what gives the
    /// paper's placement its load-balancing behaviour ("prefers servers with
    /// lower overcommitment"); the pure cosine is scale-invariant and would
    /// happily concentrate VMs on nearly-full servers whose availability
    /// merely points in the right direction.
    pub prefer_emptier_on_tie: bool,
}

impl CosineFitness {
    /// Fitness placement with the magnitude-aware (projection) score — the
    /// variant the cluster manager uses.
    pub fn load_balancing() -> Self {
        CosineFitness {
            prefer_emptier_on_tie: true,
        }
    }

    /// Raw cosine fitness score of a server for a demand vector (§5.2).
    pub fn fitness(server: &ServerView, demand: &crate::resources::ResourceVector) -> f64 {
        server.availability().cosine_similarity(demand)
    }

    /// Projection of the server's availability onto the demand direction:
    /// `A·D / |D|` — the magnitude-aware score used by
    /// [`CosineFitness::load_balancing`].
    ///
    /// For scoring purposes the deflatable headroom is weighted at half of
    /// genuinely free capacity (on top of the paper's division by the
    /// overcommitment factor): making room by deflation is possible but not
    /// free, so servers with real spare capacity are preferred. Feasibility
    /// checks ([`ServerView::can_accommodate`]) still count the full
    /// headroom.
    pub fn projection(server: &ServerView, demand: &crate::resources::ResourceVector) -> f64 {
        let norm = demand.norm();
        if norm <= f64::EPSILON {
            return 0.0;
        }
        let oc = server.overcommitment.max(1.0);
        let scoring_availability = server.free() + server.deflatable * (0.5 / oc);
        scoring_availability.dot(demand) / norm
    }
}

impl PlacementPolicy for CosineFitness {
    fn name(&self) -> &'static str {
        "cosine-fitness"
    }

    fn place(&self, vm: &VmSpec, servers: &[ServerView]) -> Option<PlacementDecision> {
        let demand = vm.max_allocation;
        let magnitude_aware = self.prefer_emptier_on_tie;
        pick_best(vm, servers, |s| {
            if magnitude_aware {
                Self::projection(s, &demand)
            } else {
                Self::fitness(s, &demand)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceVector;
    use crate::vm::{ServerId, VmClass, VmId};

    fn server(id: u32, free: ResourceVector, deflatable: ResourceVector, oc: f64) -> ServerView {
        let total = ResourceVector::new(48_000.0, 131_072.0, 1_000.0, 10_000.0);
        ServerView {
            id: ServerId(id),
            total,
            used: total.saturating_sub(&free),
            deflatable,
            overcommitment: oc,
            partition: None,
        }
    }

    fn vm(cpu: f64, mem: f64) -> VmSpec {
        VmSpec::deflatable(
            VmId(1),
            VmClass::Interactive,
            ResourceVector::cpu_mem(cpu, mem),
        )
    }

    #[test]
    fn picks_server_whose_availability_matches_demand_shape() {
        // Demand is CPU-heavy. Server 1 has CPU-shaped availability, server 2
        // memory-shaped. Fitness should pick server 1 even though server 2
        // has more total free capacity.
        let s1 = server(
            1,
            ResourceVector::cpu_mem(20_000.0, 8_192.0),
            ResourceVector::ZERO,
            1.0,
        );
        let s2 = server(
            2,
            ResourceVector::cpu_mem(6_000.0, 100_000.0),
            ResourceVector::ZERO,
            1.0,
        );
        let d = CosineFitness::default()
            .place(&vm(16_000.0, 4_096.0), &[s2, s1])
            .unwrap();
        assert_eq!(d.server, ServerId(1));
    }

    #[test]
    fn overcommitment_shrinks_the_availability_entering_the_score() {
        // Cosine fitness is computed on the availability vector
        // `free + deflatable/overcommitment`; a higher overcommitment factor
        // therefore reduces the weight of reclaimable headroom in the score.
        let fresh = server(
            1,
            ResourceVector::cpu_mem(2_000.0, 2_048.0),
            ResourceVector::cpu_mem(10_000.0, 2_048.0),
            1.0,
        );
        let overcommitted = ServerView {
            id: ServerId(2),
            overcommitment: 4.0,
            ..fresh
        };
        assert!(fresh.availability().cpu() > overcommitted.availability().cpu());
        // Placing onto a server that only has deflatable headroom left is
        // flagged as requiring deflation.
        let demand = vm(8_000.0, 2_048.0);
        let d = CosineFitness::default().place(&demand, &[fresh]).unwrap();
        assert!(d.requires_deflation);
    }

    #[test]
    fn returns_none_when_nothing_fits() {
        let s = server(
            1,
            ResourceVector::cpu_mem(1_000.0, 1_024.0),
            ResourceVector::ZERO,
            1.0,
        );
        assert!(CosineFitness::default()
            .place(&vm(2_000.0, 4_096.0), &[s])
            .is_none());
    }

    #[test]
    fn tie_break_prefers_emptier_server() {
        let a = server(
            1,
            ResourceVector::cpu_mem(4_000.0, 4_096.0),
            ResourceVector::ZERO,
            1.0,
        );
        let b = server(
            2,
            ResourceVector::cpu_mem(8_000.0, 8_192.0),
            ResourceVector::ZERO,
            1.0,
        );
        // Availability vectors are parallel, so cosine fitness ties exactly.
        let d = CosineFitness::load_balancing()
            .place(&vm(2_000.0, 2_048.0), &[a, b])
            .unwrap();
        assert_eq!(d.server, ServerId(2));
    }

    #[test]
    fn name() {
        assert_eq!(CosineFitness::default().name(), "cosine-fitness");
    }
}
