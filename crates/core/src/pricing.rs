//! Pricing models for deflatable VMs (§5.2.2) and the revenue accounting
//! used by the cluster-level evaluation (§7.4.3, Figure 22).
//!
//! Three pricing policies are modelled:
//!
//! * **Static** — deflatable VMs are sold at a fixed discount off the
//!   on-demand price (the paper uses 0.2×, mirroring current spot /
//!   preemptible / low-priority offerings).
//! * **Priority-based** — the price equals the priority level times the
//!   on-demand price ("priority-level 0.5 has price 0.5× the on-demand
//!   price").
//! * **Allocation-based** — the VM is billed for the resources it was
//!   actually allocated over time ("VMs pay half price when at 50 %
//!   allocation").

use crate::resources::ResourceVector;
use crate::vm::{Priority, VmSpec};
use serde::{Deserialize, Serialize};

/// Per-unit-hour prices used to convert a resource vector into dollars.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateCard {
    /// Price per physical core (1000 millicores) per hour.
    pub per_core_hour: f64,
    /// Price per GiB of memory per hour.
    pub per_gib_hour: f64,
    /// Price per 100 MB/s of disk bandwidth per hour.
    pub per_disk_100mbps_hour: f64,
    /// Price per Gbit/s of network bandwidth per hour.
    pub per_net_gbps_hour: f64,
}

impl Default for RateCard {
    /// Rates loosely modelled on public-cloud general-purpose instances
    /// (about $0.05 per vCPU-hour and $0.005 per GiB-hour); the absolute
    /// numbers cancel out of every relative-revenue result.
    fn default() -> Self {
        RateCard {
            per_core_hour: 0.05,
            per_gib_hour: 0.005,
            per_disk_100mbps_hour: 0.002,
            per_net_gbps_hour: 0.002,
        }
    }
}

impl RateCard {
    /// On-demand price of an allocation vector, per hour.
    pub fn hourly_price(&self, allocation: &ResourceVector) -> f64 {
        self.per_core_hour * allocation.cpu() / 1000.0
            + self.per_gib_hour * allocation.memory() / 1024.0
            + self.per_disk_100mbps_hour * allocation.disk_bw() / 100.0
            + self.per_net_gbps_hour * allocation.net_bw() / 1000.0
    }
}

/// Pricing policy for deflatable VMs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PricingPolicy {
    /// Fixed discount off the on-demand price, regardless of deflation.
    Static {
        /// Multiplier applied to the on-demand price (e.g. `0.2`).
        discount: f64,
    },
    /// Price equals the VM's priority level times the on-demand price.
    PriorityBased,
    /// Bill for the mean fraction of the allocation actually granted over the
    /// VM's lifetime, times the on-demand price.
    AllocationBased,
}

impl PricingPolicy {
    /// The paper's default static offering: 0.2× the on-demand price,
    /// "corresponding to the discounts offered by current transient cloud
    /// servers".
    pub fn static_default() -> Self {
        PricingPolicy::Static { discount: 0.2 }
    }

    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            PricingPolicy::Static { .. } => "static",
            PricingPolicy::PriorityBased => "priority-based",
            PricingPolicy::AllocationBased => "allocation-based",
        }
    }

    /// Revenue earned from one VM.
    ///
    /// * `spec` — the VM (its maximum allocation sets the on-demand price).
    /// * `hours` — how long the VM ran.
    /// * `mean_allocation_fraction` — time-average of `current / max`
    ///   allocation over the VM's lifetime, in `[0, 1]` (1.0 = never
    ///   deflated). Only the allocation-based policy uses it.
    /// * `rates` — the rate card.
    ///
    /// Non-deflatable VMs always pay the full on-demand price.
    pub fn revenue(
        &self,
        spec: &VmSpec,
        hours: f64,
        mean_allocation_fraction: f64,
        rates: &RateCard,
    ) -> f64 {
        let on_demand = rates.hourly_price(&spec.max_allocation) * hours.max(0.0);
        if !spec.deflatable {
            return on_demand;
        }
        let frac = mean_allocation_fraction.clamp(0.0, 1.0);
        match self {
            PricingPolicy::Static { discount } => on_demand * discount.clamp(0.0, 1.0),
            PricingPolicy::PriorityBased => on_demand * spec.priority.value(),
            PricingPolicy::AllocationBased => on_demand * frac,
        }
    }

    /// The price multiplier (relative to on-demand) a user of the given
    /// priority would be quoted up-front, before any deflation happens.
    pub fn quoted_multiplier(&self, priority: Priority) -> f64 {
        match self {
            PricingPolicy::Static { discount } => discount.clamp(0.0, 1.0),
            PricingPolicy::PriorityBased => priority.value(),
            PricingPolicy::AllocationBased => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{VmClass, VmId};

    fn spec(priority: f64) -> VmSpec {
        VmSpec::deflatable(
            VmId(1),
            VmClass::Interactive,
            ResourceVector::cpu_mem(4000.0, 16_384.0),
        )
        .with_priority(Priority::new(priority))
    }

    #[test]
    fn rate_card_prices_scale_linearly() {
        let rates = RateCard::default();
        let small = ResourceVector::cpu_mem(1000.0, 1024.0);
        let big = small * 4.0;
        assert!((rates.hourly_price(&big) - 4.0 * rates.hourly_price(&small)).abs() < 1e-12);
        assert!(rates.hourly_price(&ResourceVector::ZERO).abs() < 1e-12);
    }

    #[test]
    fn static_pricing_is_flat_discount() {
        let rates = RateCard::default();
        let p = PricingPolicy::static_default();
        let s = spec(0.5);
        let full = rates.hourly_price(&s.max_allocation) * 10.0;
        let r = p.revenue(&s, 10.0, 0.3, &rates);
        assert!((r - 0.2 * full).abs() < 1e-12);
        // Deflation (mean allocation fraction) does not change static revenue.
        assert_eq!(r, p.revenue(&s, 10.0, 1.0, &rates));
    }

    #[test]
    fn priority_pricing_scales_with_priority() {
        let rates = RateCard::default();
        let p = PricingPolicy::PriorityBased;
        let low = p.revenue(&spec(0.2), 1.0, 1.0, &rates);
        let high = p.revenue(&spec(0.8), 1.0, 1.0, &rates);
        assert!((high / low - 4.0).abs() < 1e-9);
    }

    #[test]
    fn allocation_pricing_tracks_mean_allocation() {
        let rates = RateCard::default();
        let p = PricingPolicy::AllocationBased;
        let s = spec(0.5);
        let full = p.revenue(&s, 2.0, 1.0, &rates);
        let half = p.revenue(&s, 2.0, 0.5, &rates);
        assert!((half - 0.5 * full).abs() < 1e-12);
    }

    #[test]
    fn on_demand_vms_always_pay_full_price() {
        let rates = RateCard::default();
        let od = VmSpec::on_demand(
            VmId(2),
            VmClass::Unknown,
            ResourceVector::cpu_mem(4000.0, 16_384.0),
        );
        let full = rates.hourly_price(&od.max_allocation);
        for policy in [
            PricingPolicy::static_default(),
            PricingPolicy::PriorityBased,
            PricingPolicy::AllocationBased,
        ] {
            assert!((policy.revenue(&od, 1.0, 0.1, &rates) - full).abs() < 1e-12);
        }
    }

    #[test]
    fn quoted_multipliers() {
        assert_eq!(
            PricingPolicy::static_default().quoted_multiplier(Priority::new(0.7)),
            0.2
        );
        assert_eq!(
            PricingPolicy::PriorityBased.quoted_multiplier(Priority::new(0.7)),
            0.7
        );
        assert_eq!(
            PricingPolicy::AllocationBased.quoted_multiplier(Priority::new(0.7)),
            1.0
        );
    }

    #[test]
    fn names() {
        assert_eq!(PricingPolicy::static_default().name(), "static");
        assert_eq!(PricingPolicy::PriorityBased.name(), "priority-based");
        assert_eq!(PricingPolicy::AllocationBased.name(), "allocation-based");
    }

    #[test]
    fn negative_hours_clamp_to_zero() {
        let rates = RateCard::default();
        assert_eq!(
            PricingPolicy::static_default().revenue(&spec(0.5), -5.0, 1.0, &rates),
            0.0
        );
    }
}
