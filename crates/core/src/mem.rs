//! Byte-accounting conventions behind the engine's `accounted_bytes()`
//! impls and the `mem.*` gauges.
//!
//! Every stateful subsystem reports its **owned heap bytes** — the
//! allocations reachable behind the struct, *excluding*
//! `size_of::<Self>()` itself, which whatever container holds the value
//! accounts for (a `Vec` spine via [`vec_capacity_bytes`], a map node
//! via [`map_entry_bytes`]). The helpers here keep those conventions
//! identical across crates, so per-subsystem totals can be summed into
//! one ledger without double counting.
//!
//! The numbers are an *estimate with a contract*: deterministic
//! (identical across runs, shard counts and hosts — no pointers, no
//! allocator introspection) and honest about what they cover (owned
//! heap blocks, not allocator slack or code). `fig_memory`'s CI gate
//! checks the estimate explains ≥ 70 % of measured peak RSS, so the
//! accounting cannot quietly rot.

/// Owned bytes behind a slice view: length × element size. The
/// conservative, spine-only form — `Vec`-aware call sites should use
/// [`vec_capacity_bytes`], which also counts unused capacity (the
/// allocation is what RSS sees).
pub fn vec_bytes<T>(v: &[T]) -> u64 {
    std::mem::size_of_val(v) as u64
}

/// Owned heap bytes behind a `Vec`, counting its full capacity.
pub fn vec_capacity_bytes<T>(v: &Vec<T>) -> u64 {
    (v.capacity() * std::mem::size_of::<T>()) as u64
}

/// Estimated owned bytes of one `HashMap`/`BTreeMap` entry of the given
/// key/value sizes: the payload plus a fixed per-entry node overhead
/// (hash/branch bookkeeping), so map-heavy subsystems are not silently
/// undercounted. The constant is deliberately deterministic — a modeling
/// convention, not an allocator measurement.
pub fn map_entry_bytes(key_bytes: usize, value_bytes: usize) -> u64 {
    (key_bytes + value_bytes + MAP_ENTRY_OVERHEAD) as u64
}

/// Fixed per-entry overhead convention for hash/tree map accounting.
pub const MAP_ENTRY_OVERHEAD: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_helpers() {
        let v: Vec<u64> = Vec::with_capacity(10);
        assert_eq!(vec_capacity_bytes(&v), 80);
        assert_eq!(vec_bytes(&v), 0); // empty slice view
        let w = vec![1u64, 2, 3];
        assert_eq!(vec_bytes(&w), 24);
        assert_eq!(map_entry_bytes(8, 8), 32);
    }
}
