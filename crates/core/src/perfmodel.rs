//! Abstract application-performance model under deflation (§3.1, Figure 2).
//!
//! The paper models an application's normalized performance as a function of
//! the deflation fraction with three regions:
//!
//! 1. **Slack** — reclaiming unused resources has negligible impact
//!    (horizontal part of the curve).
//! 2. **Linear** (possibly sub- or super-linear) — past the slack point,
//!    performance degrades roughly in proportion to further deflation.
//! 3. **Knee** — beyond the knee, performance drops precipitously because the
//!    remaining allocation is insufficient.
//!
//! [`PerfModel`] captures these regions with a handful of parameters and is
//! used (a) by the application simulators in `deflate-appsim` to produce
//! Figure 3/14-style curves, and (b) by the cluster simulator's throughput
//! accounting, which conservatively assumes the *worst-case linear*
//! relationship between deflation and performance (§5: "Our policies assume
//! the worst-case linear correlation between deflation and performance").

use serde::{Deserialize, Serialize};

/// Piecewise performance-response model: normalized performance in `[0, 1]`
/// as a function of deflation fraction in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    /// Deflation fraction up to which performance is unaffected (the slack
    /// region width). `0.0` means no slack at all (e.g. SpecJBB in Fig 3).
    pub slack: f64,
    /// Deflation fraction at which the knee occurs; must be `>= slack`.
    pub knee: f64,
    /// Normalized performance remaining at the knee point. Performance
    /// degrades from `1.0` at the end of the slack region to `perf_at_knee`
    /// at the knee.
    pub perf_at_knee: f64,
    /// Exponent shaping the degradation between slack and knee: `1.0` is
    /// linear, `< 1.0` is sub-linear ("a certain reduction in allocated
    /// resources yields proportionately less performance slowdown"),
    /// `> 1.0` is super-linear (less elastic applications).
    pub elasticity: f64,
    /// Normalized performance when fully deflated (deflation = 1.0).
    /// Performance collapses from `perf_at_knee` towards this value beyond
    /// the knee.
    pub perf_at_full_deflation: f64,
}

impl PerfModel {
    /// Worst-case linear model used by the cluster-level policies: no slack,
    /// performance proportional to the remaining allocation.
    pub const WORST_CASE_LINEAR: PerfModel = PerfModel {
        slack: 0.0,
        knee: 1.0,
        perf_at_knee: 0.0,
        elasticity: 1.0,
        perf_at_full_deflation: 0.0,
    };

    /// Construct a model, clamping parameters into their valid ranges and
    /// enforcing `slack <= knee`.
    pub fn new(slack: f64, knee: f64, perf_at_knee: f64, elasticity: f64) -> Self {
        let slack = slack.clamp(0.0, 1.0);
        let knee = knee.clamp(slack, 1.0);
        PerfModel {
            slack,
            knee,
            perf_at_knee: perf_at_knee.clamp(0.0, 1.0),
            elasticity: elasticity.max(0.05),
            perf_at_full_deflation: 0.0,
        }
    }

    /// Builder-style setter for the performance floor at 100 % deflation.
    pub fn with_floor(mut self, perf_at_full_deflation: f64) -> Self {
        self.perf_at_full_deflation = perf_at_full_deflation.clamp(0.0, 1.0);
        self
    }

    /// Normalized performance (throughput relative to the undeflated
    /// configuration) at the given deflation fraction.
    ///
    /// The result is monotonically non-increasing in `deflation` and always
    /// lies in `[0, 1]`.
    pub fn performance(&self, deflation: f64) -> f64 {
        let d = deflation.clamp(0.0, 1.0);
        if d <= self.slack {
            return 1.0;
        }
        if d <= self.knee {
            // Degrade from 1.0 at `slack` to `perf_at_knee` at `knee`, shaped
            // by the elasticity exponent.
            let span = (self.knee - self.slack).max(f64::EPSILON);
            let t = ((d - self.slack) / span).clamp(0.0, 1.0);
            let drop = 1.0 - self.perf_at_knee;
            return 1.0 - drop * t.powf(self.elasticity);
        }
        // Beyond the knee performance collapses steeply (quadratically in the
        // residual deflation headroom) towards the floor.
        let span = (1.0 - self.knee).max(f64::EPSILON);
        let t = ((d - self.knee) / span).clamp(0.0, 1.0);
        let start = self.perf_at_knee;
        let end = self.perf_at_full_deflation.min(start);
        (start - (start - end) * (1.0 - (1.0 - t) * (1.0 - t))).max(0.0)
    }

    /// Normalized slowdown factor (`1 / performance`), saturating at `cap`
    /// when performance approaches zero. Useful for converting a throughput
    /// model into a response-time multiplier for interactive applications.
    pub fn slowdown(&self, deflation: f64, cap: f64) -> f64 {
        let p = self.performance(deflation);
        if p <= 1.0 / cap {
            cap
        } else {
            1.0 / p
        }
    }

    /// The largest deflation fraction that keeps performance at or above
    /// `target` (found by bisection; the curve is monotone).
    pub fn max_deflation_for_performance(&self, target: f64) -> f64 {
        let target = target.clamp(0.0, 1.0);
        if self.performance(1.0) >= target {
            return 1.0;
        }
        if self.performance(0.0) < target {
            return 0.0;
        }
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.performance(mid) >= target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

impl Default for PerfModel {
    /// A generic well-behaved interactive application: 30 % slack, knee at
    /// 80 % deflation, modest degradation in between.
    fn default() -> Self {
        PerfModel::new(0.3, 0.8, 0.7, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_region_is_flat() {
        let m = PerfModel::new(0.4, 0.8, 0.5, 1.0);
        assert_eq!(m.performance(0.0), 1.0);
        assert_eq!(m.performance(0.2), 1.0);
        assert_eq!(m.performance(0.4), 1.0);
        assert!(m.performance(0.41) < 1.0);
    }

    #[test]
    fn linear_region_interpolates() {
        let m = PerfModel::new(0.0, 1.0, 0.0, 1.0);
        assert!((m.performance(0.5) - 0.5).abs() < 1e-9);
        assert!((m.performance(0.25) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn worst_case_linear_matches_remaining_allocation() {
        let m = PerfModel::WORST_CASE_LINEAR;
        for i in 0..=10 {
            let d = i as f64 / 10.0;
            assert!((m.performance(d) - (1.0 - d)).abs() < 1e-9);
        }
    }

    #[test]
    fn monotone_non_increasing() {
        let models = [
            PerfModel::default(),
            PerfModel::new(0.0, 0.3, 0.9, 2.0),
            PerfModel::new(0.5, 0.6, 0.2, 0.5).with_floor(0.1),
        ];
        for m in models {
            let mut prev = f64::INFINITY;
            for i in 0..=100 {
                let p = m.performance(i as f64 / 100.0);
                assert!(p <= prev + 1e-12, "not monotone at {i} for {m:?}");
                assert!((0.0..=1.0).contains(&p));
                prev = p;
            }
        }
    }

    #[test]
    fn knee_causes_steep_drop() {
        let m = PerfModel::new(0.3, 0.7, 0.8, 1.0);
        let before = m.performance(0.7);
        let after = m.performance(0.85);
        assert!(before - after > 0.2, "expected steep post-knee drop");
    }

    #[test]
    fn slowdown_saturates() {
        let m = PerfModel::new(0.0, 0.5, 0.1, 1.0);
        assert_eq!(m.slowdown(0.0, 100.0), 1.0);
        assert!(m.slowdown(1.0, 100.0) <= 100.0);
    }

    #[test]
    fn max_deflation_for_performance_is_inverse() {
        let m = PerfModel::new(0.3, 0.9, 0.5, 1.0);
        let d = m.max_deflation_for_performance(0.75);
        assert!((m.performance(d) - 0.75).abs() < 1e-3);
        // Any target below the floor is achievable at full deflation.
        assert_eq!(
            PerfModel::new(0.0, 1.0, 0.9, 1.0).max_deflation_for_performance(0.5),
            1.0
        );
        // A target of 1.0 is achievable up to the slack point.
        let d1 = m.max_deflation_for_performance(1.0);
        assert!((d1 - 0.3).abs() < 1e-3);
    }

    #[test]
    fn parameters_are_clamped() {
        let m = PerfModel::new(1.5, 0.2, 2.0, -1.0);
        assert!(m.slack <= 1.0);
        assert!(m.knee >= m.slack);
        assert!(m.perf_at_knee <= 1.0);
        assert!(m.elasticity > 0.0);
    }
}
