//! The online-audit knob: which engine invariants a run checks as it goes.
//!
//! [`AuditSpec`] is plain configuration data, mirroring the other engine
//! knobs ([`TelemetrySpec`](crate::telemetry::TelemetrySpec),
//! [`ShardConfig`](crate::shard::ShardConfig)): the checkers themselves
//! live in `deflate-cluster`'s `audit` module, which turns a spec into a
//! live `Auditor` riding the event loop. Keeping the knob here lets every
//! layer name the configuration without depending on the machinery.
//!
//! Two standing contracts, pinned by `tests/telemetry_determinism.rs` and
//! `tests/shard_parity.rs`:
//!
//! * **Off by default.** `AuditSpec::default()` enables nothing; a run
//!   without the knob behaves exactly as before the auditor existed.
//! * **Auditing never changes results.** Every checker is a read-only
//!   observer of settled state between events: enabling all of them
//!   leaves every `SimResult` field bit-identical to an audit-off run,
//!   at every shard count. A checker that *fires* aborts the run with a
//!   diagnostic — by then the state is, by definition, already wrong.

use serde::{Deserialize, Serialize};

/// Which online invariant checkers a simulation run executes after each
/// event. **Everything is off by default**; `deflate-cluster` turns the
/// spec into a live auditor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditSpec {
    /// Check every server's capacity-conservation invariant (effective
    /// allocations, net of in-flight outbound transfers, never exceed
    /// capacity) after each event.
    pub capacity: bool,
    /// Check the transfer scheduler's bandwidth ledgers against the
    /// manager's in-flight transfer table: every live reservation must be
    /// backed by a transfer actually on the wire.
    pub bandwidth_ledger: bool,
    /// Check that event delivery times never move backwards (the queue's
    /// total order is monotone in time).
    pub monotonicity: bool,
    /// Check the incremental placement index's cached views against a
    /// freshly derived full rescan (clean entries must agree exactly).
    /// Expensive — O(servers) per audit point — so it runs only every
    /// [`placement_sample_every`](Self::placement_sample_every)-th event.
    pub placement_index: bool,
    /// Check the autoscaler's replica ledger: every replica ever launched
    /// is still pooled (active or parked), retired, or counted lost.
    pub replica_ledger: bool,
    /// Run the placement-index rescan every `n`-th audited event
    /// (1 = every event). `0` is normalised to 1. Ignored unless
    /// [`placement_index`](Self::placement_index) is set.
    pub placement_sample_every: u64,
}

impl Default for AuditSpec {
    fn default() -> Self {
        AuditSpec::off()
    }
}

impl AuditSpec {
    /// The disabled spec (what `Default` also yields): no checkers.
    pub fn off() -> Self {
        AuditSpec {
            capacity: false,
            bandwidth_ledger: false,
            monotonicity: false,
            placement_index: false,
            replica_ledger: false,
            placement_sample_every: DEFAULT_PLACEMENT_SAMPLE,
        }
    }

    /// Every checker on, with the default placement sampling interval —
    /// the configuration the determinism pins run under.
    pub fn all() -> Self {
        AuditSpec {
            capacity: true,
            bandwidth_ledger: true,
            monotonicity: true,
            placement_index: true,
            replica_ledger: true,
            placement_sample_every: DEFAULT_PLACEMENT_SAMPLE,
        }
    }

    /// The cheap checkers only (capacity, bandwidth ledger, monotonicity,
    /// replica ledger) — O(servers' residents) per event at worst, no
    /// full placement rescans.
    pub fn cheap() -> Self {
        AuditSpec {
            placement_index: false,
            ..AuditSpec::all()
        }
    }

    /// Builder-style placement-rescan sampling interval: compare the
    /// placement index against a full rescan every `n`-th audited event.
    pub fn with_placement_sample_every(mut self, n: u64) -> Self {
        self.placement_sample_every = n.max(1);
        self
    }

    /// True when no checker is enabled (the default).
    pub fn is_off(&self) -> bool {
        !self.capacity
            && !self.bandwidth_ledger
            && !self.monotonicity
            && !self.placement_index
            && !self.replica_ledger
    }

    /// The placement sampling interval with `0` normalised to 1.
    pub fn placement_sample_rate(&self) -> u64 {
        self.placement_sample_every.max(1)
    }
}

/// Default interval between placement-index full-rescan comparisons: the
/// rescan is O(servers), so auditing every event would re-create the
/// pre-index cost the index exists to avoid.
pub const DEFAULT_PLACEMENT_SAMPLE: u64 = 256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        let spec = AuditSpec::default();
        assert!(spec.is_off());
        assert_eq!(spec, AuditSpec::off());
        assert_eq!(spec.placement_sample_rate(), DEFAULT_PLACEMENT_SAMPLE);
    }

    #[test]
    fn all_enables_every_checker() {
        let spec = AuditSpec::all();
        assert!(!spec.is_off());
        assert!(spec.capacity);
        assert!(spec.bandwidth_ledger);
        assert!(spec.monotonicity);
        assert!(spec.placement_index);
        assert!(spec.replica_ledger);
    }

    #[test]
    fn cheap_skips_the_rescan() {
        let spec = AuditSpec::cheap();
        assert!(!spec.is_off());
        assert!(!spec.placement_index);
        assert!(spec.capacity);
    }

    #[test]
    fn sampling_rate_normalises_zero() {
        let spec = AuditSpec::all().with_placement_sample_every(0);
        assert_eq!(spec.placement_sample_rate(), 1);
        let spec = AuditSpec::all().with_placement_sample_every(64);
        assert_eq!(spec.placement_sample_rate(), 64);
    }
}
