//! VM model: identity, priority, workload class and allocation state.
//!
//! The cluster manager multiplexes servers across two pools of VMs
//! (§5): non-deflatable high-priority ("on-demand") VMs and deflatable
//! low-priority VMs. Deflatable VMs additionally carry a priority level
//! `π ∈ (0, 1]` that weighted-proportional and deterministic policies use
//! (Eq 3–4, §5.1.2–5.1.3), and an optional minimum allocation (Eq 2).

use crate::resources::{ResourceKind, ResourceVector};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a VM within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VmId(pub u64);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

/// Unique identifier of a physical server within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServerId(pub u32);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server-{}", self.0)
    }
}

/// Application class labels carried by the Azure trace (§3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmClass {
    /// Interactive / web-facing workloads — the focus of the paper.
    Interactive,
    /// Delay-insensitive batch / data-processing workloads.
    DelayInsensitive,
    /// Workloads whose class the provider could not determine.
    Unknown,
}

impl VmClass {
    /// All classes in canonical order.
    pub const ALL: [VmClass; 3] = [
        VmClass::Interactive,
        VmClass::DelayInsensitive,
        VmClass::Unknown,
    ];
}

impl fmt::Display for VmClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VmClass::Interactive => "interactive",
            VmClass::DelayInsensitive => "delay-insensitive",
            VmClass::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// Deflation priority level `π ∈ (0, 1]`.
///
/// Lower values indicate lower priority and therefore higher deflatability
/// (§5.1.2). A priority of exactly `1.0` corresponds to a VM that should not
/// be deflated at all under the deterministic policy (its deterministic floor
/// `π·M` equals its full allocation).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Priority(f64);

impl Priority {
    /// Minimum representable priority (fully deflatable down to ~0).
    pub const MIN: Priority = Priority(0.05);
    /// Maximum priority.
    pub const MAX: Priority = Priority(1.0);

    /// Create a priority, clamping into `(0, 1]`.
    ///
    /// Values are clamped rather than rejected because priorities in the
    /// simulator are frequently derived from utilisation percentiles, which
    /// may fall marginally outside the range due to floating-point noise.
    pub fn new(value: f64) -> Self {
        Priority(value.clamp(Self::MIN.0, Self::MAX.0))
    }

    /// The underlying priority value in `(0, 1]`.
    #[inline]
    pub fn value(&self) -> f64 {
        self.0
    }

    /// The four discrete priority levels used by the paper's cluster
    /// simulation (§7.1.2: "we determine VM priorities based on their 95-th
    /// percentile CPU usage and use 4 priority levels").
    pub const LEVELS: [Priority; 4] = [Priority(0.2), Priority(0.4), Priority(0.6), Priority(0.8)];

    /// Map a 95th-percentile CPU utilisation (in `[0, 1]`) to one of the four
    /// discrete priority levels: heavier VMs get higher priority so that they
    /// are deflated less (§7.4.2).
    pub fn from_p95_utilization(p95: f64) -> Self {
        let p95 = p95.clamp(0.0, 1.0);
        if p95 < 0.33 {
            Self::LEVELS[0]
        } else if p95 < 0.66 {
            Self::LEVELS[1]
        } else if p95 < 0.80 {
            Self::LEVELS[2]
        } else {
            Self::LEVELS[3]
        }
    }
}

impl Default for Priority {
    fn default() -> Self {
        Priority(0.5)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "π={:.2}", self.0)
    }
}

/// Static description of a VM known at provisioning time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmSpec {
    /// Cluster-unique identifier.
    pub id: VmId,
    /// Workload class label.
    pub class: VmClass,
    /// The undeflated ("maximum") allocation `M_i`.
    pub max_allocation: ResourceVector,
    /// Optional minimum allocation `m_i` (Eq 2); `ZERO` means fully
    /// deflatable.
    pub min_allocation: ResourceVector,
    /// Deflation priority `π_i`; ignored for non-deflatable VMs.
    pub priority: Priority,
    /// Whether the VM participates in deflation at all. Non-deflatable VMs
    /// are the "on-demand" pool.
    pub deflatable: bool,
}

impl VmSpec {
    /// Create a deflatable VM spec with no minimum allocation and default
    /// priority.
    pub fn deflatable(id: VmId, class: VmClass, max_allocation: ResourceVector) -> Self {
        VmSpec {
            id,
            class,
            max_allocation,
            min_allocation: ResourceVector::ZERO,
            priority: Priority::default(),
            deflatable: true,
        }
    }

    /// Create a non-deflatable ("on-demand") VM spec.
    pub fn on_demand(id: VmId, class: VmClass, max_allocation: ResourceVector) -> Self {
        VmSpec {
            id,
            class,
            max_allocation,
            min_allocation: max_allocation,
            priority: Priority::MAX,
            deflatable: false,
        }
    }

    /// Builder-style priority setter.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Builder-style minimum-allocation setter. The minimum is clamped to be
    /// no larger than the maximum allocation.
    pub fn with_min_allocation(mut self, min: ResourceVector) -> Self {
        self.min_allocation = min.min(&self.max_allocation);
        self
    }

    /// Derive the minimum allocation from the priority as `m_i = π_i · M_i`
    /// (§5.1.2), and return the updated spec.
    pub fn with_priority_derived_min(mut self) -> Self {
        self.min_allocation = self.max_allocation * self.priority.value();
        self
    }

    /// The maximum amount of each resource that can be reclaimed from this VM
    /// (`M_i − m_i`), zero for non-deflatable VMs.
    pub fn deflatable_amount(&self) -> ResourceVector {
        if self.deflatable {
            self.max_allocation.saturating_sub(&self.min_allocation)
        } else {
            ResourceVector::ZERO
        }
    }

    /// Validate internal consistency of the spec.
    pub fn validate(&self) -> Result<(), crate::error::DeflateError> {
        if !self.max_allocation.is_finite() || !self.max_allocation.is_non_negative() {
            return Err(crate::error::DeflateError::InvalidSpec {
                vm: self.id,
                reason: "max allocation must be finite and non-negative".into(),
            });
        }
        if !self.min_allocation.fits_within(&self.max_allocation) {
            return Err(crate::error::DeflateError::InvalidSpec {
                vm: self.id,
                reason: "min allocation exceeds max allocation".into(),
            });
        }
        Ok(())
    }
}

/// Mutable allocation state of a running VM.
///
/// `current` always satisfies `min_allocation ≤ current ≤ max_allocation`
/// component-wise (checked by [`VmAllocation::set_current`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmAllocation {
    /// The VM's static spec.
    pub spec: VmSpec,
    /// The currently granted allocation.
    current: ResourceVector,
}

impl VmAllocation {
    /// A freshly placed VM starts at its full (undeflated) allocation.
    pub fn new(spec: VmSpec) -> Self {
        let current = spec.max_allocation;
        VmAllocation { spec, current }
    }

    /// A VM admitted under resource pressure may start already deflated
    /// (§5.1.1: "a new incoming VM may be deflatable ... and can thus start
    /// its execution in a deflated mode").
    pub fn new_deflated(spec: VmSpec, current: ResourceVector) -> Self {
        let current = current.clamp(&spec.min_allocation, &spec.max_allocation);
        VmAllocation { spec, current }
    }

    /// Currently granted allocation.
    #[inline]
    pub fn current(&self) -> ResourceVector {
        self.current
    }

    /// Set the current allocation, clamping into `[min, max]`.
    pub fn set_current(&mut self, alloc: ResourceVector) {
        self.current = alloc.clamp(&self.spec.min_allocation, &self.spec.max_allocation);
    }

    /// Reclaim `amount` from the VM (component-wise), clamping at the
    /// minimum allocation. Returns the amount actually reclaimed.
    pub fn deflate_by(&mut self, amount: &ResourceVector) -> ResourceVector {
        let target = self.current.saturating_sub(amount);
        let clamped = target.max(&self.spec.min_allocation);
        let reclaimed = self.current - clamped;
        self.current = clamped;
        reclaimed
    }

    /// Return `amount` to the VM (component-wise), clamping at the maximum
    /// allocation. Returns the amount actually returned.
    pub fn reinflate_by(&mut self, amount: &ResourceVector) -> ResourceVector {
        let target = self.current + *amount;
        let clamped = target.min(&self.spec.max_allocation);
        let returned = clamped - self.current;
        self.current = clamped;
        returned
    }

    /// Overall deflation fraction for a given resource: `1 − current/max`,
    /// in `[0, 1]`. Returns 0 for resources with zero maximum allocation.
    pub fn deflation_fraction(&self, kind: ResourceKind) -> f64 {
        let max = self.spec.max_allocation[kind];
        if max <= 0.0 {
            0.0
        } else {
            (1.0 - self.current[kind] / max).clamp(0.0, 1.0)
        }
    }

    /// Deflation fraction averaged over the resource kinds that have a
    /// non-zero maximum allocation.
    pub fn mean_deflation_fraction(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for kind in ResourceKind::ALL {
            if self.spec.max_allocation[kind] > 0.0 {
                sum += self.deflation_fraction(kind);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// True if the VM is currently deflated in any dimension.
    pub fn is_deflated(&self) -> bool {
        ResourceKind::ALL
            .iter()
            .any(|&k| self.deflation_fraction(k) > 1e-9)
    }

    /// How much more could still be reclaimed from this VM.
    pub fn remaining_deflatable(&self) -> ResourceVector {
        if self.spec.deflatable {
            self.current.saturating_sub(&self.spec.min_allocation)
        } else {
            ResourceVector::ZERO
        }
    }

    /// How much headroom is left before the VM is back at its full size.
    pub fn remaining_reinflatable(&self) -> ResourceVector {
        self.spec.max_allocation.saturating_sub(&self.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u64) -> VmSpec {
        VmSpec::deflatable(
            VmId(id),
            VmClass::Interactive,
            ResourceVector::new(4000.0, 8192.0, 100.0, 1000.0),
        )
    }

    #[test]
    fn priority_clamps_and_orders() {
        assert_eq!(Priority::new(2.0).value(), 1.0);
        assert!(Priority::new(-1.0).value() > 0.0);
        assert!(Priority::new(0.2) < Priority::new(0.8));
    }

    #[test]
    fn priority_from_p95() {
        assert_eq!(Priority::from_p95_utilization(0.1), Priority::LEVELS[0]);
        assert_eq!(Priority::from_p95_utilization(0.5), Priority::LEVELS[1]);
        assert_eq!(Priority::from_p95_utilization(0.7), Priority::LEVELS[2]);
        assert_eq!(Priority::from_p95_utilization(0.95), Priority::LEVELS[3]);
    }

    #[test]
    fn on_demand_vm_is_not_deflatable() {
        let s = VmSpec::on_demand(
            VmId(1),
            VmClass::Unknown,
            ResourceVector::cpu_mem(2000.0, 4096.0),
        );
        assert!(!s.deflatable);
        assert!(s.deflatable_amount().is_zero());
    }

    #[test]
    fn priority_derived_min_allocation() {
        let s = spec(1)
            .with_priority(Priority::new(0.5))
            .with_priority_derived_min();
        assert!((s.min_allocation.cpu() - 2000.0).abs() < 1e-9);
        assert!((s.min_allocation.memory() - 4096.0).abs() < 1e-9);
    }

    #[test]
    fn min_allocation_clamped_to_max() {
        let s = spec(1).with_min_allocation(ResourceVector::splat(1e12));
        assert_eq!(s.min_allocation, s.max_allocation);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validation_rejects_negative_max() {
        let mut s = spec(1);
        s.max_allocation = ResourceVector::new(-1.0, 0.0, 0.0, 0.0);
        assert!(s.validate().is_err());
    }

    #[test]
    fn deflate_and_reinflate_respect_bounds() {
        let s = spec(1).with_min_allocation(ResourceVector::new(1000.0, 2048.0, 0.0, 0.0));
        let mut a = VmAllocation::new(s);
        // Deflate far more than allowed: clamps at min.
        let reclaimed = a.deflate_by(&ResourceVector::splat(1e9));
        assert!((a.current().cpu() - 1000.0).abs() < 1e-9);
        assert!((reclaimed.cpu() - 3000.0).abs() < 1e-9);
        assert!(a.is_deflated());
        assert!((a.deflation_fraction(ResourceKind::Cpu) - 0.75).abs() < 1e-9);
        // Reinflate beyond max: clamps at max.
        let returned = a.reinflate_by(&ResourceVector::splat(1e9));
        assert_eq!(a.current(), a.spec.max_allocation);
        assert!((returned.cpu() - 3000.0).abs() < 1e-9);
        assert!(!a.is_deflated());
    }

    #[test]
    fn new_deflated_clamps_into_bounds() {
        let s = spec(7);
        let a = VmAllocation::new_deflated(s.clone(), ResourceVector::splat(-5.0));
        assert!(a.current().is_non_negative());
        let b = VmAllocation::new_deflated(s.clone(), ResourceVector::splat(1e12));
        assert_eq!(b.current(), s.max_allocation);
    }

    #[test]
    fn deflation_fraction_zero_max_is_zero() {
        let s = VmSpec::deflatable(
            VmId(2),
            VmClass::Unknown,
            ResourceVector::cpu_mem(1000.0, 1024.0),
        );
        let a = VmAllocation::new(s);
        assert_eq!(a.deflation_fraction(ResourceKind::DiskBw), 0.0);
        assert_eq!(a.mean_deflation_fraction(), 0.0);
    }

    #[test]
    fn remaining_headrooms() {
        let s = spec(3);
        let mut a = VmAllocation::new(s);
        a.deflate_by(&ResourceVector::new(1000.0, 0.0, 0.0, 0.0));
        assert!((a.remaining_deflatable().cpu() - 3000.0).abs() < 1e-9);
        assert!((a.remaining_reinflatable().cpu() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn display_impls() {
        assert_eq!(format!("{}", VmId(3)), "vm-3");
        assert_eq!(format!("{}", ServerId(1)), "server-1");
        assert_eq!(format!("{}", VmClass::Interactive), "interactive");
        assert!(format!("{}", Priority::new(0.25)).contains("0.25"));
    }
}
