//! # deflate-core
//!
//! Core model of **VM deflation** — the primary contribution of
//! *"Cloud-scale VM Deflation for Running Interactive Applications On
//! Transient Servers"* (Fuerst et al., HPDC 2020).
//!
//! Deflation fractionally reclaims resources from low-priority "deflatable"
//! VMs instead of preempting them, letting interactive applications keep
//! running (slower) under resource pressure. This crate contains the pieces
//! of that idea that are independent of any particular hypervisor or
//! simulator:
//!
//! * [`checkpoint`] — the versioned snapshot byte format
//!   ([`ByteWriter`] / [`ByteReader`]) behind the engine's
//!   checkpoint / restore / fork support.
//! * [`resources`] — multi-dimensional [`ResourceVector`]s over CPU, memory,
//!   disk bandwidth and network bandwidth.
//! * [`vm`] — VM specifications, priorities `π ∈ (0, 1]`, workload classes
//!   and allocation state.
//! * [`perfmodel`] — the slack / linear / knee performance-response model of
//!   §3.1.
//! * [`policy`] — server-level deflation policies: proportional (Eq 1–2),
//!   priority-weighted (Eq 3–4) and deterministic, plus reinflation.
//! * [`placement`] — deflation-aware placement: cosine fitness, bin-packing
//!   baselines, cluster partitions (§5.2) and the placement-ranking engine
//!   knob ([`PlacementEngine`]): whether the cluster manager's incremental
//!   score index evaluates ranking passes sequentially (the default) or
//!   fans them out to worker spans with a deterministic reduce.
//! * [`pricing`] — static, priority-based and allocation-based pricing
//!   (§5.2.2) and the revenue accounting behind Figure 22.
//! * [`shard`] — the engine-sharding knob ([`ShardConfig`]): how many
//!   worker threads the discrete-event simulator fans per-server work out
//!   to, with the guarantee that any shard count is bit-identical to the
//!   sequential engine.
//! * [`telemetry`] — the observability knob ([`TelemetrySpec`]): which
//!   telemetry sinks (metrics registry, phase profiler, JSONL event log,
//!   Chrome trace) a run should feed, **off by default**, with the
//!   guarantee that enabling any sink never changes simulation results.
//! * [`mem`] — byte-accounting conventions behind the per-subsystem
//!   `accounted_bytes()` impls and the `mem.*` memory-ledger gauges.
//! * [`audit`] — the online-audit knob ([`AuditSpec`]): which engine
//!   invariants (capacity conservation, bandwidth-ledger balance, event
//!   monotonicity, placement-index consistency, replica-ledger balance)
//!   a run checks after every event, **off by default**, with the same
//!   guarantee — auditing never changes results.
//!
//! The simulated hypervisor substrate lives in `deflate-hypervisor`, the
//! cluster manager and discrete-event simulator in `deflate-cluster`.
//!
//! ## Example
//!
//! ```
//! use deflate_core::policy::{DeflationPolicy, ProportionalDeflation, VmResourceState};
//! use deflate_core::vm::VmId;
//!
//! // Two deflatable VMs with 8 and 24 GiB of memory; reclaim 8 GiB.
//! let vms = [
//!     VmResourceState { id: VmId(1), max: 8.0, min: 0.0, current: 8.0, priority: 0.5 },
//!     VmResourceState { id: VmId(2), max: 24.0, min: 0.0, current: 24.0, priority: 0.5 },
//! ];
//! let plan = ProportionalDeflation::by_size().plan(&vms, 8.0);
//! assert!(plan.satisfied());
//! // The larger VM gives up three quarters of the demand.
//! assert_eq!(plan.target_for(VmId(2)), Some(18.0));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod audit;
pub mod checkpoint;
pub mod error;
pub mod mem;
pub mod perfmodel;
pub mod placement;
pub mod policy;
pub mod pricing;
pub mod resources;
pub mod shard;
pub mod telemetry;
pub mod vm;

pub use audit::AuditSpec;
pub use checkpoint::{ByteReader, ByteWriter, CheckpointError, SNAPSHOT_VERSION};
pub use error::{DeflateError, Result};
pub use perfmodel::PerfModel;
pub use placement::PlacementEngine;
pub use resources::{ResourceKind, ResourceVector};
pub use shard::ShardConfig;
pub use telemetry::{TelemetryEventKind, TelemetryEventSet, TelemetrySpec};
pub use vm::{Priority, ServerId, VmAllocation, VmClass, VmId, VmSpec};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::audit::AuditSpec;
    pub use crate::error::{DeflateError, Result};
    pub use crate::perfmodel::PerfModel;
    pub use crate::placement::{
        BestFit, CosineFitness, FirstFit, PartitionScheme, PartitionedPlacement, PlacementEngine,
        PlacementPolicy, ServerView, WorstFit,
    };
    pub use crate::policy::{
        AllocationView, AutoscaleParams, AutoscalePolicy, DeflationPolicy, DeterministicDeflation,
        PriorityDeflation, ProportionalDeflation, RestorePolicy, ScalarPlan, VectorPlan,
        VectorPlanner, VmResourceState,
    };
    pub use crate::pricing::{PricingPolicy, RateCard};
    pub use crate::resources::{ResourceKind, ResourceVector};
    pub use crate::shard::ShardConfig;
    pub use crate::telemetry::{TelemetryEventKind, TelemetryEventSet, TelemetrySpec};
    pub use crate::vm::{Priority, ServerId, VmAllocation, VmClass, VmId, VmSpec};
}
