//! The observability knob: which telemetry sinks a simulation run feeds.
//!
//! [`TelemetrySpec`] is plain configuration data — the sinks themselves
//! (metrics registry, phase profiler, JSONL event log, Chrome-trace
//! exporter) live in `deflate-telemetry`, which turns a spec into a
//! `TelemetrySink`. Keeping the knob here mirrors the other engine knobs
//! ([`ShardConfig`](crate::shard::ShardConfig), the policy enums): every
//! layer can name the configuration without depending on the machinery.
//!
//! Two standing contracts, pinned by `tests/telemetry_determinism.rs`:
//!
//! * **Off by default.** `TelemetrySpec::default()` enables nothing; a run
//!   without the knob behaves exactly as before the subsystem existed.
//! * **Observation never changes results.** Enabling any combination of
//!   sinks leaves every `SimResult` field bit-identical to a telemetry-off
//!   run (wall-clock time is outside the equality contract), at every
//!   shard count.

use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// The kind of a simulation event, as seen by the structured run-trace
/// sinks. Mirrors the engine's `SimEvent` variants one-to-one without
/// depending on them, so filters can be configured from any layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TelemetryEventKind {
    /// A VM arrival (placement attempt).
    Arrival,
    /// A VM departure.
    Departure,
    /// A provider-side capacity reclamation at one server.
    CapacityReclaim,
    /// A provider-side capacity restitution at one server.
    CapacityRestore,
    /// An in-flight live migration finishing (or aborting at its deadline).
    MigrationComplete,
    /// A periodic cluster-utilisation sampling tick.
    UtilizationTick,
    /// An autoscaler scale-out actuation for one elastic application.
    ScaleOut,
    /// An autoscaler scale-in actuation for one elastic application.
    ScaleIn,
    /// An online invariant checker fired (see
    /// [`AuditSpec`](crate::audit::AuditSpec)). Not an engine event — it
    /// is emitted *about* the event that broke the invariant, immediately
    /// before the run aborts with the diagnostic.
    AuditViolation,
}

impl TelemetryEventKind {
    /// Every kind, in the engine's same-timestamp delivery order
    /// (audit violations, which ride on other events, come last).
    pub const ALL: [TelemetryEventKind; 9] = [
        TelemetryEventKind::Departure,
        TelemetryEventKind::MigrationComplete,
        TelemetryEventKind::CapacityRestore,
        TelemetryEventKind::CapacityReclaim,
        TelemetryEventKind::Arrival,
        TelemetryEventKind::ScaleOut,
        TelemetryEventKind::ScaleIn,
        TelemetryEventKind::UtilizationTick,
        TelemetryEventKind::AuditViolation,
    ];

    /// Stable snake_case name, used as the `kind` field of JSONL trace
    /// lines and accepted by [`TelemetryEventKind::parse`].
    pub fn name(&self) -> &'static str {
        match self {
            TelemetryEventKind::Arrival => "arrival",
            TelemetryEventKind::Departure => "departure",
            TelemetryEventKind::CapacityReclaim => "capacity_reclaim",
            TelemetryEventKind::CapacityRestore => "capacity_restore",
            TelemetryEventKind::MigrationComplete => "migration_complete",
            TelemetryEventKind::UtilizationTick => "utilization_tick",
            TelemetryEventKind::ScaleOut => "scale_out",
            TelemetryEventKind::ScaleIn => "scale_in",
            TelemetryEventKind::AuditViolation => "audit_violation",
        }
    }

    /// Parse a snake_case kind name (the inverse of
    /// [`name`](Self::name)).
    pub fn parse(name: &str) -> Option<TelemetryEventKind> {
        TelemetryEventKind::ALL
            .into_iter()
            .find(|k| k.name() == name)
    }

    fn bit(&self) -> u16 {
        match self {
            TelemetryEventKind::Arrival => 1 << 0,
            TelemetryEventKind::Departure => 1 << 1,
            TelemetryEventKind::CapacityReclaim => 1 << 2,
            TelemetryEventKind::CapacityRestore => 1 << 3,
            TelemetryEventKind::MigrationComplete => 1 << 4,
            TelemetryEventKind::UtilizationTick => 1 << 5,
            TelemetryEventKind::ScaleOut => 1 << 6,
            TelemetryEventKind::ScaleIn => 1 << 7,
            TelemetryEventKind::AuditViolation => 1 << 8,
        }
    }
}

/// A set of [`TelemetryEventKind`]s — the JSONL event log's kind filter.
///
/// The default set is the *decision* events the paper's claims are about
/// — capacity changes, migration completions and autoscale actions — and
/// excludes the high-volume per-VM kinds (arrivals, departures) and
/// utilisation ticks; [`TelemetryEventSet::all`] opts into everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryEventSet(u16);

impl TelemetryEventSet {
    /// The empty set.
    pub fn none() -> Self {
        TelemetryEventSet(0)
    }

    /// Every event kind.
    pub fn all() -> Self {
        TelemetryEventKind::ALL
            .into_iter()
            .fold(Self::none(), |set, kind| set.with(kind))
    }

    /// Capacity changes, migration completions, autoscale actions and
    /// audit violations — the default JSONL filter. (Violations are rare
    /// and abort the run; filtering them out would hide the one line
    /// that explains the abort.)
    pub fn decisions() -> Self {
        Self::none()
            .with(TelemetryEventKind::CapacityReclaim)
            .with(TelemetryEventKind::CapacityRestore)
            .with(TelemetryEventKind::MigrationComplete)
            .with(TelemetryEventKind::ScaleOut)
            .with(TelemetryEventKind::ScaleIn)
            .with(TelemetryEventKind::AuditViolation)
    }

    /// This set plus one kind.
    pub fn with(self, kind: TelemetryEventKind) -> Self {
        TelemetryEventSet(self.0 | kind.bit())
    }

    /// True when the set contains `kind`.
    pub fn contains(&self, kind: TelemetryEventKind) -> bool {
        self.0 & kind.bit() != 0
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }
}

impl Default for TelemetryEventSet {
    fn default() -> Self {
        Self::decisions()
    }
}

/// Which telemetry sinks a run should feed. **Everything is off by
/// default**; `deflate-telemetry` turns the spec into a live sink.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySpec {
    /// Feed the metrics registry (counters, gauges, histograms).
    pub metrics: bool,
    /// Feed the span-based engine phase profiler.
    pub profile: bool,
    /// Write one JSON line per (filtered, sampled) simulation event to
    /// this path. `None` disables the JSONL sink.
    pub event_log_path: Option<PathBuf>,
    /// Event kinds the JSONL sink records (ignored when the sink is off).
    pub event_kinds: TelemetryEventSet,
    /// Record every `n`-th matching event (1 = every one). `0` is
    /// normalised to 1.
    pub sample_every: u64,
    /// Write profiler spans as a Chrome `trace_event` JSON array to this
    /// path (openable in Perfetto / `chrome://tracing`). Implies span
    /// collection even when [`profile`](Self::profile) is false.
    pub chrome_trace_path: Option<PathBuf>,
}

impl TelemetrySpec {
    /// The disabled spec (what `Default` also yields): no sinks.
    pub fn off() -> Self {
        TelemetrySpec::default()
    }

    /// Metrics registry + phase profiler, no file sinks — the in-memory
    /// configuration `fig_profile` and the overhead tests use.
    pub fn profiling() -> Self {
        TelemetrySpec {
            metrics: true,
            profile: true,
            ..TelemetrySpec::default()
        }
    }

    /// Builder-style JSONL event log at `path` with the default kind
    /// filter and sampling.
    pub fn with_event_log(mut self, path: impl Into<PathBuf>) -> Self {
        self.event_log_path = Some(path.into());
        if self.sample_every == 0 {
            self.sample_every = 1;
        }
        self
    }

    /// Builder-style kind filter for the JSONL sink.
    pub fn with_event_kinds(mut self, kinds: TelemetryEventSet) -> Self {
        self.event_kinds = kinds;
        self
    }

    /// Builder-style sampling rate for the JSONL sink: record every
    /// `n`-th matching event.
    pub fn with_sample_every(mut self, n: u64) -> Self {
        self.sample_every = n.max(1);
        self
    }

    /// Builder-style Chrome-trace output at `path`.
    pub fn with_chrome_trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.chrome_trace_path = Some(path.into());
        self
    }

    /// True when no sink is enabled (the default).
    pub fn is_off(&self) -> bool {
        !self.metrics
            && !self.profile
            && self.event_log_path.is_none()
            && self.chrome_trace_path.is_none()
    }

    /// The sampling rate with `0` normalised to 1.
    pub fn sample_rate(&self) -> u64 {
        self.sample_every.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        let spec = TelemetrySpec::default();
        assert!(spec.is_off());
        assert!(!spec.metrics);
        assert!(spec.event_log_path.is_none());
        assert!(spec.chrome_trace_path.is_none());
        assert_eq!(spec, TelemetrySpec::off());
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in TelemetryEventKind::ALL {
            assert_eq!(TelemetryEventKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(TelemetryEventKind::parse("bogus"), None);
    }

    #[test]
    fn event_sets() {
        let none = TelemetryEventSet::none();
        assert!(none.is_empty());
        let all = TelemetryEventSet::all();
        for kind in TelemetryEventKind::ALL {
            assert!(!none.contains(kind));
            assert!(all.contains(kind));
        }
        let decisions = TelemetryEventSet::default();
        assert!(decisions.contains(TelemetryEventKind::CapacityReclaim));
        assert!(decisions.contains(TelemetryEventKind::MigrationComplete));
        assert!(decisions.contains(TelemetryEventKind::ScaleOut));
        assert!(!decisions.contains(TelemetryEventKind::Arrival));
        assert!(!decisions.contains(TelemetryEventKind::UtilizationTick));
    }

    #[test]
    fn spec_builders() {
        let spec = TelemetrySpec::profiling()
            .with_event_log("/tmp/run.jsonl")
            .with_event_kinds(TelemetryEventSet::all())
            .with_sample_every(0)
            .with_chrome_trace("/tmp/run.trace.json");
        assert!(!spec.is_off());
        assert!(spec.metrics && spec.profile);
        assert_eq!(spec.sample_rate(), 1);
        assert_eq!(
            spec.event_log_path.as_deref(),
            Some(std::path::Path::new("/tmp/run.jsonl"))
        );
        assert!(spec.event_kinds.contains(TelemetryEventKind::Departure));
    }
}
