//! Deterministic (binary, priority-ordered) deflation, §5.1.3.
//!
//! Under deterministic deflation a VM is either at 100 % of its allocation
//! `M_i` or at its pre-specified deflated level `π_i · M_i` — nothing in
//! between. When resources must be reclaimed, deflatable VMs are deflated one
//! by one, lowest priority first, until enough resources have been freed
//! (§7.4.2 explains that "the lower priority VMs ... are penalized more").
//! Reinflation restores the highest-priority deflated VMs first.

use super::{build_plan, DeflationPolicy, ScalarPlan, VmResourceState};
use serde::{Deserialize, Serialize};

/// Deterministic deflation policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DeterministicDeflation {
    /// When `true`, the last VM in the deflation order may be deflated
    /// *partially* (between `π·M` and `M`) so that exactly the demanded
    /// amount is reclaimed. The paper's policy is strictly binary
    /// (`allow_partial_last = false`); the relaxation is provided for
    /// ablation experiments.
    pub allow_partial_last: bool,
}

impl DeterministicDeflation {
    /// Strictly binary deterministic deflation (the paper's policy).
    pub fn binary() -> Self {
        Self::default()
    }

    /// Variant that allows the final VM to be partially deflated.
    pub fn with_partial_last() -> Self {
        DeterministicDeflation {
            allow_partial_last: true,
        }
    }

    /// The deterministic deflated level of a VM: `π_i · M_i`, but never below
    /// an explicitly configured minimum.
    fn deflated_level(vm: &VmResourceState) -> f64 {
        (vm.priority * vm.max).max(vm.min)
    }
}

impl DeflationPolicy for DeterministicDeflation {
    fn name(&self) -> &'static str {
        "deterministic"
    }

    fn plan(&self, vms: &[VmResourceState], demand: f64) -> ScalarPlan {
        let n = vms.len();
        let mut reclaim = vec![0.0f64; n];
        if demand >= 0.0 {
            // Deflate lowest priority first (ties broken by larger deflatable
            // amount so fewer VMs are disturbed).
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                vms[a]
                    .priority
                    .partial_cmp(&vms[b].priority)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| {
                        let da = vms[a].current - Self::deflated_level(&vms[a]);
                        let db = vms[b].current - Self::deflated_level(&vms[b]);
                        db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
                    })
            });
            let mut remaining = demand;
            for &i in &order {
                if remaining <= 1e-9 {
                    break;
                }
                let level = Self::deflated_level(&vms[i]);
                let available = (vms[i].current - level).max(0.0);
                if available <= 1e-12 {
                    continue;
                }
                if self.allow_partial_last && available > remaining {
                    reclaim[i] = remaining;
                    remaining = 0.0;
                } else {
                    // Binary: deflate all the way down to the deterministic
                    // level, even if that over-reclaims slightly.
                    reclaim[i] = available;
                    remaining -= available;
                }
            }
            let shortfall = remaining.max(0.0);
            build_plan(vms, &reclaim, demand, shortfall)
        } else {
            // Reinflation: "the highest priority VMs are reinflated first"
            // (§5.1.3). Binary as well: a VM is restored to its full size if
            // the freed resources cover it.
            let give = -demand;
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                vms[b]
                    .priority
                    .partial_cmp(&vms[a].priority)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut remaining = give;
            for &i in &order {
                if remaining <= 1e-9 {
                    break;
                }
                let need = vms[i].reinflatable_headroom();
                if need <= 1e-12 {
                    continue;
                }
                if need <= remaining + 1e-9 {
                    reclaim[i] = -need;
                    remaining -= need;
                } else if self.allow_partial_last {
                    reclaim[i] = -remaining;
                    remaining = 0.0;
                }
            }
            build_plan(vms, &reclaim, demand, -remaining.max(0.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmId;

    fn vm(id: u64, max: f64, current: f64, pri: f64) -> VmResourceState {
        VmResourceState {
            id: VmId(id),
            max,
            min: 0.0,
            current,
            priority: pri,
        }
    }

    #[test]
    fn deflates_lowest_priority_first() {
        // VM 1 (π=0.2) can give 8; VM 2 (π=0.8) can give 2.
        let vms = vec![vm(1, 10.0, 10.0, 0.2), vm(2, 10.0, 10.0, 0.8)];
        let plan = DeterministicDeflation::binary().plan(&vms, 5.0);
        assert!(plan.satisfied());
        // Only the low-priority VM is touched and it goes all the way to π·M.
        assert!((plan.target_for(VmId(1)).unwrap() - 2.0).abs() < 1e-9);
        assert_eq!(plan.target_for(VmId(2)).unwrap(), 10.0);
        // Binary semantics over-reclaim: 8 freed for a demand of 5.
        assert!((plan.reclaimed - 8.0).abs() < 1e-9);
    }

    #[test]
    fn cascades_to_next_priority_when_needed() {
        let vms = vec![vm(1, 10.0, 10.0, 0.2), vm(2, 10.0, 10.0, 0.8)];
        let plan = DeterministicDeflation::binary().plan(&vms, 9.0);
        assert!(plan.satisfied());
        assert!((plan.target_for(VmId(1)).unwrap() - 2.0).abs() < 1e-9);
        assert!((plan.target_for(VmId(2)).unwrap() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn partial_last_reclaims_exactly_the_demand() {
        let vms = vec![vm(1, 10.0, 10.0, 0.2), vm(2, 10.0, 10.0, 0.8)];
        let plan = DeterministicDeflation::with_partial_last().plan(&vms, 5.0);
        assert!(plan.satisfied());
        assert!((plan.target_for(VmId(1)).unwrap() - 5.0).abs() < 1e-9);
        assert_eq!(plan.target_for(VmId(2)).unwrap(), 10.0);
    }

    #[test]
    fn shortfall_when_all_levels_reached() {
        let vms = vec![vm(1, 10.0, 10.0, 0.5), vm(2, 10.0, 10.0, 0.5)];
        let plan = DeterministicDeflation::binary().plan(&vms, 15.0);
        assert!(!plan.satisfied());
        assert!((plan.reclaimed - 10.0).abs() < 1e-9);
        assert!((plan.shortfall - 5.0).abs() < 1e-9);
    }

    #[test]
    fn explicit_min_raises_the_deterministic_level() {
        let mut v = vm(1, 10.0, 10.0, 0.2);
        v.min = 6.0;
        let plan = DeterministicDeflation::binary().plan(&[v], 100.0);
        assert!((plan.target_for(VmId(1)).unwrap() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn already_deflated_vm_is_skipped() {
        // VM 1 already sits at its deterministic level.
        let vms = vec![vm(1, 10.0, 2.0, 0.2), vm(2, 10.0, 10.0, 0.6)];
        let plan = DeterministicDeflation::binary().plan(&vms, 3.0);
        assert!(plan.satisfied());
        assert_eq!(plan.target_for(VmId(1)).unwrap(), 2.0);
        assert!((plan.target_for(VmId(2)).unwrap() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn reinflation_restores_highest_priority_first() {
        let vms = vec![vm(1, 10.0, 2.0, 0.2), vm(2, 10.0, 8.0, 0.8)];
        // Only 2 units free: exactly enough to fully restore VM 2 but not VM 1.
        let plan = DeterministicDeflation::binary().plan(&vms, -2.0);
        assert_eq!(plan.target_for(VmId(2)).unwrap(), 10.0);
        assert_eq!(plan.target_for(VmId(1)).unwrap(), 2.0);
        assert!(plan.satisfied());
    }

    #[test]
    fn binary_reinflation_skips_vm_it_cannot_fully_restore() {
        let vms = vec![vm(1, 10.0, 2.0, 0.9)];
        let plan = DeterministicDeflation::binary().plan(&vms, -3.0);
        // Needs 8 to fully restore; binary mode leaves it deflated and
        // reports the surplus.
        assert_eq!(plan.target_for(VmId(1)).unwrap(), 2.0);
        assert!(!plan.satisfied());
        let partial = DeterministicDeflation::with_partial_last().plan(&vms, -3.0);
        assert!((partial.target_for(VmId(1)).unwrap() - 5.0).abs() < 1e-9);
        assert!(partial.satisfied());
    }

    #[test]
    fn name_is_deterministic() {
        assert_eq!(DeterministicDeflation::binary().name(), "deterministic");
    }
}
