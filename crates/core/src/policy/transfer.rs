//! Cluster-level transfer-scheduling policy knob.
//!
//! Live migrations compete for a finite per-server migration-bandwidth
//! budget, and on transient servers every outbound transfer races the
//! provider's reclamation deadline. *Which* queued transfer gets the next
//! bandwidth slot therefore decides how many VMs survive a reclamation:
//! booking slots greedily in request order can spend the whole window on a
//! transfer that was always going to miss its deadline while smaller or
//! more urgent transfers starve behind it.
//!
//! This module holds only the *policy description* — a plain, serialisable
//! knob; the scheduler that enforces it lives in `deflate-cluster`
//! (`TransferScheduler`), next to the bandwidth ledger it reorders.

use serde::{Deserialize, Serialize};

/// Order in which queued live migrations are granted bandwidth slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TransferOrdering {
    /// Book slots in request order — the historical greedy behaviour, and
    /// the default (experiments comparing against earlier results rely on
    /// it being bit-identical).
    #[default]
    Fifo,
    /// Smallest transfer volume first: within a decision batch, short
    /// copies finish before the deadline instead of queueing behind long
    /// ones (the classic throughput-maximising order for a shared link).
    SmallestFirst,
    /// Earliest deadline first, with **admission control**: a transfer
    /// whose earliest possible start plus its estimated duration already
    /// overshoots its source's reclamation deadline is *rejected* up front
    /// — the VM falls back to deflate-or-evict immediately instead of
    /// wasting link time on a copy that is doomed to abort.
    Edf,
}

impl TransferOrdering {
    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            TransferOrdering::Fifo => "fifo",
            TransferOrdering::SmallestFirst => "smallest-first",
            TransferOrdering::Edf => "edf",
        }
    }
}

/// How the cluster schedules live migrations under bandwidth pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct TransferPolicy {
    /// Slot-granting order for queued transfers.
    pub ordering: TransferOrdering,
    /// Deflate migration candidates *before* starting their page copy
    /// (deflate-then-migrate): the guest surrenders its page cache, so the
    /// hot footprint — and with it the transfer time — shrinks under the
    /// reclamation deadline. Only meaningful in deflation mode; the
    /// migration-only baseline never deflates by definition.
    pub deflate_then_migrate: bool,
}

impl TransferPolicy {
    /// The historical greedy policy: FIFO booking, no pre-migration
    /// deflation. Reproduces the behaviour before the scheduler existed.
    pub fn fifo() -> Self {
        TransferPolicy {
            ordering: TransferOrdering::Fifo,
            deflate_then_migrate: false,
        }
    }

    /// Smallest-transfer-first booking.
    pub fn smallest_first() -> Self {
        TransferPolicy {
            ordering: TransferOrdering::SmallestFirst,
            deflate_then_migrate: false,
        }
    }

    /// Deadline-aware booking (EDF + admission control).
    pub fn edf() -> Self {
        TransferPolicy {
            ordering: TransferOrdering::Edf,
            deflate_then_migrate: false,
        }
    }

    /// Builder-style toggle for deflate-then-migrate.
    pub fn with_deflate_then_migrate(mut self, enabled: bool) -> Self {
        self.deflate_then_migrate = enabled;
        self
    }

    /// Short name used in experiment output (`edf+deflate` when
    /// deflate-then-migrate is on).
    pub fn name(&self) -> &'static str {
        match (self.ordering, self.deflate_then_migrate) {
            (TransferOrdering::Fifo, false) => "fifo",
            (TransferOrdering::Fifo, true) => "fifo+deflate",
            (TransferOrdering::SmallestFirst, false) => "smallest-first",
            (TransferOrdering::SmallestFirst, true) => "smallest-first+deflate",
            (TransferOrdering::Edf, false) => "edf",
            (TransferOrdering::Edf, true) => "edf+deflate",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reproduce_the_greedy_behaviour() {
        assert_eq!(TransferPolicy::default(), TransferPolicy::fifo());
        assert_eq!(TransferOrdering::default(), TransferOrdering::Fifo);
        assert!(!TransferPolicy::default().deflate_then_migrate);
    }

    #[test]
    fn names() {
        assert_eq!(TransferPolicy::fifo().name(), "fifo");
        assert_eq!(TransferPolicy::smallest_first().name(), "smallest-first");
        assert_eq!(TransferPolicy::edf().name(), "edf");
        assert_eq!(
            TransferPolicy::edf().with_deflate_then_migrate(true).name(),
            "edf+deflate"
        );
        assert_eq!(TransferOrdering::SmallestFirst.name(), "smallest-first");
    }
}
