//! Priority-based (weighted proportional) deflation, Eq 3 and Eq 4 of §5.1.2.
//!
//! Each deflatable VM carries a priority `π_i ∈ (0, 1]`; lower priority means
//! higher deflatability. The paper extends proportional deflation to
//!
//! ```text
//! Eq 3:  x_i = M_i − α3·π_i·M_i
//! Eq 4:  x_i = (M_i − π_i·M_i) − α4·π_i·(M_i − π_i·M_i)     (with m_i = π_i·M_i)
//! ```
//!
//! where the scaling factor `α` is fixed by the constraint `Σ x_i = R`. The
//! closed form can yield negative reclaim amounts for high-priority VMs (they
//! would effectively be *reinflated* to pay for the others), and can exceed a
//! VM's remaining headroom when it is already partially deflated. This
//! implementation therefore solves the same affine system iteratively:
//! compute `α` over the set of unconstrained VMs, clamp any violating VM to
//! its bound, remove it from the active set, and re-solve — the standard
//! active-set treatment whose fixed point coincides with the paper's closed
//! form whenever no bound is hit.

use super::{build_plan, weighted_return, DeflationPolicy, ScalarPlan, VmResourceState};
use serde::{Deserialize, Serialize};

/// How the per-VM deflation floor interacts with the priority level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PriorityMode {
    /// Eq 3: weighted proportional deflation over the full allocation; the
    /// only floor is the VM's own `min` (usually zero).
    Weighted,
    /// Eq 4: the minimum allocation is derived from the priority as
    /// `m_i = π_i · M_i`, and the weighted proportional deflation is applied
    /// to the span above that floor.
    WeightedWithPriorityFloor,
}

/// Priority-weighted proportional deflation policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriorityDeflation {
    /// Eq 3 vs Eq 4 behaviour.
    pub mode: PriorityMode,
}

impl Default for PriorityDeflation {
    fn default() -> Self {
        PriorityDeflation {
            mode: PriorityMode::WeightedWithPriorityFloor,
        }
    }
}

impl PriorityDeflation {
    /// Eq 3 variant.
    pub fn weighted() -> Self {
        PriorityDeflation {
            mode: PriorityMode::Weighted,
        }
    }

    /// Eq 4 variant (priority-derived minimum allocations).
    pub fn with_priority_floor() -> Self {
        PriorityDeflation {
            mode: PriorityMode::WeightedWithPriorityFloor,
        }
    }

    /// The effective floor for a VM under this mode: its own minimum, raised
    /// to `π_i · M_i` under Eq 4.
    fn floor(&self, vm: &VmResourceState) -> f64 {
        match self.mode {
            PriorityMode::Weighted => vm.min,
            PriorityMode::WeightedWithPriorityFloor => vm.min.max(vm.priority * vm.max),
        }
    }

    /// The deflatable span `D_i` entering the affine system (`M_i` for Eq 3,
    /// `M_i − π_i·M_i` for Eq 4, both reduced by any explicit `min`).
    fn span(&self, vm: &VmResourceState) -> f64 {
        (vm.max - self.floor(vm)).max(0.0)
    }

    /// Solve the clamped affine system for deflation.
    fn solve_deflation(&self, vms: &[VmResourceState], demand: f64) -> (Vec<f64>, f64) {
        let n = vms.len();
        let mut reclaim = vec![0.0f64; n];
        if n == 0 || demand <= 0.0 {
            return (reclaim, demand.max(0.0));
        }
        // Headroom relative to the *current* allocation and the mode's floor.
        let headroom: Vec<f64> = vms
            .iter()
            .map(|vm| (vm.current - self.floor(vm)).max(0.0))
            .collect();
        let span: Vec<f64> = vms.iter().map(|vm| self.span(vm)).collect();
        let mut fixed = vec![false; n];
        let mut fixed_total = 0.0f64;

        for _round in 0..n {
            let active: Vec<usize> = (0..n).filter(|&i| !fixed[i]).collect();
            if active.is_empty() {
                break;
            }
            let residual = demand - fixed_total;
            if residual <= 1e-12 {
                break;
            }
            let sum_span: f64 = active.iter().map(|&i| span[i]).sum();
            let sum_pri_span: f64 = active.iter().map(|&i| vms[i].priority * span[i]).sum();
            if sum_span <= 1e-12 {
                break;
            }
            // Degenerate case: all priorities ~0 → plain proportional split.
            let raw: Vec<(usize, f64)> = if sum_pri_span <= 1e-12 {
                active
                    .iter()
                    .map(|&i| (i, residual * span[i] / sum_span))
                    .collect()
            } else {
                let alpha = (sum_span - residual) / sum_pri_span;
                active
                    .iter()
                    .map(|&i| (i, span[i] * (1.0 - alpha * vms[i].priority)))
                    .collect()
            };
            // Clamp violators to their bounds and fix them; if nobody
            // violated, accept the solution.
            let mut violated = false;
            for &(i, x) in &raw {
                if x < -1e-12 {
                    reclaim[i] = 0.0;
                    fixed[i] = true;
                    violated = true;
                } else if x > headroom[i] + 1e-12 {
                    reclaim[i] = headroom[i];
                    fixed[i] = true;
                    fixed_total += headroom[i];
                    violated = true;
                }
            }
            if !violated {
                for (i, x) in raw {
                    reclaim[i] = x.clamp(0.0, headroom[i]);
                }
                break;
            }
        }
        let total: f64 = reclaim.iter().sum();
        (reclaim, (demand - total).max(0.0))
    }
}

impl DeflationPolicy for PriorityDeflation {
    fn name(&self) -> &'static str {
        match self.mode {
            PriorityMode::Weighted => "priority-weighted",
            PriorityMode::WeightedWithPriorityFloor => "priority",
        }
    }

    fn plan(&self, vms: &[VmResourceState], demand: f64) -> ScalarPlan {
        if demand >= 0.0 {
            let (reclaim, shortfall) = self.solve_deflation(vms, demand);
            build_plan(vms, &reclaim, demand, shortfall)
        } else {
            // Reinflation: resources flow back preferentially to high
            // priority VMs — the reverse of the deflation ordering — in
            // proportion to π_i times the headroom to their full size.
            let give = -demand;
            let headroom: Vec<f64> = vms.iter().map(|vm| vm.reinflatable_headroom()).collect();
            let weights: Vec<f64> = vms
                .iter()
                .map(|vm| vm.priority * vm.max.max(1e-12))
                .collect();
            let (ret, surplus) = weighted_return(&headroom, &weights, give);
            let reclaim: Vec<f64> = ret.iter().map(|r| -r).collect();
            build_plan(vms, &reclaim, demand, -surplus)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmId;

    fn vm(id: u64, max: f64, current: f64, pri: f64) -> VmResourceState {
        VmResourceState {
            id: VmId(id),
            max,
            min: 0.0,
            current,
            priority: pri,
        }
    }

    #[test]
    fn eq3_closed_form_when_unconstrained() {
        // Two identical VMs, π = 0.4 and 0.6, reclaim R = 10 out of 2×10.
        // α = (ΣM − R)/Σ(πM) = (20 − 10)/(0.4·10 + 0.6·10) = 1.0
        // x1 = 10(1 − 1.0·0.4) = 6, x2 = 10(1 − 1.0·0.6) = 4.
        let vms = vec![vm(1, 10.0, 10.0, 0.4), vm(2, 10.0, 10.0, 0.6)];
        let plan = PriorityDeflation::weighted().plan(&vms, 10.0);
        assert!(plan.satisfied());
        assert!((plan.target_for(VmId(1)).unwrap() - 4.0).abs() < 1e-9);
        assert!((plan.target_for(VmId(2)).unwrap() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn lower_priority_vm_always_deflated_at_least_as_much() {
        let vms = vec![vm(1, 16.0, 16.0, 0.2), vm(2, 16.0, 16.0, 0.8)];
        for demand in [2.0, 6.0, 12.0, 20.0] {
            let plan = PriorityDeflation::weighted().plan(&vms, demand);
            let give1 = 16.0 - plan.target_for(VmId(1)).unwrap();
            let give2 = 16.0 - plan.target_for(VmId(2)).unwrap();
            assert!(
                give1 >= give2 - 1e-9,
                "low-priority VM gave {give1} < high-priority {give2} at R={demand}"
            );
        }
    }

    #[test]
    fn negative_closed_form_share_is_clamped_to_zero() {
        // Small R with widely spread priorities: the literal Eq 3 would ask
        // the high-priority VM to *grow*; the implementation clamps it to 0
        // and takes everything from the low-priority VM.
        let vms = vec![vm(1, 10.0, 10.0, 0.1), vm(2, 10.0, 10.0, 0.9)];
        let plan = PriorityDeflation::weighted().plan(&vms, 1.0);
        assert!(plan.satisfied());
        let give1 = 10.0 - plan.target_for(VmId(1)).unwrap();
        let give2 = 10.0 - plan.target_for(VmId(2)).unwrap();
        assert!(give2.abs() < 1e-9, "high-priority VM should give nothing");
        assert!((give1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eq4_respects_priority_derived_floor() {
        // π = 0.5 ⇒ floor = 5 of 10; even a huge demand cannot push below it.
        let vms = vec![vm(1, 10.0, 10.0, 0.5)];
        let plan = PriorityDeflation::with_priority_floor().plan(&vms, 100.0);
        assert!(!plan.satisfied());
        assert!((plan.target_for(VmId(1)).unwrap() - 5.0).abs() < 1e-9);
        assert!((plan.reclaimed - 5.0).abs() < 1e-9);
    }

    #[test]
    fn eq4_distributes_over_span_above_floor() {
        // Both VMs have floors π·M: VM1 floor 2, VM2 floor 8. Deflatable
        // spans are 8 and 2. Reclaim 5 total — must be satisfiable.
        let vms = vec![vm(1, 10.0, 10.0, 0.2), vm(2, 10.0, 10.0, 0.8)];
        let plan = PriorityDeflation::with_priority_floor().plan(&vms, 5.0);
        assert!(plan.satisfied());
        let t1 = plan.target_for(VmId(1)).unwrap();
        let t2 = plan.target_for(VmId(2)).unwrap();
        assert!(t1 >= 2.0 - 1e-9 && t2 >= 8.0 - 1e-9);
        assert!(((10.0 - t1) + (10.0 - t2) - 5.0).abs() < 1e-9);
        // The low-priority VM shoulders more of the reclamation.
        assert!((10.0 - t1) > (10.0 - t2));
    }

    #[test]
    fn already_deflated_vm_limited_by_headroom() {
        let vms = vec![vm(1, 10.0, 3.0, 0.2), vm(2, 10.0, 10.0, 0.8)];
        let plan = PriorityDeflation::weighted().plan(&vms, 8.0);
        assert!(plan.satisfied());
        let t1 = plan.target_for(VmId(1)).unwrap();
        let t2 = plan.target_for(VmId(2)).unwrap();
        assert!(t1 >= -1e-9);
        assert!(((3.0 - t1) + (10.0 - t2) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn shortfall_reported_when_capacity_exhausted() {
        let vms = vec![vm(1, 4.0, 4.0, 0.5), vm(2, 4.0, 4.0, 0.5)];
        let plan = PriorityDeflation::weighted().plan(&vms, 20.0);
        assert!(!plan.satisfied());
        assert!((plan.reclaimed - 8.0).abs() < 1e-9);
        assert!((plan.shortfall - 12.0).abs() < 1e-9);
    }

    #[test]
    fn reinflation_prefers_high_priority() {
        let vms = vec![vm(1, 10.0, 5.0, 0.2), vm(2, 10.0, 5.0, 0.8)];
        let plan = PriorityDeflation::weighted().plan(&vms, -4.0);
        assert!(plan.satisfied());
        let back1 = plan.target_for(VmId(1)).unwrap() - 5.0;
        let back2 = plan.target_for(VmId(2)).unwrap() - 5.0;
        assert!(back2 > back1, "high-priority VM should reinflate first");
        assert!((back1 + back2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_reports_full_shortfall() {
        let plan = PriorityDeflation::default().plan(&[], 5.0);
        assert_eq!(plan.shortfall, 5.0);
        assert!(plan.targets.is_empty());
    }

    #[test]
    fn policy_names() {
        assert_eq!(PriorityDeflation::weighted().name(), "priority-weighted");
        assert_eq!(PriorityDeflation::with_priority_floor().name(), "priority");
    }
}
