//! Proportional deflation (Eq 1) and minimum-allocation-aware proportional
//! deflation (Eq 2) from §5.1.1, plus proportional reinflation.
//!
//! The paper's closed forms are
//!
//! ```text
//! Eq 1:  x_i = M_i − α1·M_i            with α1 = 1 − R / Σ M_i
//! Eq 2:  x_i = (M_i − m_i) − α2·(M_i − m_i)
//! ```
//!
//! i.e. each VM gives up a share of `R` proportional to its size `M_i`
//! (Eq 1) or its deflatable span `M_i − m_i` (Eq 2). The closed form assumes
//! every VM can actually give up its share; when some VM is already deflated
//! close to its floor, the residual demand is redistributed over the
//! remaining VMs (water-filling), which is exactly the fixed point of
//! re-solving the closed form over the unsaturated set.

use super::{
    build_plan, weighted_fill, weighted_return, DeflationPolicy, ScalarPlan, VmResourceState,
};
use serde::{Deserialize, Serialize};

/// Which weight the proportional share uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProportionalMode {
    /// Eq 1: share proportional to the original allocation `M_i`. Minimum
    /// allocations are still honoured as hard floors, but do not change the
    /// shares.
    BySize,
    /// Eq 2: share proportional to the deflatable span `M_i − m_i`.
    ByDeflatableSpan,
}

/// Proportional deflation policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProportionalDeflation {
    /// Weighting mode (Eq 1 vs Eq 2).
    pub mode: ProportionalMode,
}

impl Default for ProportionalDeflation {
    fn default() -> Self {
        ProportionalDeflation {
            mode: ProportionalMode::ByDeflatableSpan,
        }
    }
}

impl ProportionalDeflation {
    /// Eq 1 variant: deflate in proportion to original VM size.
    pub fn by_size() -> Self {
        ProportionalDeflation {
            mode: ProportionalMode::BySize,
        }
    }

    /// Eq 2 variant: deflate in proportion to the deflatable span.
    pub fn by_deflatable_span() -> Self {
        ProportionalDeflation {
            mode: ProportionalMode::ByDeflatableSpan,
        }
    }

    fn weights(&self, vms: &[VmResourceState]) -> Vec<f64> {
        vms.iter()
            .map(|vm| match self.mode {
                ProportionalMode::BySize => vm.max.max(0.0),
                ProportionalMode::ByDeflatableSpan => vm.deflatable_span(),
            })
            .collect()
    }
}

impl DeflationPolicy for ProportionalDeflation {
    fn name(&self) -> &'static str {
        match self.mode {
            ProportionalMode::BySize => "proportional",
            ProportionalMode::ByDeflatableSpan => "proportional-min-aware",
        }
    }

    fn plan(&self, vms: &[VmResourceState], demand: f64) -> ScalarPlan {
        let weights = self.weights(vms);
        if demand >= 0.0 {
            let headrooms: Vec<f64> = vms.iter().map(|v| v.deflatable_headroom()).collect();
            let (take, shortfall) = weighted_fill(&headrooms, &weights, demand);
            build_plan(vms, &take, demand, shortfall)
        } else {
            // Reinflation: run the proportional policy backwards (§5.1.3),
            // returning resources in proportion to the same weights.
            let give = -demand;
            let headrooms: Vec<f64> = vms.iter().map(|v| v.reinflatable_headroom()).collect();
            let (ret, surplus) = weighted_return(&headrooms, &weights, give);
            let reclaim: Vec<f64> = ret.iter().map(|r| -r).collect();
            build_plan(vms, &reclaim, demand, -surplus)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmId;

    fn vm(id: u64, max: f64, min: f64, current: f64) -> VmResourceState {
        VmResourceState {
            id: VmId(id),
            max,
            min,
            current,
            priority: 0.5,
        }
    }

    #[test]
    fn eq1_reclaims_in_proportion_to_size() {
        // Paper Eq 1: x_i = M_i · R / ΣM. Two VMs of 4 and 12 cores, reclaim 4.
        let vms = vec![vm(1, 4.0, 0.0, 4.0), vm(2, 12.0, 0.0, 12.0)];
        let plan = ProportionalDeflation::by_size().plan(&vms, 4.0);
        assert!(plan.satisfied());
        assert!((plan.target_for(VmId(1)).unwrap() - 3.0).abs() < 1e-9); // gave 1
        assert!((plan.target_for(VmId(2)).unwrap() - 9.0).abs() < 1e-9); // gave 3
        assert!((plan.reclaimed - 4.0).abs() < 1e-9);
    }

    #[test]
    fn eq2_uses_deflatable_span_weights() {
        // VM 1 has no deflatable span (m == M); everything comes from VM 2.
        let vms = vec![vm(1, 8.0, 8.0, 8.0), vm(2, 8.0, 2.0, 8.0)];
        let plan = ProportionalDeflation::by_deflatable_span().plan(&vms, 3.0);
        assert!(plan.satisfied());
        assert_eq!(plan.target_for(VmId(1)).unwrap(), 8.0);
        assert!((plan.target_for(VmId(2)).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn min_allocation_is_a_hard_floor() {
        let vms = vec![vm(1, 10.0, 6.0, 10.0), vm(2, 10.0, 0.0, 10.0)];
        let plan = ProportionalDeflation::by_size().plan(&vms, 12.0);
        assert!(plan.satisfied());
        // VM 1 can give at most 4; VM 2 covers the remaining 8.
        assert!((plan.target_for(VmId(1)).unwrap() - 6.0).abs() < 1e-9);
        assert!((plan.target_for(VmId(2)).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shortfall_when_not_enough_deflatable_capacity() {
        let vms = vec![vm(1, 10.0, 8.0, 10.0), vm(2, 10.0, 8.0, 10.0)];
        let plan = ProportionalDeflation::default().plan(&vms, 10.0);
        assert!(!plan.satisfied());
        assert!((plan.shortfall - 6.0).abs() < 1e-9);
        assert!((plan.reclaimed - 4.0).abs() < 1e-9);
        // Both VMs sit at their floors.
        assert_eq!(plan.target_for(VmId(1)).unwrap(), 8.0);
        assert_eq!(plan.target_for(VmId(2)).unwrap(), 8.0);
    }

    #[test]
    fn already_deflated_vms_contribute_only_their_headroom() {
        // VM 1 is already at 2 of 10; VM 2 undeflated.
        let vms = vec![vm(1, 10.0, 0.0, 2.0), vm(2, 10.0, 0.0, 10.0)];
        let plan = ProportionalDeflation::by_size().plan(&vms, 8.0);
        assert!(plan.satisfied());
        let t1 = plan.target_for(VmId(1)).unwrap();
        let t2 = plan.target_for(VmId(2)).unwrap();
        // Naive proportional shares would be 4 each, but VM 1 only has 2 of
        // headroom; VM 2 absorbs the rest.
        assert!((-1e-9..=2.0 + 1e-9).contains(&t1));
        assert!(((2.0 - t1) + (10.0 - t2) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn reinflation_distributes_freed_resources() {
        let vms = vec![vm(1, 10.0, 0.0, 5.0), vm(2, 10.0, 0.0, 5.0)];
        let plan = ProportionalDeflation::by_size().plan(&vms, -6.0);
        assert!(plan.satisfied());
        assert!((plan.target_for(VmId(1)).unwrap() - 8.0).abs() < 1e-9);
        assert!((plan.target_for(VmId(2)).unwrap() - 8.0).abs() < 1e-9);
        assert!((plan.reclaimed + 6.0).abs() < 1e-9);
    }

    #[test]
    fn reinflation_never_exceeds_max() {
        let vms = vec![vm(1, 10.0, 0.0, 9.0), vm(2, 10.0, 0.0, 2.0)];
        let plan = ProportionalDeflation::by_size().plan(&vms, -20.0);
        // Only 9 can be returned in total (1 + 8); surplus reported as
        // negative shortfall.
        assert_eq!(plan.target_for(VmId(1)).unwrap(), 10.0);
        assert_eq!(plan.target_for(VmId(2)).unwrap(), 10.0);
        assert!((plan.shortfall + 11.0).abs() < 1e-9);
    }

    #[test]
    fn zero_demand_is_a_noop() {
        let vms = vec![vm(1, 10.0, 0.0, 7.0)];
        let plan = ProportionalDeflation::default().plan(&vms, 0.0);
        assert!(plan.satisfied());
        assert_eq!(plan.target_for(VmId(1)).unwrap(), 7.0);
    }

    #[test]
    fn policy_names() {
        assert_eq!(ProportionalDeflation::by_size().name(), "proportional");
        assert_eq!(
            ProportionalDeflation::by_deflatable_span().name(),
            "proportional-min-aware"
        );
    }
}
