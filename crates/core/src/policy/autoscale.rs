//! Cluster-level elastic-autoscaling policy knob.
//!
//! The paper's thesis is that VM deflation makes transient capacity safe
//! for *elastic and interactive* applications (§1, §8): an application
//! that resizes itself with demand does not have to treat reclaimed
//! capacity as lost capacity, because deflated VMs can be reinflated the
//! moment demand (or capacity) returns. The autoscaling subsystem in
//! `deflate-autoscale` turns that claim into a control loop; this module
//! holds only the *policy description* — a plain, serialisable knob the
//! simulator is configured with, mirroring [`TransferPolicy`]'s split
//! between knob (here) and machinery (`deflate-cluster` /
//! `deflate-autoscale`).
//!
//! [`TransferPolicy`]: crate::policy::TransferPolicy

use serde::{Deserialize, Serialize};

/// Tuning parameters shared by every enabled autoscaling variant.
///
/// All time quantities are simulated seconds. The defaults describe a
/// conservative production-style target tracker: 60 % utilisation
/// setpoint, five-minute cooldown between scaling actions, a short
/// actuation delay between a decision and its execution, and a
/// five-minute boot time for freshly launched replicas — the asymmetry
/// the deflation-aware variant exploits, since reinflating a deflated
/// replica is instantaneous.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleParams {
    /// Target mean application utilisation the tracker steers towards.
    pub setpoint: f64,
    /// Half-width of the no-action band around the setpoint: scale-in is
    /// only considered when utilisation is below `setpoint - deadband`,
    /// so a signal hovering at the setpoint does not thrash.
    pub deadband: f64,
    /// Minimum simulated seconds between two scaling decisions for the
    /// same application.
    pub cooldown_secs: f64,
    /// Delay between a scaling decision (made at a `UtilizationTick`) and
    /// the `ScaleOut` / `ScaleIn` event that executes it.
    pub actuation_delay_secs: f64,
    /// Seconds a freshly *launched* replica takes to boot before it
    /// serves traffic. Reinflated (previously deflated) replicas skip
    /// this entirely — they are already booted, which is the paper's
    /// core elasticity claim applied to scaling.
    pub boot_secs: f64,
    /// Fraction of the replica's full allocation a deflation-aware
    /// scale-in deflates it to instead of terminating it (the "parked"
    /// state).
    pub park_fraction: f64,
    /// Maximum replicas added or removed by one scaling action.
    pub max_step: usize,
}

impl Default for AutoscaleParams {
    fn default() -> Self {
        AutoscaleParams {
            setpoint: 0.6,
            deadband: 0.1,
            cooldown_secs: 300.0,
            actuation_delay_secs: 30.0,
            boot_secs: 300.0,
            park_fraction: 0.1,
            max_step: 8,
        }
    }
}

/// How the cluster resizes elastic applications in response to the
/// per-application utilisation observed at `UtilizationTick` events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum AutoscalePolicy {
    /// No autoscaling at all — the historical fixed-population behaviour,
    /// and the default. Runs under `Disabled` are required to be
    /// bit-identical to runs that predate the autoscaling subsystem
    /// (pinned by the golden regression tests).
    #[default]
    Disabled,
    /// Launch-only target tracking: scale out by launching new replicas
    /// (paying the boot time), scale in by terminating them — the policy
    /// of today's cloud autoscalers.
    TargetTracking(AutoscaleParams),
    /// Deflation-aware target tracking: scale-out prefers *reinflating*
    /// parked (deflated) replicas over launching new ones, and scale-in
    /// *deflates* replicas instead of terminating them, so the capacity
    /// can return instantly on the next ramp — the paper's deflation
    /// claim applied to elasticity.
    DeflationAware(AutoscaleParams),
}

impl AutoscalePolicy {
    /// Launch-only target tracking at the default parameters.
    pub fn target_tracking() -> Self {
        AutoscalePolicy::TargetTracking(AutoscaleParams::default())
    }

    /// Deflation-aware target tracking at the default parameters.
    pub fn deflation_aware() -> Self {
        AutoscalePolicy::DeflationAware(AutoscaleParams::default())
    }

    /// True when the policy performs any scaling at all.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, AutoscalePolicy::Disabled)
    }

    /// True for the deflation-aware variant (park instead of terminate,
    /// reinflate instead of launch).
    pub fn is_deflation_aware(&self) -> bool {
        matches!(self, AutoscalePolicy::DeflationAware(_))
    }

    /// The tuning parameters, if the policy is enabled.
    pub fn params(&self) -> Option<AutoscaleParams> {
        match self {
            AutoscalePolicy::Disabled => None,
            AutoscalePolicy::TargetTracking(p) | AutoscalePolicy::DeflationAware(p) => Some(*p),
        }
    }

    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            AutoscalePolicy::Disabled => "disabled",
            AutoscalePolicy::TargetTracking(_) => "launch-only",
            AutoscalePolicy::DeflationAware(_) => "deflation-aware",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        assert_eq!(AutoscalePolicy::default(), AutoscalePolicy::Disabled);
        assert!(!AutoscalePolicy::default().is_enabled());
        assert!(AutoscalePolicy::default().params().is_none());
        assert_eq!(AutoscalePolicy::default().name(), "disabled");
    }

    #[test]
    fn enabled_variants_expose_params_and_names() {
        let tt = AutoscalePolicy::target_tracking();
        assert!(tt.is_enabled());
        assert!(!tt.is_deflation_aware());
        assert_eq!(tt.name(), "launch-only");
        let da = AutoscalePolicy::deflation_aware();
        assert!(da.is_enabled());
        assert!(da.is_deflation_aware());
        assert_eq!(da.name(), "deflation-aware");
        let p = da.params().unwrap();
        assert!(p.setpoint > 0.0 && p.setpoint < 1.0);
        assert!(p.boot_secs > 0.0);
        assert!(p.park_fraction > 0.0 && p.park_fraction < 1.0);
        assert!(p.max_step >= 1);
    }
}
