//! Server-level deflation policies (§5.1).
//!
//! A deflation policy answers one question: *given a set of deflatable VMs on
//! a server and an amount `R` of one resource that must be reclaimed (or, for
//! reinflation, returned), how much does each VM give up (or get back)?*
//!
//! The paper proposes three families of policies, all implemented here:
//!
//! * [`ProportionalDeflation`] — Eq 1
//!   (plain) and Eq 2 (minimum-allocation aware).
//! * [`PriorityDeflation`] — weighted
//!   proportional deflation, Eq 3 and Eq 4.
//! * [`DeterministicDeflation`] —
//!   binary, priority-ordered deflation to pre-specified levels.
//!
//! Policies are *scalar*: they operate on one [`ResourceKind`] at a time,
//! because "the proportional deflation is performed for each resource (CPU,
//! memory, disk bandwidth, network bandwidth) individually" (§5.1.1). The
//! [`VectorPlanner`] lifts any scalar policy to full [`ResourceVector`]s.
//!
//! Besides the deflation policies this module also carries three
//! cluster-level knobs: the [`transfer`] knob ([`TransferPolicy`],
//! describing how queued live migrations are ordered against per-server
//! bandwidth budgets — FIFO / smallest-first / deadline-aware EDF,
//! optionally deflate-then-migrate), the [`restore`] knob
//! ([`RestorePolicy`], hysteresis / spread-out reinflation after capacity
//! restitutions) and the [`autoscale`] knob ([`AutoscalePolicy`], the
//! elastic cluster-resizing policy driven by utilisation ticks).
//!
//! Reinflation (§5.1.3 "Reinflation") is expressed by calling
//! [`DeflationPolicy::plan`] with a *negative* demand: the policy runs
//! backwards and distributes the freed resources across previously deflated
//! VMs.

pub mod autoscale;
pub mod deterministic;
pub mod priority;
pub mod proportional;
pub mod restore;
pub mod transfer;

pub use autoscale::{AutoscaleParams, AutoscalePolicy};
pub use deterministic::DeterministicDeflation;
pub use priority::PriorityDeflation;
pub use proportional::ProportionalDeflation;
pub use restore::RestorePolicy;
pub use transfer::{TransferOrdering, TransferPolicy};

use crate::resources::{ResourceKind, ResourceVector};
use crate::vm::{VmAllocation, VmId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-VM, per-resource state a scalar policy needs to make its decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmResourceState {
    /// VM identity.
    pub id: VmId,
    /// Original, undeflated allocation `M_i` of this resource.
    pub max: f64,
    /// Minimum allocation `m_i` (0 when the VM has no QoS floor).
    pub min: f64,
    /// Currently granted allocation (between `min` and `max`).
    pub current: f64,
    /// Deflation priority `π_i ∈ (0, 1]`; lower means more deflatable.
    pub priority: f64,
}

impl VmResourceState {
    /// Resources that can still be reclaimed from this VM.
    #[inline]
    pub fn deflatable_headroom(&self) -> f64 {
        (self.current - self.min).max(0.0)
    }

    /// Resources that can still be returned to this VM.
    #[inline]
    pub fn reinflatable_headroom(&self) -> f64 {
        (self.max - self.current).max(0.0)
    }

    /// Deflatable span `M_i − m_i` regardless of the current allocation; this
    /// is the `D_i` term in Eq 2 and Eq 4.
    #[inline]
    pub fn deflatable_span(&self) -> f64 {
        (self.max - self.min).max(0.0)
    }
}

/// Outcome of a scalar planning step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalarPlan {
    /// Resource kind this plan applies to (informational).
    pub kind: Option<ResourceKind>,
    /// New allocation target for each VM, in the same order as the input.
    pub targets: Vec<(VmId, f64)>,
    /// Total amount reclaimed (positive) or returned (negative).
    pub reclaimed: f64,
    /// Demand that could not be satisfied because the deflatable (or
    /// reinflatable) headroom ran out. Zero on success.
    pub shortfall: f64,
}

impl ScalarPlan {
    /// True when the full demand was satisfied.
    #[inline]
    pub fn satisfied(&self) -> bool {
        self.shortfall.abs() <= 1e-6
    }

    /// Look up the planned allocation for a VM.
    pub fn target_for(&self, vm: VmId) -> Option<f64> {
        self.targets
            .iter()
            .find(|(id, _)| *id == vm)
            .map(|(_, t)| *t)
    }
}

/// A server-level deflation policy operating on a single resource dimension.
pub trait DeflationPolicy: Send + Sync {
    /// Short policy name used in experiment output.
    fn name(&self) -> &'static str;

    /// Compute new allocation targets so that `demand` units of the resource
    /// are reclaimed from (positive demand) or returned to (negative demand)
    /// the given VMs.
    ///
    /// Invariants every implementation upholds:
    /// * each target lies in `[min, max]` of its VM;
    /// * `sum(current − target) == demand − shortfall` (up to rounding);
    /// * `shortfall` is non-negative for deflation and non-positive for
    ///   reinflation, and zero when the demand was fully met.
    fn plan(&self, vms: &[VmResourceState], demand: f64) -> ScalarPlan;
}

/// Distribute `demand ≥ 0` across VMs proportionally to `weights`, honouring
/// each VM's headroom, using iterative water-filling.
///
/// Returns the per-VM reclaim amounts (same order as `vms`) and the
/// unsatisfied remainder. This is the computational core shared by the
/// proportional and priority-weighted policies once their per-VM weights have
/// been fixed: the paper's closed-form α only applies when no VM hits its
/// bound, so the water-filling loop re-solves the closed form over the
/// unsaturated set until a fixed point is reached.
pub(crate) fn weighted_fill(headrooms: &[f64], weights: &[f64], demand: f64) -> (Vec<f64>, f64) {
    debug_assert_eq!(headrooms.len(), weights.len());
    let n = headrooms.len();
    let mut take = vec![0.0f64; n];
    if demand <= 0.0 || n == 0 {
        return (take, demand.max(0.0));
    }
    let mut remaining = demand;
    let mut active: Vec<usize> = (0..n)
        .filter(|&i| headrooms[i] > 1e-12 && weights[i] > 0.0)
        .collect();
    // Each round either satisfies the remaining demand or saturates at least
    // one VM, so the loop terminates in at most `n` rounds.
    while remaining > 1e-9 && !active.is_empty() {
        let total_weight: f64 = active.iter().map(|&i| weights[i]).sum();
        if total_weight <= 0.0 {
            break;
        }
        let mut saturated = Vec::new();
        let mut progressed = false;
        for &i in &active {
            let share = remaining * weights[i] / total_weight;
            let capacity = headrooms[i] - take[i];
            let grant = share.min(capacity);
            if grant > 0.0 {
                take[i] += grant;
                progressed = true;
            }
            if headrooms[i] - take[i] <= 1e-12 {
                saturated.push(i);
            }
        }
        let taken: f64 = take.iter().sum();
        remaining = demand - taken;
        if !progressed {
            break;
        }
        active.retain(|i| !saturated.contains(i));
    }
    (take, remaining.max(0.0))
}

/// Distribute `give ≥ 0` units back to VMs proportionally to `weights`,
/// honouring each VM's reinflatable headroom. Mirror image of
/// [`weighted_fill`]; returns per-VM returned amounts and the surplus that
/// could not be placed.
pub(crate) fn weighted_return(headrooms: &[f64], weights: &[f64], give: f64) -> (Vec<f64>, f64) {
    weighted_fill(headrooms, weights, give)
}

/// Anything that exposes a VM spec plus its currently granted allocation.
///
/// Implemented for [`VmAllocation`] here and for the simulated hypervisor's
/// `Domain` type in `deflate-hypervisor`, so policies can be planned directly
/// against either representation.
pub trait AllocationView {
    /// The VM's static specification.
    fn spec(&self) -> &crate::vm::VmSpec;
    /// The allocation the VM currently holds.
    fn current_allocation(&self) -> ResourceVector;
}

impl AllocationView for VmAllocation {
    fn spec(&self) -> &crate::vm::VmSpec {
        &self.spec
    }
    fn current_allocation(&self) -> ResourceVector {
        self.current()
    }
}

impl<T: AllocationView + ?Sized> AllocationView for &T {
    fn spec(&self) -> &crate::vm::VmSpec {
        (**self).spec()
    }
    fn current_allocation(&self) -> ResourceVector {
        (**self).current_allocation()
    }
}

/// Builds [`VmResourceState`] slices out of full [`VmAllocation`]s and lifts a
/// scalar policy to all four resource dimensions.
#[derive(Debug, Clone, Default)]
pub struct VectorPlanner;

/// A full multi-resource deflation plan: one target vector per VM plus
/// per-resource shortfalls.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorPlan {
    /// New allocation vectors keyed by VM.
    pub targets: BTreeMap<VmId, ResourceVector>,
    /// Total reclaimed per resource (negative when reinflating).
    pub reclaimed: ResourceVector,
    /// Unmet demand per resource.
    pub shortfall: ResourceVector,
}

impl VectorPlan {
    /// True when every resource dimension was fully satisfied.
    pub fn satisfied(&self) -> bool {
        self.shortfall.iter().all(|(_, v)| v.abs() <= 1e-6)
    }
}

impl VectorPlanner {
    /// Extract the scalar state of one resource kind from a set of VM
    /// allocations (deflatable VMs only; non-deflatable VMs are skipped).
    pub fn scalar_states<V: AllocationView>(vms: &[V], kind: ResourceKind) -> Vec<VmResourceState> {
        vms.iter()
            .filter(|vm| vm.spec().deflatable)
            .map(|vm| VmResourceState {
                id: vm.spec().id,
                max: vm.spec().max_allocation[kind],
                min: vm.spec().min_allocation[kind],
                current: vm.current_allocation()[kind],
                priority: vm.spec().priority.value(),
            })
            .collect()
    }

    /// Plan deflation (or reinflation) of every resource dimension using the
    /// given scalar policy. `demand` holds, per resource, the amount that
    /// must be reclaimed (positive) or can be returned (negative).
    pub fn plan<V: AllocationView>(
        policy: &dyn DeflationPolicy,
        vms: &[V],
        demand: ResourceVector,
    ) -> VectorPlan {
        let mut targets: BTreeMap<VmId, ResourceVector> = vms
            .iter()
            .filter(|vm| vm.spec().deflatable)
            .map(|vm| (vm.spec().id, vm.current_allocation()))
            .collect();
        let mut reclaimed = ResourceVector::ZERO;
        let mut shortfall = ResourceVector::ZERO;
        for kind in ResourceKind::ALL {
            let d = demand[kind];
            if d.abs() <= 1e-12 {
                continue;
            }
            let states = Self::scalar_states(vms, kind);
            let plan = policy.plan(&states, d);
            for (id, target) in &plan.targets {
                if let Some(v) = targets.get_mut(id) {
                    (*v)[kind] = *target;
                }
            }
            reclaimed[kind] = plan.reclaimed;
            shortfall[kind] = plan.shortfall;
        }
        VectorPlan {
            targets,
            reclaimed,
            shortfall,
        }
    }
}

/// Shared plumbing for building a [`ScalarPlan`] out of per-VM reclaim /
/// return amounts.
///
/// The reported `reclaimed` figure is the *actual* change in total
/// allocation, `Σ (current − target)`, which can exceed the demand for
/// binary policies that over-reclaim, and is negative when reinflating.
pub(crate) fn build_plan(
    vms: &[VmResourceState],
    reclaim: &[f64],
    _demand: f64,
    shortfall: f64,
) -> ScalarPlan {
    let mut reclaimed = 0.0;
    let targets = vms
        .iter()
        .zip(reclaim.iter())
        .map(|(vm, r)| {
            let target = (vm.current - r).clamp(vm.min, vm.max);
            reclaimed += vm.current - target;
            (vm.id, target)
        })
        .collect();
    ScalarPlan {
        kind: None,
        targets,
        reclaimed,
        shortfall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{Priority, VmClass, VmSpec};

    fn state(id: u64, max: f64, min: f64, current: f64, pri: f64) -> VmResourceState {
        VmResourceState {
            id: VmId(id),
            max,
            min,
            current,
            priority: pri,
        }
    }

    #[test]
    fn headrooms() {
        let s = state(1, 10.0, 2.0, 6.0, 0.5);
        assert_eq!(s.deflatable_headroom(), 4.0);
        assert_eq!(s.reinflatable_headroom(), 4.0);
        assert_eq!(s.deflatable_span(), 8.0);
    }

    #[test]
    fn weighted_fill_simple_proportional() {
        let (take, rem) = weighted_fill(&[10.0, 10.0], &[1.0, 3.0], 4.0);
        assert!(rem.abs() < 1e-9);
        assert!((take[0] - 1.0).abs() < 1e-9);
        assert!((take[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_fill_respects_headroom_and_redistributes() {
        // VM 0 can only give 1.0; the rest must come from VM 1.
        let (take, rem) = weighted_fill(&[1.0, 100.0], &[1.0, 1.0], 10.0);
        assert!(rem.abs() < 1e-9);
        assert!((take[0] - 1.0).abs() < 1e-9);
        assert!((take[1] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_fill_reports_shortfall() {
        let (take, rem) = weighted_fill(&[1.0, 2.0], &[1.0, 1.0], 10.0);
        assert!((take[0] - 1.0).abs() < 1e-9);
        assert!((take[1] - 2.0).abs() < 1e-9);
        assert!((rem - 7.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_fill_zero_demand_or_empty() {
        let (take, rem) = weighted_fill(&[], &[], 5.0);
        assert!(take.is_empty());
        assert_eq!(rem, 5.0);
        let (take, rem) = weighted_fill(&[1.0], &[1.0], 0.0);
        assert_eq!(take, vec![0.0]);
        assert_eq!(rem, 0.0);
    }

    #[test]
    fn scalar_plan_lookup() {
        let plan = ScalarPlan {
            kind: Some(ResourceKind::Cpu),
            targets: vec![(VmId(1), 5.0), (VmId(2), 3.0)],
            reclaimed: 2.0,
            shortfall: 0.0,
        };
        assert!(plan.satisfied());
        assert_eq!(plan.target_for(VmId(2)), Some(3.0));
        assert_eq!(plan.target_for(VmId(9)), None);
    }

    #[test]
    fn vector_planner_skips_non_deflatable() {
        let deflatable = VmAllocation::new(
            VmSpec::deflatable(
                VmId(1),
                VmClass::Interactive,
                ResourceVector::cpu_mem(4000.0, 8192.0),
            )
            .with_priority(Priority::new(0.5)),
        );
        let on_demand = VmAllocation::new(VmSpec::on_demand(
            VmId(2),
            VmClass::Unknown,
            ResourceVector::cpu_mem(4000.0, 8192.0),
        ));
        let vms = vec![&deflatable, &on_demand];
        let states = VectorPlanner::scalar_states(&vms, ResourceKind::Cpu);
        assert_eq!(states.len(), 1);
        assert_eq!(states[0].id, VmId(1));

        let policy = ProportionalDeflation::default();
        let plan = VectorPlanner::plan(
            &policy,
            &vms,
            ResourceVector::only(ResourceKind::Cpu, 1000.0),
        );
        assert!(plan.satisfied());
        assert_eq!(plan.targets.len(), 1);
        let target = plan.targets[&VmId(1)];
        assert!((target.cpu() - 3000.0).abs() < 1e-6);
        // Untouched dimensions stay at their current values.
        assert!((target.memory() - 8192.0).abs() < 1e-6);
    }
}
