//! Capacity-restitution (reinflation) policy knob.
//!
//! When the provider returns previously reclaimed capacity, the cluster's
//! historical behaviour is to **reinflate greedily**: every restitution
//! immediately hands the whole returned room back to the server's
//! deflated residents. Under fast-oscillating capacity signals (a
//! spot-market burst, a tight square wave) this thrashes — residents are
//! pumped back to full size only to be squeezed again seconds later,
//! churning allocations (and, with the cache-regrowth model, re-warming
//! page caches that are about to be dropped again).
//!
//! [`RestorePolicy`] adds two hysteresis knobs. Both default to the
//! greedy behaviour, which is regression-pinned bit-identical to the
//! pre-knob simulator. The policy applies only to the reinflation
//! *response to restitution events*; reinflation after departures and
//! migration completions stays greedy (freed room there is not a signal
//! edge, so it cannot oscillate).

use serde::{Deserialize, Serialize};

/// How a server's residents are reinflated after a capacity restitution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RestorePolicy {
    /// Minimum simulated seconds since the server's last *reclamation*
    /// before a restitution triggers reinflation at all. A restitution
    /// arriving earlier raises the capacity (arrivals can use the room)
    /// but leaves residents deflated — if the signal is oscillating, the
    /// next reclamation finds nothing to squeeze back down. `0.0`
    /// (default) reinflates on every restitution.
    pub hysteresis_secs: f64,
    /// Fraction of the server's free room one restitution hands back to
    /// residents (spread-out reinflation). `1.0` (default) is the greedy
    /// full hand-back; `0.5` returns half per event, so full size is
    /// approached geometrically over consecutive restitutions and a
    /// single spike reinflates almost nothing.
    pub step_fraction: f64,
}

impl Default for RestorePolicy {
    fn default() -> Self {
        RestorePolicy::greedy()
    }
}

impl RestorePolicy {
    /// The historical behaviour: every restitution immediately reinflates
    /// residents into the whole returned room. Bit-identical to the
    /// simulator before the knob existed.
    pub fn greedy() -> Self {
        RestorePolicy {
            hysteresis_secs: 0.0,
            step_fraction: 1.0,
        }
    }

    /// Hysteresis-only variant: ignore restitutions within
    /// `hysteresis_secs` of the last reclamation, reinflate fully
    /// otherwise.
    pub fn hysteresis(hysteresis_secs: f64) -> Self {
        RestorePolicy {
            hysteresis_secs: hysteresis_secs.max(0.0),
            step_fraction: 1.0,
        }
    }

    /// Spread-out variant: reinflate `step_fraction` of the free room per
    /// restitution event.
    pub fn spread(step_fraction: f64) -> Self {
        RestorePolicy {
            hysteresis_secs: 0.0,
            step_fraction: step_fraction.clamp(0.0, 1.0),
        }
    }

    /// True when this policy is exactly the greedy default (no hysteresis,
    /// full step) — the configuration whose behaviour is pinned.
    pub fn is_greedy(&self) -> bool {
        self.hysteresis_secs <= 0.0 && self.step_fraction >= 1.0
    }

    /// Short name used in experiment output.
    pub fn name(&self) -> String {
        if self.is_greedy() {
            "greedy".to_string()
        } else if self.step_fraction >= 1.0 {
            format!("hysteresis({:.0}s)", self.hysteresis_secs)
        } else if self.hysteresis_secs <= 0.0 {
            format!("spread({:.2})", self.step_fraction)
        } else {
            format!(
                "hysteresis({:.0}s)+spread({:.2})",
                self.hysteresis_secs, self.step_fraction
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_greedy() {
        assert_eq!(RestorePolicy::default(), RestorePolicy::greedy());
        assert!(RestorePolicy::default().is_greedy());
        assert_eq!(RestorePolicy::default().name(), "greedy");
    }

    #[test]
    fn variants_and_names() {
        let h = RestorePolicy::hysteresis(120.0);
        assert!(!h.is_greedy());
        assert_eq!(h.name(), "hysteresis(120s)");
        let s = RestorePolicy::spread(0.5);
        assert!(!s.is_greedy());
        assert_eq!(s.name(), "spread(0.50)");
        let both = RestorePolicy {
            hysteresis_secs: 60.0,
            step_fraction: 0.25,
        };
        assert_eq!(both.name(), "hysteresis(60s)+spread(0.25)");
        // Clamps.
        assert!(RestorePolicy::hysteresis(-5.0).is_greedy());
        assert_eq!(RestorePolicy::spread(7.0).step_fraction, 1.0);
    }
}
