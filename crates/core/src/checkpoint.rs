//! The engine snapshot byte format: a versioned, hand-rolled binary
//! encoding used by `ClusterSimulation::checkpoint` / `resume`.
//!
//! The build environment's `serde` is a marker-trait stub, so snapshots
//! are serialized by hand through [`ByteWriter`] / [`ByteReader`]. The
//! format contract:
//!
//! * Every snapshot starts with [`SNAPSHOT_MAGIC`] and a `u32`
//!   [`SNAPSHOT_VERSION`]. Readers reject other magics and versions —
//!   there is no cross-version migration; a version bump invalidates old
//!   snapshots (and the golden byte digest pinned in
//!   `tests/checkpoint_restore.rs` must be updated with it).
//! * All integers are little-endian fixed width; `usize` travels as
//!   `u64`; `f64` travels as its IEEE-754 bit pattern (`to_bits`), so
//!   values round-trip bit-exactly, including `-0.0` and infinities.
//! * Collections are length-prefixed (`u64` count). Hash maps are
//!   serialized sorted by key so snapshot bytes never depend on hash
//!   iteration order; writers with per-shard state serialize a canonical
//!   merged order so bytes are shard-count independent.
//! * No wall-clock or host-dependent value may be written: two
//!   snapshots of the same run at the same event boundary must be
//!   byte-identical across machines and across time.

use crate::resources::{ResourceKind, ResourceVector};
use crate::vm::{Priority, VmClass, VmSpec};
use std::error::Error;
use std::fmt;

/// First bytes of every snapshot: "DFL" + format generation.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"DFLS";

/// Current snapshot format version. Bump on ANY byte-format change —
/// the golden digest test will force the bump by failing otherwise.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The snapshot was written by a different format version.
    VersionMismatch {
        /// Version found in the snapshot header.
        found: u32,
        /// Version this build reads ([`SNAPSHOT_VERSION`]).
        expected: u32,
    },
    /// The buffer ended before the decoder was done.
    Truncated,
    /// The bytes decoded but described an impossible state (bad
    /// discriminant, count overflow, state inconsistent with the
    /// restoring simulation's configuration).
    Corrupt(String),
    /// Decoding finished with bytes left over.
    TrailingBytes(usize),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "snapshot does not start with the DFLS magic"),
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot format version {found} is not the supported version {expected}"
            ),
            CheckpointError::Truncated => write!(f, "snapshot ends mid-field"),
            CheckpointError::Corrupt(what) => write!(f, "snapshot is corrupt: {what}"),
            CheckpointError::TrailingBytes(n) => {
                write!(f, "snapshot has {n} unconsumed trailing bytes")
            }
        }
    }
}

impl Error for CheckpointError {}

/// Convenience alias for decode results.
pub type CheckpointResult<T> = std::result::Result<T, CheckpointError>;

/// Append-only encoder for the snapshot byte format.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer (no header).
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// A writer primed with the snapshot header (magic + version).
    pub fn with_header() -> Self {
        let mut w = ByteWriter::new();
        w.buf.extend_from_slice(&SNAPSHOT_MAGIC);
        w.put_u32(SNAPSHOT_VERSION);
        w
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Write a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as a `u64` (collection counts, indices).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Write an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Write a length-prefixed slice of `f64`s.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Write raw bytes without a length prefix (sub-encoders that carry
    /// their own structure).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Write a [`ResourceVector`] as its four components in
    /// [`ResourceKind::ALL`] order.
    pub fn put_resources(&mut self, v: &ResourceVector) {
        for kind in ResourceKind::ALL {
            self.put_f64(v[kind]);
        }
    }

    /// Write a full [`VmSpec`].
    pub fn put_vm_spec(&mut self, spec: &VmSpec) {
        self.put_u64(spec.id.0);
        self.put_u8(match spec.class {
            VmClass::Interactive => 0,
            VmClass::DelayInsensitive => 1,
            VmClass::Unknown => 2,
        });
        self.put_resources(&spec.max_allocation);
        self.put_resources(&spec.min_allocation);
        self.put_f64(spec.priority.value());
        self.put_bool(spec.deflatable);
    }
}

/// Cursor-based decoder for the snapshot byte format.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over raw bytes (no header check).
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// A reader that has validated the snapshot header (magic +
    /// version) and is positioned after it.
    pub fn with_header(buf: &'a [u8]) -> CheckpointResult<Self> {
        let mut r = ByteReader::new(buf);
        let magic = r.take(SNAPSHOT_MAGIC.len())?;
        if magic != SNAPSHOT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.get_u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(CheckpointError::VersionMismatch {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        Ok(r)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> CheckpointResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> CheckpointResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool; any byte other than 0/1 is corrupt.
    pub fn get_bool(&mut self) -> CheckpointResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CheckpointError::Corrupt(format!(
                "bool byte {other} is neither 0 nor 1"
            ))),
        }
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> CheckpointResult<u32> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> CheckpointResult<u64> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Read a `usize` written by [`ByteWriter::put_usize`].
    pub fn get_usize(&mut self) -> CheckpointResult<usize> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| CheckpointError::Corrupt(format!("count {v} overflows usize")))
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> CheckpointResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> CheckpointResult<String> {
        let len = self.get_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Corrupt("string is not UTF-8".into()))
    }

    /// Read a length-prefixed `f64` vector.
    pub fn get_f64_vec(&mut self) -> CheckpointResult<Vec<f64>> {
        let len = self.get_usize()?;
        let mut out = Vec::with_capacity(len.min(self.remaining() / 8 + 1));
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Read a [`ResourceVector`] written by [`ByteWriter::put_resources`].
    pub fn get_resources(&mut self) -> CheckpointResult<ResourceVector> {
        Ok(ResourceVector::new(
            self.get_f64()?,
            self.get_f64()?,
            self.get_f64()?,
            self.get_f64()?,
        ))
    }

    /// Read a [`VmSpec`] written by [`ByteWriter::put_vm_spec`].
    ///
    /// `Priority::new` clamps, but any priority that was *stored* in a
    /// spec is already inside the clamp range, so the round-trip is
    /// bit-exact.
    pub fn get_vm_spec(&mut self) -> CheckpointResult<VmSpec> {
        let id = crate::vm::VmId(self.get_u64()?);
        let class = match self.get_u8()? {
            0 => VmClass::Interactive,
            1 => VmClass::DelayInsensitive,
            2 => VmClass::Unknown,
            other => {
                return Err(CheckpointError::Corrupt(format!(
                    "unknown VmClass discriminant {other}"
                )))
            }
        };
        let max_allocation = self.get_resources()?;
        let min_allocation = self.get_resources()?;
        let priority = Priority::new(self.get_f64()?);
        let deflatable = self.get_bool()?;
        Ok(VmSpec {
            id,
            class,
            max_allocation,
            min_allocation,
            priority,
            deflatable,
        })
    }

    /// Assert every byte was consumed.
    pub fn finish(self) -> CheckpointResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CheckpointError::TrailingBytes(self.remaining()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_bool(false);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_usize(12345);
        w.put_f64(-0.0);
        w.put_f64(f64::INFINITY);
        w.put_f64(1.0 / 3.0);
        w.put_str("héllo");
        w.put_f64_slice(&[1.5, f64::NEG_INFINITY]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_usize().unwrap(), 12345);
        let neg_zero = r.get_f64().unwrap();
        assert_eq!(neg_zero.to_bits(), (-0.0f64).to_bits(), "-0.0 exact");
        assert_eq!(r.get_f64().unwrap(), f64::INFINITY);
        assert_eq!(r.get_f64().unwrap().to_bits(), (1.0f64 / 3.0).to_bits());
        assert_eq!(r.get_str().unwrap(), "héllo");
        let vs = r.get_f64_vec().unwrap();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0], 1.5);
        assert_eq!(vs[1], f64::NEG_INFINITY);
        r.finish().unwrap();
    }

    #[test]
    fn header_round_trip_and_rejections() {
        let bytes = ByteWriter::with_header().into_bytes();
        let r = ByteReader::with_header(&bytes).unwrap();
        r.finish().unwrap();

        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert_eq!(
            ByteReader::with_header(&bad).unwrap_err(),
            CheckpointError::BadMagic
        );

        // Wrong version.
        let mut w = ByteWriter::new();
        w.put_bytes(&SNAPSHOT_MAGIC);
        w.put_u32(SNAPSHOT_VERSION + 1);
        let newer = w.into_bytes();
        assert_eq!(
            ByteReader::with_header(&newer).unwrap_err(),
            CheckpointError::VersionMismatch {
                found: SNAPSHOT_VERSION + 1,
                expected: SNAPSHOT_VERSION,
            }
        );

        // Truncated header.
        assert_eq!(
            ByteReader::with_header(&bytes[..3]).unwrap_err(),
            CheckpointError::Truncated
        );
    }

    #[test]
    fn truncation_and_trailing_detected() {
        let mut w = ByteWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert_eq!(r.get_u64().unwrap_err(), CheckpointError::Truncated);

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u32().unwrap(), 42);
        assert_eq!(r.finish().unwrap_err(), CheckpointError::TrailingBytes(4));
    }

    #[test]
    fn vm_spec_round_trips_bit_exactly() {
        use crate::vm::{VmClass, VmId, VmSpec};
        let spec = VmSpec::deflatable(
            VmId(99),
            VmClass::DelayInsensitive,
            ResourceVector::new(4000.0, 8192.0, 100.0, 1000.0),
        )
        .with_priority(Priority::new(0.4))
        .with_priority_derived_min();
        let mut w = ByteWriter::new();
        w.put_vm_spec(&spec);
        w.put_resources(&ResourceVector::new(-0.0, f64::INFINITY, 1.0 / 3.0, 0.1));
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_vm_spec().unwrap(), spec);
        let v = r.get_resources().unwrap();
        assert_eq!(v[ResourceKind::Cpu].to_bits(), (-0.0f64).to_bits());
        assert_eq!(v[ResourceKind::Memory], f64::INFINITY);
        r.finish().unwrap();
    }

    #[test]
    fn bad_bool_byte_is_corrupt() {
        let mut w = ByteWriter::new();
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_bool().unwrap_err(),
            CheckpointError::Corrupt(_)
        ));
    }
}
