//! Checkpoint-bisection divergence diagnosis (`deflate-audit`): bisect
//! a matrix of run pairs with known ground truth — four pairs that the
//! repo's determinism contracts require to be bit-identical (sharded vs
//! sequential, telemetry on vs off, auditor on vs off, placement
//! sequential vs parallel) and one pair with an injected single-knob
//! divergence (FIFO vs smallest-first transfer ordering under contended
//! migration slots).
//!
//! Exits non-zero when an identical pair diverges (a determinism
//! regression) or the injected divergence is not localized to one
//! resolution window. CI runs this as a smoke step.
use deflate_bench::audit_exp::{audit_matrix, audit_table};
use deflate_bench::report::FigureTimer;

fn main() {
    let timer = FigureTimer::start();
    let cases = match audit_matrix() {
        Ok(cases) => cases,
        Err(err) => {
            eprintln!("deflate-audit: bisection infrastructure failed: {err}");
            std::process::exit(1);
        }
    };
    audit_table(&cases, timer).print();
    for case in &cases {
        if let Some(report) = &case.report {
            println!("{}: {report}", case.name);
        }
    }
    let failures: Vec<String> = cases.iter().flat_map(|c| c.failures()).collect();
    deflate_bench::report::append_process_footer_json("deflate_audit");
    if !failures.is_empty() {
        eprintln!("AUDIT FAILURE: {}", failures.join("; "));
        std::process::exit(1);
    }
}
