//! Reproduce the transient-capacity comparison: deflation vs preemption vs
//! migration-only under square-wave, diurnal and spot-market reclamation.
use deflate_bench::Scale;
fn main() {
    deflate_bench::transient_exp::fig_transient_table(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig_transient");
}
