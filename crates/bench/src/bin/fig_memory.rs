//! The memory-accounting run: replay the `fig_scale` spot-market
//! scenario with the metrics sink on and print the `MemoryLedger`'s
//! per-subsystem byte breakdown next to the process's procfs numbers
//! (`VmRSS` live, `VmHWM` peak over the run) at each swept cluster size
//! — the quantified before-picture for ROADMAP item 1 (streaming,
//! memory-lean engine).
//!
//! Exits non-zero when the accounting acceptance contract breaks: the
//! accounted total must cover ≥ 70 % of the run's peak RSS
//! ([`MEMORY_COVERAGE_FLOOR`](deflate_bench::memory_exp::MEMORY_COVERAGE_FLOOR))
//! and the load-bearing subsystems (workload, vm_records, servers,
//! event_queue) must all report bytes. CI runs the quick sweep — whose
//! largest row is 100k VMs — as a gating step.
use deflate_bench::memory_exp::{memory_sweep, memory_table};
use deflate_bench::Scale;

fn main() {
    let scale = Scale::from_env_and_args();
    let runs = match memory_sweep(scale) {
        Ok(runs) => runs,
        Err(err) => {
            eprintln!("fig_memory: telemetry sink setup failed: {err}");
            std::process::exit(1);
        }
    };
    let mut failures: Vec<String> = Vec::new();
    for run in &runs {
        memory_table(run).print();
        failures.extend(run.failures());
    }
    deflate_bench::report::append_process_footer_json("fig_memory");
    if !failures.is_empty() {
        eprintln!("MEMORY FAILURE: {}", failures.join("; "));
        std::process::exit(1);
    }
}
