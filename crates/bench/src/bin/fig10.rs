//! Reproduce Figure 10: memory bandwidth usage across containers.
use deflate_bench::Scale;
fn main() {
    deflate_bench::feasibility::fig10(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig10");
}
