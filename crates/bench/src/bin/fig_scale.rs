//! The engine-scaling sweep: cluster size (10k → 1M VMs) × engine shard
//! count under spot-market reclamation, reporting wall-clock, events/s,
//! peak RSS and cross-shard parity. `DEFLATE_SHARDS=1,2,4,8` overrides
//! the shard-count list; see docs/PERFORMANCE.md.
//!
//! Exits non-zero when any row diverges from the sequential baseline —
//! CI runs the quick sweep as a smoke step and relies on this to go red
//! if the sharded engine's bit-identity contract breaks at experiment
//! scale.
use deflate_bench::scale_exp::{scale_sweep, table_from_rows};
use deflate_bench::Scale;
fn main() {
    let rows = scale_sweep(Scale::from_env_and_args());
    table_from_rows(&rows).print();
    let diverged: Vec<String> = rows
        .iter()
        .filter(|r| !r.parity)
        .map(|r| format!("{} VMs @ {} shards", r.vms, r.shards))
        .collect();
    if !diverged.is_empty() {
        eprintln!(
            "PARITY FAILURE: sharded engine diverged from the sequential baseline: {}",
            diverged.join(", ")
        );
        std::process::exit(1);
    }
}
