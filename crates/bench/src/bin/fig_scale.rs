//! The engine-scaling sweep: cluster size (10k → 1M VMs) × engine shard
//! count under spot-market reclamation, reporting wall-clock, events/s,
//! peak RSS and cross-shard parity. `DEFLATE_SHARDS=1,2,4,8` overrides
//! the shard-count list; see docs/PERFORMANCE.md.
//!
//! Exits non-zero when any row diverges from the sequential baseline —
//! CI runs the quick sweep as a smoke step and relies on this to go red
//! if the sharded engine's bit-identity contract breaks at experiment
//! scale.
//!
//! Set `DEFLATE_SCALE_STATE=/path/to/file` to make the sweep
//! **resumable**: every measured cell is flushed to the state file, and
//! a re-run skips cells already recorded there — an interrupted
//! million-VM sweep picks up at the cell it died in instead of starting
//! over. Delete the file to force a fresh sweep.
use deflate_bench::scale_exp::{scale_sweep, scale_sweep_resumable, table_from_rows};
use deflate_bench::Scale;
fn main() {
    let scale = Scale::from_env_and_args();
    let rows = match std::env::var("DEFLATE_SCALE_STATE") {
        Ok(path) if !path.is_empty() => scale_sweep_resumable(scale, std::path::Path::new(&path)),
        _ => scale_sweep(scale),
    };
    table_from_rows(&rows).print();
    deflate_bench::report::append_process_footer_json("fig_scale");
    let diverged: Vec<String> = rows
        .iter()
        .filter(|r| !r.parity)
        .map(|r| format!("{} VMs @ {} shards", r.vms, r.shards))
        .collect();
    if !diverged.is_empty() {
        eprintln!(
            "PARITY FAILURE: sharded engine diverged from the sequential baseline: {}",
            diverged.join(", ")
        );
        std::process::exit(1);
    }
}
