//! Reproduce Figure 7: CPU deflation feasibility by VM memory size.
use deflate_bench::Scale;
fn main() {
    deflate_bench::feasibility::fig07(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig07");
}
