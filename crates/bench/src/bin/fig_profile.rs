//! The engine-profiling run: replay the `fig_scale` spot-market
//! scenario with the `deflate-telemetry` phase profiler on and print a
//! per-phase self-time table per cluster size — the before-picture for
//! ROADMAP item 1 (the placement-ranking bottleneck). Each run also
//! writes a Chrome `trace_event` file openable in Perfetto /
//! `chrome://tracing` (`DEFLATE_TRACE_OUT` overrides the path).
//!
//! Exits non-zero when the observability acceptance contract breaks:
//! attributed phases must cover ≥ 90 % of the engine total,
//! `placement_rank` must be separately attributed, the combined
//! `placement_rank` + `placement_index` self-time share must stay below
//! the 40 % ceiling (the incremental-placement regression gate), and the
//! written trace must validate (parseable JSON array, matched begin/end
//! pairs). CI runs the quick profile as a smoke step and relies on this.
use deflate_bench::profile_exp::{phase_table, profile_sweep, shard_table};
use deflate_bench::Scale;

fn main() {
    let scale = Scale::from_env_and_args();
    let runs = match profile_sweep(scale) {
        Ok(runs) => runs,
        Err(err) => {
            eprintln!("fig_profile: telemetry sink setup failed: {err}");
            std::process::exit(1);
        }
    };
    let mut failures: Vec<String> = Vec::new();
    for run in &runs {
        phase_table(run).print();
        let shards = shard_table(run);
        if !shards.is_empty() {
            shards.print();
        }
        println!("trace: {}", run.trace_path.display());
        failures.extend(run.failures());
    }
    deflate_bench::report::append_process_footer_json("fig_profile");
    if !failures.is_empty() {
        eprintln!("PROFILE FAILURE: {}", failures.join("; "));
        std::process::exit(1);
    }
}
