//! Reproduce Figure 5: CPU deflation feasibility across all VMs.
use deflate_bench::Scale;
fn main() {
    deflate_bench::feasibility::fig05(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig05");
}
