//! Reproduce Figure 12: network bandwidth deflation feasibility.
use deflate_bench::Scale;
fn main() {
    deflate_bench::feasibility::fig12(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig12");
}
