//! Reproduce Figure 18: social-network microservice response times.
use deflate_bench::Scale;
fn main() {
    deflate_bench::web::fig18_table(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig18");
}
