//! Reproduce Figure 22: increase in cloud revenue from deflatable VMs.
use deflate_bench::Scale;
fn main() {
    deflate_bench::cluster_exp::fig22_table(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig22");
}
