//! Reproduce Figure 21: throughput decrease of deflatable VMs vs overcommitment.
use deflate_bench::Scale;
fn main() {
    deflate_bench::cluster_exp::fig21_table(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig21");
}
