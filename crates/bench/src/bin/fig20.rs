//! Reproduce Figure 20: reclamation-failure probability vs overcommitment.
use deflate_bench::Scale;
fn main() {
    deflate_bench::cluster_exp::fig20_table(Scale::from_env_and_args()).print();
}
