//! Reproduce Figure 20: reclamation-failure probability vs overcommitment.
use deflate_bench::Scale;
fn main() {
    deflate_bench::cluster_exp::fig20_table(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig20");
}
