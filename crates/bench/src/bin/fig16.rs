//! Reproduce Figure 16: Wikipedia response times with CPU deflation.
use deflate_bench::Scale;
fn main() {
    deflate_bench::web::fig16(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig16");
}
