//! Reproduce Figure 8: CPU deflation feasibility by 95th-percentile CPU usage.
use deflate_bench::Scale;
fn main() {
    deflate_bench::feasibility::fig08(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig08");
}
