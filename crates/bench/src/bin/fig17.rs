//! Reproduce Figure 17: fraction of Wikipedia requests served vs deflation.
use deflate_bench::Scale;
fn main() {
    deflate_bench::web::fig17(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig17");
}
