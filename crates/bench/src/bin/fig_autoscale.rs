//! Sweep autoscaling policy × capacity signal (diurnal harvesting,
//! spot-market revocations): deflation-aware elasticity — park deflated
//! replicas on scale-in, reinflate them instantly on scale-out — against
//! launch-only target tracking, on response latency and replicas lost.
use deflate_bench::Scale;
fn main() {
    deflate_bench::autoscale_exp::fig_autoscale_table(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig_autoscale");
}
