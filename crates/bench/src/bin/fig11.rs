//! Reproduce Figure 11: disk bandwidth deflation feasibility.
use deflate_bench::Scale;
fn main() {
    deflate_bench::feasibility::fig11(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig11");
}
