//! Reproduce Figure 6: CPU deflation feasibility by workload class.
use deflate_bench::Scale;
fn main() {
    deflate_bench::feasibility::fig06(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig06");
}
