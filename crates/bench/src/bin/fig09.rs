//! Reproduce Figure 9: memory usage of applications (Alibaba containers).
use deflate_bench::Scale;
fn main() {
    deflate_bench::feasibility::fig09(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig09");
}
