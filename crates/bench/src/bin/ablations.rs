//! Run the placement / partition / mechanism ablation studies.
use deflate_bench::Scale;
fn main() {
    let scale = Scale::from_env_and_args();
    deflate_bench::ablation::placement_ablation(scale).print();
    deflate_bench::ablation::partition_ablation(scale).print();
    deflate_bench::ablation::mechanism_ablation().print();
    deflate_bench::report::append_process_footer_json("ablations");
}
