//! Reproduce Figure 14: SpecJBB response time under transparent vs hybrid
//! memory deflation.
fn main() {
    deflate_bench::apps_exp::fig14().print();
    deflate_bench::report::append_process_footer_json("fig14");
}
