//! Reproduce Figure 14: SpecJBB response time under transparent vs hybrid
//! memory deflation.
fn main() {
    deflate_bench::apps_exp::fig14().print();
}
