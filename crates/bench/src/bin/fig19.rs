//! Reproduce Figure 19: deflation-aware vs vanilla load balancing.
use deflate_bench::Scale;
fn main() {
    deflate_bench::web::fig19_table(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig19");
}
