//! Sweep the per-server migration-bandwidth budget under spot-market
//! reclamation: deflation vs migration-only, showing how finite bandwidth
//! turns "free" migrations into deadline aborts and evictions.
use deflate_bench::Scale;
fn main() {
    deflate_bench::transient_exp::bandwidth_sweep_table(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig_bandwidth_sweep");
}
