//! The what-if meta-scheduler: at each burst of capacity reclamations,
//! checkpoint the engine, fork the snapshot under every transfer policy,
//! score the full-horizon counterfactuals and commit the winner — model-
//! predictive control over the engine's own checkpoint/fork machinery.
//! Prints the decision log and the comparison against every static
//! policy; see docs/EXPERIMENTS.md.
//!
//! Exits non-zero if the meta-scheduled trajectory scores worse than the
//! static FIFO policy the loop starts from — by construction that can
//! only happen when a restored fork diverges from the run it was forked
//! off, i.e. when the checkpoint contract breaks.
use deflate_bench::whatif_exp::{score, whatif_decision_table, whatif_mpc, whatif_summary_table};
use deflate_bench::Scale;
fn main() {
    let outcome = whatif_mpc(Scale::from_env_and_args());
    whatif_decision_table(&outcome).print();
    whatif_summary_table(&outcome).print();
    deflate_bench::report::append_process_footer_json("fig_whatif");
    let fifo_static = &outcome.statics[0];
    if score(&outcome.mpc) > score(&fifo_static.1) {
        eprintln!(
            "WHATIF FAILURE: meta-scheduler lost to its static start policy \
             ({:?} > {:?}) — fork/restore is no longer bit-faithful",
            score(&outcome.mpc),
            score(&fifo_static.1)
        );
        std::process::exit(1);
    }
}
