//! Regenerate every figure of the paper in one run.
//!
//! Usage: `cargo run --release -p deflate-bench --bin all_figures [quick|full]`
use deflate_bench::Scale;
fn main() {
    deflate_bench::print_all(Scale::from_env_and_args());
    deflate_bench::report::append_process_footer_json("all_figures");
}
