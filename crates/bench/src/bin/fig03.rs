//! Reproduce Figure 3: application performance under uniform deflation.
fn main() {
    deflate_bench::apps_exp::fig03().print();
    deflate_bench::report::append_process_footer_json("fig03");
}
