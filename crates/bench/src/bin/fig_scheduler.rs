//! Sweep transfer-scheduling policy × per-server bandwidth budget under
//! spot-market reclamation: FIFO vs smallest-first vs deadline-aware EDF
//! (with admission control and deflate-then-migrate), showing EDF cutting
//! migration aborts at tight budgets.
use deflate_bench::Scale;
fn main() {
    deflate_bench::transient_exp::scheduler_sweep_table(Scale::from_env_and_args()).print();
    deflate_bench::report::append_process_footer_json("fig_scheduler");
}
