//! The engine-scaling experiment (`fig_scale`): cluster size × shard
//! count under spot-market reclamation.
//!
//! Every other experiment here asks what a *policy* does to the workload;
//! this one asks what the workload does to the **simulator** — the
//! question behind the roadmap's "million-VM traces, as fast as the
//! hardware allows". For each cluster size (10k → 1M VMs, synthetic
//! spot-market reclamation across every server) the sweep replays the
//! identical run under each engine shard count and reports wall-clock
//! time, delivered events, engine throughput (events/s), the process's
//! peak RSS, and a **parity** column checking the sharded run against the
//! 1-shard baseline of the same size — the determinism contract of
//! `docs/PERFORMANCE.md`, spot-checked at experiment scale on every row.
//!
//! The run deliberately measures the engine, not placement finesse:
//! first-fit placement (O(cluster) per arrival like the other policies,
//! but with an early exit), proportional deflation with the default
//! migration cost model, migrate-back on restitution, utilisation ticks
//! every 15 simulated minutes.
//!
//! Peak RSS is read from `/proc/self/status` (`VmHWM`) and is a
//! *process-wide high-water mark*: it can only grow across rows, so the
//! number is attributable to a row only the first time it increases.
//! On non-Linux hosts the column prints `n/a`.

use crate::report::{secs, RuntimeTally, Table, TallyRunStats};
use crate::scale::Scale;
use deflate_cluster::manager::{ClusterConfig, PlacementKind, ReclamationMode};
use deflate_cluster::metrics::SimResult;
use deflate_cluster::sim::ClusterSimulation;
use deflate_cluster::spec::{
    paper_server_capacity, servers_for_transient_overcommitment, workload_from_azure,
    MinAllocationRule, WorkloadVm,
};
use deflate_core::placement::{PartitionScheme, PlacementEngine};
use deflate_core::policy::ProportionalDeflation;
use deflate_core::shard::ShardConfig;
use deflate_hypervisor::domain::DeflationMechanism;
use deflate_hypervisor::migration::MigrationCostModel;
use deflate_telemetry::TelemetrySink;
use deflate_traces::azure::{AzureTraceConfig, AzureTraceGenerator};
use deflate_transient::signal::{CapacityProfile, CapacitySchedule, TransientConfig};
use std::sync::Arc;

/// One measured row of the scaling sweep.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// VMs in the replayed trace.
    pub vms: usize,
    /// Servers the cluster was sized to.
    pub servers: usize,
    /// Engine shard count the run used.
    pub shards: usize,
    /// Events the engine delivered (deterministic per size).
    pub events: u64,
    /// Wall-clock duration of the run, seconds.
    pub wall_clock_secs: f64,
    /// Engine throughput, events per wall-clock second.
    pub events_per_sec: f64,
    /// Process peak RSS after the run, MiB (`None` off Linux).
    pub peak_rss_mib: Option<f64>,
    /// Whether this run's deterministic outputs matched the 1-shard
    /// baseline of the same cluster size.
    pub parity: bool,
}

/// The placement-ranking engine the sweep runs every cell under:
/// sequential (the bit-identity-pinned default), unless the
/// `DEFLATE_PLACEMENT_WORKERS` environment variable asks for the parallel
/// fan-out with that many workers (e.g. `DEFLATE_PLACEMENT_WORKERS=4`).
/// When the override is active the sweep's parity baseline is always an
/// explicit sequential-engine run, so the parity column doubles as an
/// at-scale spot check that the engine knob never changes results.
pub fn sweep_placement_engine() -> PlacementEngine {
    match std::env::var("DEFLATE_PLACEMENT_WORKERS") {
        Ok(value) => match value.trim().parse::<usize>() {
            Ok(workers) => PlacementEngine::parallel(workers),
            Err(_) => PlacementEngine::default(),
        },
        Err(_) => PlacementEngine::default(),
    }
}

/// The shard counts the sweep runs each size under: the scale preset's
/// list, unless the `DEFLATE_SHARDS` environment variable overrides it
/// with a comma-separated list (e.g. `DEFLATE_SHARDS=1,2,4,8`).
pub fn sweep_shard_counts(scale: Scale) -> Vec<usize> {
    if let Ok(value) = std::env::var("DEFLATE_SHARDS") {
        let parsed: Vec<usize> = value
            .split(',')
            .filter_map(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    scale.scale_sweep_shards().to_vec()
}

/// The `fig_scale` workload at one cluster size: a synthetic Azure-derived
/// trace over the (deliberately short) scaling-trace horizon.
pub fn scale_workload(scale: Scale, num_vms: usize) -> Vec<WorkloadVm> {
    let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
        num_vms,
        duration_hours: scale.scale_trace_hours(),
        seed: scale.seed(),
        ..Default::default()
    });
    workload_from_azure(&traces, MinAllocationRule::None)
}

/// Run one (size, shard-count) cell: deflation mode, first-fit placement,
/// spot-market reclamation on every server, default migration cost,
/// migrate-back, 15-minute utilisation ticks. Returns the full result so
/// callers can both report throughput and check cross-shard parity.
pub fn run_scale_cell(
    workload: &[WorkloadVm],
    scale: Scale,
    shards: ShardConfig,
) -> (SimResult, usize) {
    run_scale_cell_with_telemetry(workload, scale, shards, TelemetrySink::disabled())
}

/// [`run_scale_cell`] observed through a telemetry sink — the engine run
/// behind `fig_profile`'s per-phase table. The sink never changes the
/// result (the standing `deflate-telemetry` contract).
pub fn run_scale_cell_with_telemetry(
    workload: &[WorkloadVm],
    scale: Scale,
    shards: ShardConfig,
    telemetry: TelemetrySink,
) -> (SimResult, usize) {
    run_scale_cell_placed(
        workload,
        scale,
        shards,
        PlacementEngine::default(),
        telemetry,
    )
}

/// [`run_scale_cell_with_telemetry`] with an explicit placement-ranking
/// engine — the fully-parameterised cell, used by the sweep when
/// `DEFLATE_PLACEMENT_WORKERS` is set and by the engine-parity tests.
pub fn run_scale_cell_placed(
    workload: &[WorkloadVm],
    scale: Scale,
    shards: ShardConfig,
    engine: PlacementEngine,
    telemetry: TelemetrySink,
) -> (SimResult, usize) {
    let capacity = paper_server_capacity();
    let profile = CapacityProfile::spot_market_default();
    let servers =
        servers_for_transient_overcommitment(workload, capacity, 0.0, profile.mean_availability());
    let schedule = CapacitySchedule::generate(&TransientConfig {
        num_servers: servers,
        transient_fraction: 1.0,
        duration_secs: scale.scale_trace_hours() * 3600.0,
        profile,
        seed: scale.seed(),
    });
    let config = ClusterConfig {
        num_servers: servers,
        server_capacity: capacity,
        placement: PlacementKind::FirstFit,
        partitions: PartitionScheme::None,
        mechanism: DeflationMechanism::Transparent,
    };
    let result = ClusterSimulation::new(
        config,
        ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
    )
    .with_capacity_schedule(schedule)
    .with_migrate_back(true)
    .with_migration_cost(
        MigrationCostModel::lan_default()
            .with_budget_mbps(1250.0)
            .with_deadline_secs(30.0),
    )
    .with_utilization_ticks(900.0)
    .with_shards(shards)
    .with_placement_engine(engine)
    .with_telemetry(telemetry)
    .run(workload);
    (result, servers)
}

/// The deterministic outputs two runs of the same size must agree on.
/// `SimResult`'s own equality covers the full per-VM record vectors too;
/// the sweep compares through this digest instead so the 1-shard baseline
/// of a million-VM size does not have to stay resident while the other
/// shard counts run. The full bit-identity (records included) is pinned
/// at quick scale by `tests/shard_parity.rs`.
fn digest(result: &SimResult) -> impl PartialEq + std::fmt::Debug {
    (
        result.counters,
        result.transient,
        result.scheduler,
        result.runtime.events_processed,
        result.migrations.len(),
        result.failure_probability().to_bits(),
        result.mean_throughput_loss().to_bits(),
        result
            .utilization
            .iter()
            .map(|&(t, u)| (t.to_bits(), u.to_bits()))
            .collect::<Vec<_>>(),
    )
}

/// Run the full sweep: every cluster size of the scale preset × every
/// shard count of [`sweep_shard_counts`].
pub fn scale_sweep(scale: Scale) -> Vec<ScaleRow> {
    let shard_counts = sweep_shard_counts(scale);
    let engine = sweep_placement_engine();
    let mut rows = Vec::new();
    for &vms in scale.scale_sweep_vms() {
        let workload = scale_workload(scale, vms);
        // Parity baseline: the *sequential* engine's digest. Both presets
        // sweep shards = 1 first, so this is normally the first cell; a
        // `DEFLATE_SHARDS` override without a 1 — or a parallel
        // `DEFLATE_PLACEMENT_WORKERS` override — pays one extra unreported
        // sequential run per size. The column promises a comparison
        // against the fully sequential engine (1 shard, sequential
        // placement ranking), not against whichever cell happened to run
        // first.
        let mut baseline_digest = if shard_counts.first() == Some(&1) && !engine.is_parallel() {
            None
        } else {
            let (baseline, _) = run_scale_cell(&workload, scale, ShardConfig::sequential());
            Some(digest(&baseline))
        };
        for &shards in &shard_counts {
            let (result, servers) = run_scale_cell_placed(
                &workload,
                scale,
                ShardConfig::with_shards(shards),
                engine,
                TelemetrySink::disabled(),
            );
            let this_digest = digest(&result);
            let parity = match &baseline_digest {
                None => {
                    // First cell of the preset sweep: shards == 1 itself.
                    baseline_digest = Some(this_digest);
                    true
                }
                Some(base) => *base == this_digest,
            };
            rows.push(ScaleRow {
                vms,
                servers,
                shards,
                events: result.runtime.events_processed,
                wall_clock_secs: result.runtime.wall_clock_secs,
                events_per_sec: result.runtime.events_per_sec(),
                peak_rss_mib: peak_rss_mib(),
                parity,
            });
        }
    }
    rows
}

/// The sweep as a printable table.
pub fn scale_sweep_table(scale: Scale) -> Table {
    table_from_rows(&scale_sweep(scale))
}

/// Render already-measured sweep rows as the `fig_scale` table. Split
/// from [`scale_sweep_table`] so the binary can inspect the rows'
/// parity flags and fail (non-zero exit) on divergence instead of only
/// printing `DIVERGED` — CI runs the quick sweep as a smoke step and
/// must go red when the sharded engine stops matching the sequential
/// baseline at experiment scale.
pub fn table_from_rows(rows: &[ScaleRow]) -> Table {
    let mut table = Table::new(
        "Engine scaling: cluster size x shard count under spot-market reclamation",
        &[
            "VMs",
            "servers",
            "shards",
            "events",
            "wall-clock",
            "events/s",
            "peak RSS MiB",
            "parity",
        ],
    );
    let mut tally = RuntimeTally::default();
    for row in rows {
        tally.add(deflate_cluster::metrics::RunStats {
            wall_clock_secs: row.wall_clock_secs,
            events_processed: row.events,
            shards: row.shards,
        });
        table.row(&[
            row.vms.to_string(),
            row.servers.to_string(),
            row.shards.to_string(),
            row.events.to_string(),
            secs(row.wall_clock_secs),
            format!("{:.0}", row.events_per_sec),
            row.peak_rss_mib
                .map_or_else(|| "n/a".to_string(), |mib| format!("{mib:.0}")),
            if row.parity { "ok" } else { "DIVERGED" }.to_string(),
        ]);
    }
    table.set_footer(tally.footer());
    table
}

/// The process's peak resident-set size in MiB — the shared
/// `deflate-telemetry` reader, which (unlike the original local copy)
/// degrades to `None` on a missing, unparseable, or zero `VmHWM` rather
/// than reporting a bogus value.
pub use deflate_telemetry::peak_rss_mib;

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature sweep (not the CI smoke — that runs the real quick
    /// preset as its own workflow step) checking the row structure and the
    /// cross-shard parity digest end to end.
    #[test]
    fn mini_sweep_rows_are_consistent_and_parity_holds() {
        let workload = scale_workload(Scale::Quick, 400);
        let (sequential, servers) =
            run_scale_cell(&workload, Scale::Quick, ShardConfig::sequential());
        let (sharded, servers_2) =
            run_scale_cell(&workload, Scale::Quick, ShardConfig::with_shards(2));
        assert_eq!(servers, servers_2);
        assert!(servers > 0);
        assert!(sequential.runtime.events_processed > 2 * 400);
        assert_eq!(sequential, sharded, "2-shard run diverged");
        assert_eq!(
            sequential.transient.reclaim_events,
            sharded.transient.reclaim_events
        );
        assert!(
            sequential.transient.reclaim_events > 0,
            "spot-market must reclaim"
        );
    }

    #[test]
    fn shard_count_override_parses() {
        // No env manipulation (tests run in parallel): exercise the preset
        // path only.
        let counts = Scale::Quick.scale_sweep_shards();
        assert_eq!(counts, &[1, 2]);
        assert_eq!(Scale::Full.scale_sweep_shards(), &[1, 2, 4, 8]);
        assert!(Scale::Quick.scale_sweep_vms().contains(&100_000));
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        // On the Linux CI hosts this must produce a positive number; on
        // other platforms None is acceptable.
        if cfg!(target_os = "linux") {
            let rss = peak_rss_mib().expect("VmHWM available on Linux");
            assert!(rss > 1.0);
        }
    }
}
