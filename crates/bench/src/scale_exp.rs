//! The engine-scaling experiment (`fig_scale`): cluster size × shard
//! count under spot-market reclamation.
//!
//! Every other experiment here asks what a *policy* does to the workload;
//! this one asks what the workload does to the **simulator** — the
//! question behind the roadmap's "million-VM traces, as fast as the
//! hardware allows". For each cluster size (10k → 1M VMs, synthetic
//! spot-market reclamation across every server) the sweep replays the
//! identical run under each engine shard count and reports wall-clock
//! time, delivered events, engine throughput (events/s), the process's
//! peak RSS, and a **parity** column checking the sharded run against the
//! 1-shard baseline of the same size — the determinism contract of
//! `docs/PERFORMANCE.md`, spot-checked at experiment scale on every row.
//!
//! The run deliberately measures the engine, not placement finesse:
//! first-fit placement (O(cluster) per arrival like the other policies,
//! but with an early exit), proportional deflation with the default
//! migration cost model, migrate-back on restitution, utilisation ticks
//! every 15 simulated minutes.
//!
//! Peak RSS is read from `/proc/self/status` (`VmHWM`) and is a
//! *process-wide high-water mark*: it can only grow across rows, so the
//! number is attributable to a row only the first time it increases.
//! On non-Linux hosts the column prints `n/a`.

use crate::report::{secs, RuntimeTally, Table, TallyRunStats};
use crate::scale::Scale;
use deflate_cluster::manager::{ClusterConfig, PlacementKind, ReclamationMode};
use deflate_cluster::metrics::SimResult;
use deflate_cluster::sim::ClusterSimulation;
use deflate_cluster::spec::{
    paper_server_capacity, servers_for_transient_overcommitment, workload_from_azure,
    MinAllocationRule, WorkloadVm,
};
use deflate_core::audit::AuditSpec;
use deflate_core::checkpoint::{ByteReader, ByteWriter, CheckpointError, CheckpointResult};
use deflate_core::placement::{PartitionScheme, PlacementEngine};
use deflate_core::policy::ProportionalDeflation;
use deflate_core::shard::ShardConfig;
use deflate_hypervisor::domain::DeflationMechanism;
use deflate_hypervisor::migration::MigrationCostModel;
use deflate_telemetry::TelemetrySink;
use deflate_traces::azure::{AzureTraceConfig, AzureTraceGenerator};
use deflate_transient::signal::{CapacityProfile, CapacitySchedule, TransientConfig};
use std::fs;
use std::path::Path;
use std::sync::Arc;

/// One measured row of the scaling sweep.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// VMs in the replayed trace.
    pub vms: usize,
    /// Servers the cluster was sized to.
    pub servers: usize,
    /// Engine shard count the run used.
    pub shards: usize,
    /// Events the engine delivered (deterministic per size).
    pub events: u64,
    /// Wall-clock duration of the run, seconds.
    pub wall_clock_secs: f64,
    /// Engine throughput, events per wall-clock second.
    pub events_per_sec: f64,
    /// Process peak RSS after the run, MiB (`None` off Linux).
    pub peak_rss_mib: Option<f64>,
    /// Whether this run's deterministic outputs matched the 1-shard
    /// baseline of the same cluster size.
    pub parity: bool,
}

/// The placement-ranking engine the sweep runs every cell under:
/// sequential (the bit-identity-pinned default), unless the
/// `DEFLATE_PLACEMENT_WORKERS` environment variable asks for the parallel
/// fan-out with that many workers (e.g. `DEFLATE_PLACEMENT_WORKERS=4`).
/// When the override is active the sweep's parity baseline is always an
/// explicit sequential-engine run, so the parity column doubles as an
/// at-scale spot check that the engine knob never changes results.
pub fn sweep_placement_engine() -> PlacementEngine {
    match std::env::var("DEFLATE_PLACEMENT_WORKERS") {
        Ok(value) => match value.trim().parse::<usize>() {
            Ok(workers) => PlacementEngine::parallel(workers),
            Err(_) => PlacementEngine::default(),
        },
        Err(_) => PlacementEngine::default(),
    }
}

/// The shard counts the sweep runs each size under: the scale preset's
/// list, unless the `DEFLATE_SHARDS` environment variable overrides it
/// with a comma-separated list (e.g. `DEFLATE_SHARDS=1,2,4,8`).
pub fn sweep_shard_counts(scale: Scale) -> Vec<usize> {
    if let Ok(value) = std::env::var("DEFLATE_SHARDS") {
        let parsed: Vec<usize> = value
            .split(',')
            .filter_map(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    scale.scale_sweep_shards().to_vec()
}

/// The `fig_scale` workload at one cluster size: a synthetic Azure-derived
/// trace over the (deliberately short) scaling-trace horizon.
pub fn scale_workload(scale: Scale, num_vms: usize) -> Vec<WorkloadVm> {
    let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
        num_vms,
        duration_hours: scale.scale_trace_hours(),
        seed: scale.seed(),
        ..Default::default()
    });
    workload_from_azure(&traces, MinAllocationRule::None)
}

/// Run one (size, shard-count) cell: deflation mode, first-fit placement,
/// spot-market reclamation on every server, default migration cost,
/// migrate-back, 15-minute utilisation ticks. Returns the full result so
/// callers can both report throughput and check cross-shard parity.
pub fn run_scale_cell(
    workload: &[WorkloadVm],
    scale: Scale,
    shards: ShardConfig,
) -> (SimResult, usize) {
    run_scale_cell_with_telemetry(workload, scale, shards, TelemetrySink::disabled())
}

/// [`run_scale_cell`] observed through a telemetry sink — the engine run
/// behind `fig_profile`'s per-phase table. The sink never changes the
/// result (the standing `deflate-telemetry` contract).
pub fn run_scale_cell_with_telemetry(
    workload: &[WorkloadVm],
    scale: Scale,
    shards: ShardConfig,
    telemetry: TelemetrySink,
) -> (SimResult, usize) {
    run_scale_cell_placed(
        workload,
        scale,
        shards,
        PlacementEngine::default(),
        telemetry,
    )
}

/// [`run_scale_cell_with_telemetry`] with an explicit placement-ranking
/// engine — used by the sweep when `DEFLATE_PLACEMENT_WORKERS` is set
/// and by the engine-parity tests.
pub fn run_scale_cell_placed(
    workload: &[WorkloadVm],
    scale: Scale,
    shards: ShardConfig,
    engine: PlacementEngine,
    telemetry: TelemetrySink,
) -> (SimResult, usize) {
    run_scale_cell_configured(workload, scale, shards, engine, telemetry, AuditSpec::off())
}

/// [`run_scale_cell`] with the online invariant auditor on — the run
/// behind the auditor determinism pins (`tests/telemetry_determinism.rs`
/// and `tests/shard_parity.rs`): every checker is strictly read-only, so
/// the result must stay bit-identical to the unaudited baseline at any
/// shard count, or the run panics on the first violated invariant.
pub fn run_scale_cell_audited(
    workload: &[WorkloadVm],
    scale: Scale,
    shards: ShardConfig,
    audit: AuditSpec,
) -> (SimResult, usize) {
    run_scale_cell_configured(
        workload,
        scale,
        shards,
        PlacementEngine::default(),
        TelemetrySink::disabled(),
        audit,
    )
}

/// The fully-parameterised cell behind every `run_scale_cell*` variant.
pub fn run_scale_cell_configured(
    workload: &[WorkloadVm],
    scale: Scale,
    shards: ShardConfig,
    engine: PlacementEngine,
    telemetry: TelemetrySink,
    audit: AuditSpec,
) -> (SimResult, usize) {
    let capacity = paper_server_capacity();
    let profile = CapacityProfile::spot_market_default();
    let servers =
        servers_for_transient_overcommitment(workload, capacity, 0.0, profile.mean_availability());
    let schedule = CapacitySchedule::generate(&TransientConfig {
        num_servers: servers,
        transient_fraction: 1.0,
        duration_secs: scale.scale_trace_hours() * 3600.0,
        profile,
        seed: scale.seed(),
    });
    let config = ClusterConfig {
        num_servers: servers,
        server_capacity: capacity,
        placement: PlacementKind::FirstFit,
        partitions: PartitionScheme::None,
        mechanism: DeflationMechanism::Transparent,
    };
    let result = ClusterSimulation::new(
        config,
        ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
    )
    .with_capacity_schedule(schedule)
    .with_migrate_back(true)
    .with_migration_cost(
        MigrationCostModel::lan_default()
            .with_budget_mbps(1250.0)
            .with_deadline_secs(30.0),
    )
    .with_utilization_ticks(900.0)
    .with_shards(shards)
    .with_placement_engine(engine)
    .with_telemetry(telemetry)
    .with_audit(audit)
    .run(workload);
    (result, servers)
}

/// The deterministic outputs two runs of the same size must agree on.
/// `SimResult`'s own equality covers the full per-VM record vectors too;
/// the sweep compares through this digest instead so the 1-shard baseline
/// of a million-VM size does not have to stay resident while the other
/// shard counts run. The full bit-identity (records included) is pinned
/// at quick scale by `tests/shard_parity.rs`.
fn digest(result: &SimResult) -> impl PartialEq + std::fmt::Debug {
    (
        result.counters,
        result.transient,
        result.scheduler,
        result.runtime.events_processed,
        result.migrations.len(),
        result.failure_probability().to_bits(),
        result.mean_throughput_loss().to_bits(),
        result
            .utilization
            .iter()
            .map(|&(t, u)| (t.to_bits(), u.to_bits()))
            .collect::<Vec<_>>(),
    )
}

/// Run the full sweep: every cluster size of the scale preset × every
/// shard count of [`sweep_shard_counts`].
pub fn scale_sweep(scale: Scale) -> Vec<ScaleRow> {
    scale_sweep_with_resume(scale, Vec::new(), |_| {})
}

/// [`scale_sweep`] with **row-level resume**: cells already present in
/// `done` (matched on `(vms, shards)`) are skipped — a fully measured
/// cluster size does not even rebuild its workload — and `flush` is
/// called with the cumulative row set after every newly measured cell,
/// so an interrupted sweep loses at most the cell it was inside.
/// [`scale_sweep_resumable`] wires this to an on-disk state file.
///
/// Resuming into a *partially* measured size re-runs the unreported
/// sequential baseline for that size (the parity digest is deliberately
/// not persisted — it is a full `SimResult` tuple, and re-deriving it
/// keeps the state file small and version-stable). Returned rows are
/// sorted by `(vms, shards)`, the preset's own order.
pub fn scale_sweep_with_resume(
    scale: Scale,
    done: Vec<ScaleRow>,
    mut flush: impl FnMut(&[ScaleRow]),
) -> Vec<ScaleRow> {
    let shard_counts = sweep_shard_counts(scale);
    let engine = sweep_placement_engine();
    let mut rows = done;
    for &vms in scale.scale_sweep_vms() {
        let have = |rows: &[ScaleRow], shards: usize| {
            rows.iter().any(|r| r.vms == vms && r.shards == shards)
        };
        if shard_counts.iter().all(|&s| have(&rows, s)) {
            continue;
        }
        let workload = scale_workload(scale, vms);
        // Parity baseline: the *sequential* engine's digest. Both presets
        // sweep shards = 1 first, so this is normally the first cell; a
        // `DEFLATE_SHARDS` override without a 1, a parallel
        // `DEFLATE_PLACEMENT_WORKERS` override, or a resume into a
        // partially measured size pays one extra unreported sequential
        // run. The column promises a comparison against the fully
        // sequential engine (1 shard, sequential placement ranking), not
        // against whichever cell happened to run first.
        let all_fresh = shard_counts.iter().all(|&s| !have(&rows, s));
        let mut baseline_digest =
            if all_fresh && shard_counts.first() == Some(&1) && !engine.is_parallel() {
                None
            } else {
                let (baseline, _) = run_scale_cell(&workload, scale, ShardConfig::sequential());
                Some(digest(&baseline))
            };
        for &shards in &shard_counts {
            if have(&rows, shards) {
                continue;
            }
            let (result, servers) = run_scale_cell_placed(
                &workload,
                scale,
                ShardConfig::with_shards(shards),
                engine,
                TelemetrySink::disabled(),
            );
            let this_digest = digest(&result);
            let parity = match &baseline_digest {
                None => {
                    // First cell of the preset sweep: shards == 1 itself.
                    baseline_digest = Some(this_digest);
                    true
                }
                Some(base) => *base == this_digest,
            };
            rows.push(ScaleRow {
                vms,
                servers,
                shards,
                events: result.runtime.events_processed,
                wall_clock_secs: result.runtime.wall_clock_secs,
                events_per_sec: result.runtime.events_per_sec(),
                peak_rss_mib: peak_rss_mib(),
                parity,
            });
            flush(&rows);
        }
    }
    rows.sort_by_key(|r| (r.vms, r.shards));
    rows
}

/// Run the sweep resumably against an on-disk state file: rows measured
/// by a previous (possibly interrupted or killed) invocation are loaded
/// from `state_path` and skipped, and every newly measured cell is
/// flushed back atomically (write-to-temp + rename). A re-run over a
/// complete state file measures nothing and just reprints the table. An
/// unreadable or stale-format state file is discarded and the sweep
/// starts over — the file is a cache, never a source of truth.
pub fn scale_sweep_resumable(scale: Scale, state_path: &Path) -> Vec<ScaleRow> {
    let done = match fs::read(state_path) {
        Ok(bytes) => rows_from_bytes(&bytes).unwrap_or_default(),
        Err(_) => Vec::new(),
    };
    scale_sweep_with_resume(scale, done, |rows| {
        let tmp = state_path.with_extension("tmp");
        if fs::write(&tmp, rows_to_bytes(rows)).is_ok() {
            let _ = fs::rename(&tmp, state_path);
        }
    })
}

/// Serialize measured sweep rows for the resumable state file, using the
/// engine checkpoint's versioned little-endian byte conventions (shared
/// magic + format version, so a format change requires the same version
/// bump the snapshot golden test enforces). A tag string distinguishes
/// the row file from an engine snapshot.
pub fn rows_to_bytes(rows: &[ScaleRow]) -> Vec<u8> {
    let mut w = ByteWriter::with_header();
    w.put_str(SCALE_ROWS_TAG);
    w.put_usize(rows.len());
    for row in rows {
        w.put_usize(row.vms);
        w.put_usize(row.servers);
        w.put_usize(row.shards);
        w.put_u64(row.events);
        w.put_f64(row.wall_clock_secs);
        w.put_f64(row.events_per_sec);
        w.put_bool(row.peak_rss_mib.is_some());
        if let Some(mib) = row.peak_rss_mib {
            w.put_f64(mib);
        }
        w.put_bool(row.parity);
    }
    w.into_bytes()
}

/// Rebuild sweep rows from [`rows_to_bytes`] bytes.
pub fn rows_from_bytes(bytes: &[u8]) -> CheckpointResult<Vec<ScaleRow>> {
    let mut r = ByteReader::with_header(bytes)?;
    let tag = r.get_str()?;
    if tag != SCALE_ROWS_TAG {
        return Err(CheckpointError::Corrupt(format!(
            "not a fig_scale row file (tag `{tag}`)"
        )));
    }
    let len = r.get_usize()?;
    let mut rows = Vec::with_capacity(len.min(1024));
    for _ in 0..len {
        rows.push(ScaleRow {
            vms: r.get_usize()?,
            servers: r.get_usize()?,
            shards: r.get_usize()?,
            events: r.get_u64()?,
            wall_clock_secs: r.get_f64()?,
            events_per_sec: r.get_f64()?,
            peak_rss_mib: if r.get_bool()? {
                Some(r.get_f64()?)
            } else {
                None
            },
            parity: r.get_bool()?,
        });
    }
    r.finish()?;
    Ok(rows)
}

/// Discriminator string of the resumable-sweep state file.
const SCALE_ROWS_TAG: &str = "fig-scale-rows";

/// The sweep as a printable table.
pub fn scale_sweep_table(scale: Scale) -> Table {
    table_from_rows(&scale_sweep(scale))
}

/// Render already-measured sweep rows as the `fig_scale` table. Split
/// from [`scale_sweep_table`] so the binary can inspect the rows'
/// parity flags and fail (non-zero exit) on divergence instead of only
/// printing `DIVERGED` — CI runs the quick sweep as a smoke step and
/// must go red when the sharded engine stops matching the sequential
/// baseline at experiment scale.
pub fn table_from_rows(rows: &[ScaleRow]) -> Table {
    let mut table = Table::new(
        "Engine scaling: cluster size x shard count under spot-market reclamation",
        &[
            "VMs",
            "servers",
            "shards",
            "events",
            "wall-clock",
            "events/s",
            "peak RSS MiB",
            "parity",
        ],
    );
    let mut tally = RuntimeTally::default();
    for row in rows {
        tally.add(deflate_cluster::metrics::RunStats {
            wall_clock_secs: row.wall_clock_secs,
            events_processed: row.events,
            shards: row.shards,
        });
        table.row(&[
            row.vms.to_string(),
            row.servers.to_string(),
            row.shards.to_string(),
            row.events.to_string(),
            secs(row.wall_clock_secs),
            format!("{:.0}", row.events_per_sec),
            row.peak_rss_mib
                .map_or_else(|| "n/a".to_string(), |mib| format!("{mib:.0}")),
            if row.parity { "ok" } else { "DIVERGED" }.to_string(),
        ]);
    }
    table.set_footer(tally.footer());
    table
}

/// The process's peak resident-set size in MiB — the shared
/// `deflate-telemetry` reader, which (unlike the original local copy)
/// degrades to `None` on a missing, unparseable, or zero `VmHWM` rather
/// than reporting a bogus value.
pub use deflate_telemetry::peak_rss_mib;

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature sweep (not the CI smoke — that runs the real quick
    /// preset as its own workflow step) checking the row structure and the
    /// cross-shard parity digest end to end.
    #[test]
    fn mini_sweep_rows_are_consistent_and_parity_holds() {
        let workload = scale_workload(Scale::Quick, 400);
        let (sequential, servers) =
            run_scale_cell(&workload, Scale::Quick, ShardConfig::sequential());
        let (sharded, servers_2) =
            run_scale_cell(&workload, Scale::Quick, ShardConfig::with_shards(2));
        assert_eq!(servers, servers_2);
        assert!(servers > 0);
        assert!(sequential.runtime.events_processed > 2 * 400);
        assert_eq!(sequential, sharded, "2-shard run diverged");
        assert_eq!(
            sequential.transient.reclaim_events,
            sharded.transient.reclaim_events
        );
        assert!(
            sequential.transient.reclaim_events > 0,
            "spot-market must reclaim"
        );
    }

    #[test]
    fn shard_count_override_parses() {
        // No env manipulation (tests run in parallel): exercise the preset
        // path only.
        let counts = Scale::Quick.scale_sweep_shards();
        assert_eq!(counts, &[1, 2]);
        assert_eq!(Scale::Full.scale_sweep_shards(), &[1, 2, 4, 8]);
        assert!(Scale::Quick.scale_sweep_vms().contains(&100_000));
    }

    #[test]
    fn sweep_rows_round_trip_through_the_state_file_format() {
        let rows = vec![
            ScaleRow {
                vms: 10_000,
                servers: 321,
                shards: 1,
                events: 123_456,
                wall_clock_secs: 1.5,
                events_per_sec: 82_304.0,
                peak_rss_mib: Some(512.25),
                parity: true,
            },
            ScaleRow {
                vms: 100_000,
                servers: 3210,
                shards: 2,
                events: 1_234_567,
                wall_clock_secs: 12.5,
                events_per_sec: 98_765.36,
                peak_rss_mib: None,
                parity: false,
            },
        ];
        let bytes = rows_to_bytes(&rows);
        let restored = rows_from_bytes(&bytes).expect("own bytes must parse");
        assert_eq!(restored.len(), rows.len());
        for (a, b) in rows.iter().zip(&restored) {
            assert_eq!(
                (a.vms, a.servers, a.shards, a.events),
                (b.vms, b.servers, b.shards, b.events)
            );
            assert_eq!(a.wall_clock_secs.to_bits(), b.wall_clock_secs.to_bits());
            assert_eq!(a.events_per_sec.to_bits(), b.events_per_sec.to_bits());
            assert_eq!(
                a.peak_rss_mib.map(f64::to_bits),
                b.peak_rss_mib.map(f64::to_bits)
            );
            assert_eq!(a.parity, b.parity);
        }
        // Garbage and truncation are rejected, not misread.
        assert!(rows_from_bytes(b"not a state file").is_err());
        assert!(rows_from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    /// A sweep resumed over a complete row set measures nothing: no cell
    /// runs (the quick preset's smallest size is 10k VMs — a run here
    /// would dominate the unit-test wall clock) and the flush callback
    /// never fires.
    #[test]
    fn resume_over_complete_rows_skips_every_cell() {
        let scale = Scale::Quick;
        let mut done = Vec::new();
        for &vms in scale.scale_sweep_vms() {
            for &shards in scale.scale_sweep_shards() {
                done.push(ScaleRow {
                    vms,
                    servers: 1,
                    shards,
                    events: 1,
                    wall_clock_secs: 0.1,
                    events_per_sec: 10.0,
                    peak_rss_mib: None,
                    parity: true,
                });
            }
        }
        let expected = done.len();
        let mut flushes = 0;
        let rows = scale_sweep_with_resume(scale, done, |_| flushes += 1);
        assert_eq!(rows.len(), expected);
        assert_eq!(flushes, 0, "complete state must skip all measurement");
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        // On the Linux CI hosts this must produce a positive number; on
        // other platforms None is acceptable.
        if cfg!(target_os = "linux") {
            let rss = peak_rss_mib().expect("VmHWM available on Linux");
            assert!(rss > 1.0);
        }
    }
}
