//! Plain-text table formatting for experiment output.
//!
//! Every experiment binary prints its figure's data as an aligned text table
//! so that `cargo run -p deflate-bench --bin figNN` reproduces the rows /
//! series of the corresponding figure in the paper. `EXPERIMENTS.md` records
//! the paper-reported values next to these measured ones.

use deflate_cluster::metrics::RunStats;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    /// Free-text line printed after the rows (engine runtime summaries).
    /// Not part of [`rows`](Self::rows), so regression tests pinning row
    /// contents are unaffected by wall-clock noise.
    footer: Option<String>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            footer: None,
        }
    }

    /// Set the footer line printed after the rows. Experiment tables use
    /// this for the engine-runtime summary (wall-clock, events processed,
    /// events/s), which must stay out of the pinned data rows because
    /// wall-clock time is not deterministic.
    pub fn set_footer(&mut self, footer: String) -> &mut Self {
        self.footer = Some(footer);
        self
    }

    /// The footer line, if one was set.
    pub fn footer(&self) -> Option<&str> {
        self.footer.as_deref()
    }

    /// Append a row (must have the same arity as the headers).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity does not match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The data rows, as rendered strings (used by regression tests that
    /// pin experiment output to known-good values).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as an aligned string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        if let Some(footer) = &self.footer {
            out.push_str(footer);
            out.push('\n');
        }
        out
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// The shared engine-runtime tally and `engine:` footer (runs, events,
/// wall-clock, events/s, peak RSS), re-exported from `deflate-telemetry`
/// so every `fig_*` table and the telemetry sink format runtime
/// identically. The [`TallyRunStats`] extension folds a `SimResult`'s
/// [`RunStats`] in directly.
pub use deflate_telemetry::{append_process_footer_json, secs, RuntimeTally};

/// Bench-side sugar on the shared [`RuntimeTally`]: fold one run's
/// [`RunStats`] into the tally (`deflate-telemetry` cannot name the
/// cluster crate's stats type, so the adapter lives here).
pub trait TallyRunStats {
    /// Fold one run's stats into the tally.
    fn add(&mut self, stats: RunStats);
}

impl TallyRunStats for RuntimeTally {
    fn add(&mut self, stats: RunStats) {
        self.add_run(stats.wall_clock_secs, stats.events_processed);
    }
}

/// Stopwatch for figures that never replay the cluster engine (analytic
/// models, app-level simulators): times the figure's own computation so
/// its table still carries the shared `engine:` footer — zero engine
/// events, but wall-clock, events/s, and peak RSS are reported
/// uniformly across every `fig_*` binary.
#[derive(Debug)]
pub struct FigureTimer {
    started: std::time::Instant,
}

impl FigureTimer {
    /// Start timing a figure computation.
    pub fn start() -> Self {
        FigureTimer {
            started: std::time::Instant::now(),
        }
    }

    /// Footer the finished table with the elapsed wall clock.
    pub fn finish(self, table: &mut Table) {
        let mut tally = RuntimeTally::default();
        tally.add_run(self.started.elapsed().as_secs_f64(), 0);
        table.set_footer(tally.footer());
    }

    /// [`finish`](Self::finish) as a by-value wrapper, for figure
    /// functions that return the table from a builder expression.
    pub fn wrap(self, mut table: Table) -> Table {
        self.finish(&mut table);
        table
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Format a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Figure X", &["deflation", "value"]);
        t.row(&["10%".to_string(), "0.123".to_string()]);
        t.row(&["50%".to_string(), "7.5".to_string()]);
        let s = t.render();
        assert!(s.contains("== Figure X =="));
        assert!(s.contains("deflation"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_mismatched_rows() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.row(&["only-one".to_string()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(secs(0.25), "250.0 ms");
        assert_eq!(secs(2.5), "2.50 s");
    }

    #[test]
    fn footer_renders_but_stays_out_of_rows() {
        let mut t = Table::new("F", &["a"]);
        t.row(&["1".to_string()]);
        let mut tally = RuntimeTally::default();
        tally.add(RunStats {
            wall_clock_secs: 2.0,
            events_processed: 100,
            shards: 1,
        });
        tally.add(RunStats {
            wall_clock_secs: 2.0,
            events_processed: 100,
            shards: 1,
        });
        // Live `footer()` samples the process RSS; pin the rest of the
        // line through the deterministic explicit-RSS variant.
        t.set_footer(tally.footer_with_rss(None));
        assert_eq!(t.rows().len(), 1, "footer must not become a data row");
        assert_eq!(
            t.footer(),
            Some("engine: 2 runs, 200 events, 4.00 s wall-clock, 50 events/s, rss=n/a")
        );
        assert!(t.render().ends_with("rss=n/a\n"));
        // The real binaries use `footer()`, which appends the live
        // `rss=` field in the same format.
        assert!(tally.footer().contains(", rss="));
    }
}
