//! The what-if meta-scheduler experiment (`fig_whatif`): model-predictive
//! transfer-policy selection by **forking engine checkpoints**.
//!
//! A static [`TransferPolicy`] is a compromise: FIFO booking wastes tight
//! reclamation windows on doomed copies, EDF admission control refuses
//! them up front but leaves bandwidth idle when the window is generous,
//! and deflate-then-migrate trades guest page cache for copy time whether
//! or not the deadline is actually at risk. Which policy is right depends
//! on the *shape of the next capacity shock* — something a simulator can
//! simply try.
//!
//! This experiment runs the closed loop of model-predictive control over
//! the engine's own checkpoint/fork machinery
//! ([`ClusterSimulation::checkpoint`] / [`ClusterSimulation::resume`]):
//!
//! 1. The spot-market capacity schedule is known up front, so the decision
//!    points — bursts of reclamation change-points — are enumerated before
//!    the run ([`decision_times`]).
//! 2. Just before each burst, the committed run is snapshotted at an
//!    event boundary one ULP below the first reclamation
//!    ([`just_before`]).
//! 3. The snapshot is **forked**: one sibling simulation per candidate
//!    policy, identical in everything but the transfer-scheduling knob,
//!    each resumed to the end of the horizon. A snapshot stores only
//!    dynamic state, so the restoring simulation's policy is the one that
//!    governs the remainder — that is what makes the fork a genuine
//!    counterfactual rather than a re-run.
//! 4. The fork with the best full-horizon outcome ([`WhatifScore`]) is
//!    **committed**: the meta-scheduler leapfrogs the snapshot to the next
//!    decision point under the winning policy
//!    ([`ClusterSimulation::resume_until`]) and repeats.
//!
//! Because forks are bit-faithful (the checkpoint contract pinned by
//! `tests/checkpoint_restore.rs`), re-evaluating the committed policy at
//! the next decision point reproduces the previous winner's trajectory
//! exactly; the winning score is therefore monotonically non-increasing
//! across decisions, and the final committed run can never score worse
//! than the static policy the loop started from. The unit tests pin both
//! properties.
//!
//! [`ClusterSimulation::checkpoint`]: deflate_cluster::sim::ClusterSimulation::checkpoint
//! [`ClusterSimulation::resume`]: deflate_cluster::sim::ClusterSimulation::resume
//! [`ClusterSimulation::resume_until`]: deflate_cluster::sim::ClusterSimulation::resume_until

use crate::report::{pct, RuntimeTally, Table, TallyRunStats};
use crate::scale::Scale;
use crate::transient_exp::{
    dirty_aware_migration_cost, transient_capacity, transient_simulation, transient_workload,
    TransientMode,
};
use deflate_cluster::metrics::SimResult;
use deflate_cluster::sim::ClusterSimulation;
use deflate_cluster::spec::WorkloadVm;
use deflate_core::policy::TransferPolicy;
use deflate_transient::signal::{CapacityProfile, CapacitySchedule};

/// The candidate transfer policies every decision point forks under, in
/// deterministic evaluation order (ties go to the earliest candidate, so
/// the incumbent FIFO start policy wins exact draws).
pub fn whatif_candidates() -> [TransferPolicy; 4] {
    [
        TransferPolicy::fifo(),
        TransferPolicy::smallest_first(),
        TransferPolicy::edf(),
        TransferPolicy::edf().with_deflate_then_migrate(true),
    ]
}

/// The full-horizon objective a fork is scored by, lexicographic: VMs
/// lost (evictions plus deadline aborts) first, then aborts alone (link
/// time wasted on doomed copies), then total page-transfer seconds as the
/// cheapest-trajectory tie-break. Derived `Ord` compares fields in
/// declaration order, which is exactly the intended priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct WhatifScore {
    /// Evictions + deadline aborts over the whole horizon.
    pub vms_lost: usize,
    /// Deadline aborts alone.
    pub aborts: usize,
    /// Total migration seconds, as bits (non-negative, so bit order is
    /// value order).
    pub migration_secs_bits: u64,
}

/// Score a fork's full-horizon result.
pub fn score(result: &SimResult) -> WhatifScore {
    WhatifScore {
        vms_lost: result.eviction_or_abort_count(),
        aborts: result.migration_abort_count(),
        migration_secs_bits: result.total_migration_secs().to_bits(),
    }
}

/// One committed decision of the MPC loop.
#[derive(Debug, Clone)]
pub struct WhatifDecision {
    /// Simulated time of the burst's first reclamation (the snapshot is
    /// taken one ULP earlier).
    pub time_secs: f64,
    /// Number of distinct reclamation change-point times coalesced into
    /// this decision's burst.
    pub reclaims_in_burst: usize,
    /// The committed (winning) policy.
    pub chosen: TransferPolicy,
    /// Every candidate's full-horizon score from this snapshot, in
    /// [`whatif_candidates`] order.
    pub scores: Vec<(TransferPolicy, WhatifScore)>,
}

/// The experiment's complete outcome: the decision log, the final
/// committed trajectory and the static-policy baselines it is compared
/// against.
#[derive(Debug, Clone)]
pub struct WhatifOutcome {
    /// The committed decisions in time order.
    pub decisions: Vec<WhatifDecision>,
    /// The policy committed at the last decision point.
    pub committed: TransferPolicy,
    /// The piecewise-policy trajectory's result: FIFO until the first
    /// decision, then each decision's winner until the next.
    pub mpc: SimResult,
    /// Each candidate run statically over the whole horizon, in
    /// [`whatif_candidates`] order.
    pub statics: Vec<(TransferPolicy, SimResult)>,
}

/// Group the schedule's reclamation change-points into decision bursts:
/// distinct reclaim times sorted ascending, with every time within
/// `coalesce_secs` of a burst's first member joining that burst (spot
/// outages hit many servers within seconds — one decision covers the
/// storm). At most `max_decisions` bursts are kept; later reclamations
/// simply run under the last committed policy. Returns `(first reclaim
/// time, distinct reclaim times in burst)` pairs.
pub fn decision_times(
    schedule: &CapacitySchedule,
    coalesce_secs: f64,
    max_decisions: usize,
) -> Vec<(f64, usize)> {
    let mut times: Vec<f64> = schedule
        .changes()
        .iter()
        .filter(|c| c.is_reclaim && c.time_secs > 0.0)
        .map(|c| c.time_secs)
        .collect();
    times.sort_by(f64::total_cmp);
    times.dedup();
    let mut bursts: Vec<(f64, usize)> = Vec::new();
    for t in times {
        match bursts.last_mut() {
            Some((start, n)) if t - *start <= coalesce_secs => *n += 1,
            _ => bursts.push((t, 1)),
        }
    }
    bursts.truncate(max_decisions);
    bursts
}

/// Coalescing window and decision budget per scale preset. Quick mode
/// keeps the loop inside the CI envelope (each decision costs one fork
/// per candidate); full mode decides at twice as many bursts.
pub fn whatif_params(scale: Scale) -> (f64, usize) {
    match scale {
        Scale::Quick => (1800.0, 5),
        Scale::Full => (1800.0, 10),
    }
}

/// The largest `f64` strictly below `t` — the checkpoint boundary used to
/// snapshot *just before* a reclamation at `t`, since the engine's
/// checkpoint horizon is inclusive (every event with `time <= at_secs` is
/// processed before serializing).
pub fn just_before(t: f64) -> f64 {
    debug_assert!(t > 0.0 && t.is_finite());
    f64::from_bits(t.to_bits() - 1)
}

/// Run the what-if meta-scheduler at the given scale on the shared
/// transient workload.
pub fn whatif_mpc(scale: Scale) -> WhatifOutcome {
    whatif_mpc_on(&transient_workload(scale), scale)
}

/// [`whatif_mpc`] with a pre-built workload. The scenario is the
/// scheduler experiment's hardest row: deflation mode under the bursty
/// spot-market profile with the dirty-rate-aware cost model at the
/// one-link budget — the regime where the policies genuinely diverge.
pub fn whatif_mpc_on(workload: &[WorkloadVm], scale: Scale) -> WhatifOutcome {
    let profile = CapacityProfile::spot_market_default();
    let cost = dirty_aware_migration_cost(1250.0);
    let sim = |policy: TransferPolicy| -> ClusterSimulation {
        transient_simulation(
            workload,
            scale,
            TransientMode::Deflation,
            profile,
            cost,
            policy,
        )
    };
    let (schedule, _servers) = transient_capacity(workload, scale, profile);
    let (coalesce_secs, max_decisions) = whatif_params(scale);
    let bursts = decision_times(&schedule, coalesce_secs, max_decisions);
    let candidates = whatif_candidates();

    let mut committed = TransferPolicy::fifo();
    let mut decisions = Vec::new();
    let mut snapshot: Option<Vec<u8>> = None;
    for &(time_secs, reclaims_in_burst) in &bursts {
        let boundary = just_before(time_secs);
        // Advance the committed trajectory to this decision's boundary:
        // a fresh checkpoint for the first decision, a leapfrog of the
        // previous snapshot for every later one (the prefix is never
        // replayed).
        let snap = match snapshot.take() {
            None => sim(committed).checkpoint(workload, boundary),
            Some(prev) => sim(committed)
                .resume_until(workload, &prev, boundary)
                .expect("own snapshot must restore"),
        };
        // Fork: one counterfactual per candidate policy, all from the
        // same bytes.
        let scores: Vec<(TransferPolicy, WhatifScore)> = candidates
            .iter()
            .map(|&candidate| {
                let result = sim(candidate)
                    .resume(workload, &snap)
                    .expect("own snapshot must restore");
                (candidate, score(&result))
            })
            .collect();
        let (chosen, _) = scores
            .iter()
            .min_by_key(|(_, s)| *s)
            .copied()
            .expect("at least one candidate");
        committed = chosen;
        decisions.push(WhatifDecision {
            time_secs,
            reclaims_in_burst,
            chosen,
            scores,
        });
        snapshot = Some(snap);
    }
    let mpc = match snapshot {
        Some(snap) => sim(committed)
            .resume(workload, &snap)
            .expect("own snapshot must restore"),
        // A schedule with no reclamations has nothing to decide.
        None => sim(committed).run(workload),
    };
    let statics = candidates
        .iter()
        .map(|&policy| (policy, sim(policy).run(workload)))
        .collect();
    WhatifOutcome {
        decisions,
        committed,
        mpc,
        statics,
    }
}

/// The decision log as a printable table: one row per committed decision,
/// with every candidate's full-horizon `lost/aborts` score and the
/// winner.
pub fn whatif_decision_table(outcome: &WhatifOutcome) -> Table {
    let mut headers: Vec<String> = vec!["decision t (h)".into(), "reclaim times".into()];
    for policy in whatif_candidates() {
        headers.push(format!("{} lost/aborts", policy.name()));
    }
    headers.push("committed".into());
    let header_refs: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
    let mut table = Table::new(
        "What-if meta-scheduler: full-horizon fork scores at each reclamation burst",
        &header_refs,
    );
    for decision in &outcome.decisions {
        let mut row = vec![
            format!("{:.2}", decision.time_secs / 3600.0),
            decision.reclaims_in_burst.to_string(),
        ];
        for (_, s) in &decision.scores {
            row.push(format!("{}/{}", s.vms_lost, s.aborts));
        }
        row.push(decision.chosen.name().to_string());
        table.row(&row);
    }
    table
}

/// The summary table: every static policy against the meta-scheduled
/// trajectory, on the metrics the forks are scored by.
pub fn whatif_summary_table(outcome: &WhatifOutcome) -> Table {
    let mut table = Table::new(
        "What-if meta-scheduler vs static transfer policies (spot-market, deflation)",
        &[
            "policy",
            "failure probability",
            "evictions+aborts",
            "aborts",
            "migrations",
            "migration secs",
        ],
    );
    let mut tally = RuntimeTally::default();
    let mut push = |name: String, result: &SimResult, tally: &mut RuntimeTally| {
        tally.add(result.runtime);
        table.row(&[
            name,
            pct(result.failure_probability()),
            result.eviction_or_abort_count().to_string(),
            result.migration_abort_count().to_string(),
            result.migration_count().to_string(),
            format!("{:.1}", result.total_migration_secs()),
        ]);
    };
    for (policy, result) in &outcome.statics {
        push(format!("static {}", policy.name()), result, &mut tally);
    }
    push(
        format!("what-if (ends on {})", outcome.committed.name()),
        &outcome.mpc,
        &mut tally,
    );
    table.set_footer(tally.footer());
    table
}

/// Run the experiment and render both tables (the `fig_whatif` binary).
pub fn fig_whatif_tables(scale: Scale) -> (Table, Table) {
    let outcome = whatif_mpc(scale);
    (
        whatif_decision_table(&outcome),
        whatif_summary_table(&outcome),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn just_before_is_one_ulp_down() {
        let t = 1234.5678_f64;
        let b = just_before(t);
        assert!(b < t);
        assert_eq!(f64::from_bits(b.to_bits() + 1), t);
    }

    #[test]
    fn decision_times_coalesce_and_cap() {
        let (schedule, _) = {
            let workload = transient_workload(Scale::Quick);
            transient_capacity(
                &workload,
                Scale::Quick,
                CapacityProfile::spot_market_default(),
            )
        };
        let all = decision_times(&schedule, 0.0, usize::MAX);
        let coalesced = decision_times(&schedule, 1800.0, usize::MAX);
        assert!(!all.is_empty(), "spot market must reclaim");
        assert!(coalesced.len() <= all.len());
        // Every burst accounts for at least one reclaim time, and the
        // total distinct times are preserved by the grouping.
        assert_eq!(all.len(), coalesced.iter().map(|&(_, n)| n).sum::<usize>());
        let capped = decision_times(&schedule, 1800.0, 3);
        assert_eq!(capped.len(), 3.min(coalesced.len()));
        // Bursts are strictly ordered and separated by the window.
        for pair in coalesced.windows(2) {
            assert!(pair[1].0 - pair[0].0 > 1800.0);
        }
    }

    /// The MPC acceptance property: because forks are bit-faithful, the
    /// winning score never increases across decisions, and the final
    /// trajectory scores no worse than the static FIFO policy the loop
    /// started from. Both would break immediately if a restored fork
    /// diverged from the run it was forked off.
    #[test]
    fn mpc_never_scores_worse_than_its_static_start_policy() {
        let outcome = whatif_mpc(Scale::Quick);
        assert!(
            !outcome.decisions.is_empty(),
            "spot market must produce decisions"
        );
        let winners: Vec<WhatifScore> = outcome
            .decisions
            .iter()
            .map(|d| d.scores.iter().map(|&(_, s)| s).min().unwrap())
            .collect();
        for pair in winners.windows(2) {
            assert!(
                pair[1] <= pair[0],
                "winning score increased across decisions: {pair:?}"
            );
        }
        // The final resume re-runs the last winning fork bit for bit.
        assert_eq!(score(&outcome.mpc), *winners.last().unwrap());
        let fifo_static = &outcome.statics[0];
        assert_eq!(fifo_static.0, TransferPolicy::fifo());
        assert!(
            score(&outcome.mpc) <= score(&fifo_static.1),
            "meta-scheduler lost to its own start policy"
        );
    }
}
