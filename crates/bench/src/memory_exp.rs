//! The memory-accounting experiment (`fig_memory`): where do the bytes
//! at 100k VMs actually go?
//!
//! Replays the `fig_scale` spot-market scenario with the metrics sink on
//! and prints the `MemoryLedger`'s per-subsystem `mem.*` breakdown next
//! to the process's `/proc/self/status` numbers (`VmRSS` live,
//! `VmHWM` peak) — the quantified before-picture ROADMAP item 1
//! ("streaming, memory-lean engine for 10M-VM traces") needs before any
//! slimming can be judged.
//!
//! The binary enforces the accounting acceptance contract and exits
//! non-zero when it breaks: the accounted total must cover at least
//! [`MEMORY_COVERAGE_FLOOR`] of the run's peak RSS at every swept size
//! (unaccounted memory is exactly the blind spot the ledger exists to
//! eliminate). To keep the peak attributable to the *run*, the kernel's
//! high-water mark is reset (`/proc/self/clear_refs`, see
//! [`deflate_telemetry::reset_peak_rss`]) after the workload is built;
//! where the reset is unavailable the peak is process-wide and the gate
//! degrades to reporting only.

use crate::report::{RuntimeTally, Table, TallyRunStats};
use crate::scale::Scale;
use crate::scale_exp::{run_scale_cell_with_telemetry, scale_workload};
use deflate_core::shard::ShardConfig;
use deflate_telemetry::{TelemetrySink, TelemetrySpec};

/// Fraction of the run's peak RSS the accounted per-subsystem bytes must
/// cover — the `fig_memory` CI gate. The remainder is allocator slack,
/// stacks, code and the few containers the ledger deliberately skips.
pub const MEMORY_COVERAGE_FLOOR: f64 = 0.70;

/// One measured run of the memory sweep.
#[derive(Debug)]
pub struct MemoryRun {
    /// VMs in the replayed trace.
    pub vms: usize,
    /// Servers the cluster was sized to.
    pub servers: usize,
    /// Events the engine delivered.
    pub events: u64,
    /// Wall-clock duration of the run, seconds.
    pub wall_clock_secs: f64,
    /// Per-subsystem byte gauges (`mem.<subsystem>` with the prefix
    /// stripped), largest first.
    pub subsystems: Vec<(String, u64)>,
    /// The ledger's accounted total (`mem.accounted_total`), bytes.
    pub accounted_bytes: u64,
    /// The live `VmRSS` sample the engine took at its final memory
    /// publish (`mem.rss_kib`), kiB. `None` off Linux.
    pub rss_kib: Option<f64>,
    /// The process's `VmHWM` after the run, kiB. `None` off Linux.
    pub peak_rss_kib: Option<f64>,
    /// Whether the high-water mark was reset after workload build, making
    /// [`peak_rss_kib`](Self::peak_rss_kib) attributable to the run alone.
    pub peak_scoped_to_run: bool,
}

impl MemoryRun {
    /// Accounted bytes as a fraction of the run's peak RSS (`None` where
    /// procfs is unavailable).
    pub fn coverage(&self) -> Option<f64> {
        let peak = self.peak_rss_kib?;
        (peak > 0.0).then(|| self.accounted_bytes as f64 / (peak * 1024.0))
    }

    /// True when this run satisfies the acceptance contract: accounted
    /// bytes cover at least [`MEMORY_COVERAGE_FLOOR`] of the run's peak
    /// RSS, and the breakdown is non-trivial (the load-bearing subsystems
    /// all report). Where procfs is unavailable the coverage clause is
    /// vacuous — there is no peak to gate against.
    pub fn accepted(&self) -> bool {
        self.coverage().is_none_or(|c| c >= MEMORY_COVERAGE_FLOOR)
            && self.accounted_bytes > 0
            && ["workload", "vm_records", "servers", "event_queue"]
                .iter()
                .all(|name| self.subsystems.iter().any(|(n, b)| n == name && *b > 0))
    }

    /// Human-readable reasons this run fails acceptance (empty when
    /// [`accepted`](Self::accepted)).
    pub fn failures(&self) -> Vec<String> {
        let mut reasons = Vec::new();
        match self.coverage() {
            Some(c) if c >= MEMORY_COVERAGE_FLOOR => {}
            Some(c) => reasons.push(format!(
                "accounted bytes cover {:.1}% of peak RSS at {} VMs, below the {:.0}% floor",
                100.0 * c,
                self.vms,
                100.0 * MEMORY_COVERAGE_FLOOR
            )),
            None => {}
        }
        if self.accounted_bytes == 0 {
            reasons.push(format!("no bytes accounted at {} VMs", self.vms));
        }
        for name in ["workload", "vm_records", "servers", "event_queue"] {
            if !self.subsystems.iter().any(|(n, b)| n == name && *b > 0) {
                reasons.push(format!(
                    "subsystem `{name}` reported no bytes at {} VMs",
                    self.vms
                ));
            }
        }
        reasons
    }
}

/// Measure one cluster size: build the workload, reset the peak-RSS
/// high-water mark so `VmHWM` covers the run alone, replay the scenario
/// sequentially with the metrics sink on, and read the final `mem.*`
/// gauges back out of the sink.
pub fn memory_cell(scale: Scale, vms: usize) -> std::io::Result<MemoryRun> {
    let workload = scale_workload(scale, vms);
    let peak_scoped_to_run = deflate_telemetry::reset_peak_rss();
    let spec = TelemetrySpec {
        metrics: true,
        ..TelemetrySpec::default()
    };
    let sink = TelemetrySink::from_spec(&spec)?;
    let (result, servers) =
        run_scale_cell_with_telemetry(&workload, scale, ShardConfig::sequential(), sink.clone());
    let report = sink.finish()?;
    let mut subsystems: Vec<(String, u64)> = report
        .metrics
        .gauges
        .iter()
        .filter_map(|(name, value)| {
            let subsystem = name.strip_prefix("mem.")?;
            if subsystem == "accounted_total" || subsystem == "rss_kib" {
                return None;
            }
            Some((subsystem.to_string(), *value as u64))
        })
        .collect();
    subsystems.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    Ok(MemoryRun {
        vms,
        servers,
        events: result.runtime.events_processed,
        wall_clock_secs: result.runtime.wall_clock_secs,
        subsystems,
        accounted_bytes: report.metrics.gauge("mem.accounted_total").unwrap_or(0.0) as u64,
        rss_kib: report.metrics.gauge("mem.rss_kib"),
        peak_rss_kib: deflate_telemetry::peak_rss_mib().map(|mib| mib * 1024.0),
        peak_scoped_to_run,
    })
}

/// Measure every cluster size of the scale preset's sweep.
pub fn memory_sweep(scale: Scale) -> std::io::Result<Vec<MemoryRun>> {
    scale
        .scale_sweep_vms()
        .iter()
        .map(|&vms| memory_cell(scale, vms))
        .collect()
}

fn mib(bytes: f64) -> String {
    format!("{:.1}", bytes / (1024.0 * 1024.0))
}

/// One measured run as the printable per-subsystem table, closed by the
/// accounted total and the two procfs reference rows it is judged
/// against.
pub fn memory_table(run: &MemoryRun) -> Table {
    let mut table = Table::new(
        &format!(
            "Per-subsystem memory accounting: {} VMs, {} servers (coverage {})",
            run.vms,
            run.servers,
            run.coverage()
                .map_or_else(|| "n/a".to_string(), |c| format!("{:.1}%", 100.0 * c)),
        ),
        &["subsystem", "MiB", "share of accounted"],
    );
    let total = run.accounted_bytes as f64;
    for (name, bytes) in &run.subsystems {
        let share = if total > 0.0 {
            format!("{:.1}%", 100.0 * *bytes as f64 / total)
        } else {
            "n/a".to_string()
        };
        table.row(&[name.clone(), mib(*bytes as f64), share]);
    }
    table.row(&[
        "accounted_total".to_string(),
        mib(total),
        "100.0%".to_string(),
    ]);
    table.row(&[
        "VmRSS (live, final sample)".to_string(),
        run.rss_kib
            .map_or_else(|| "n/a".to_string(), |kib| mib(kib * 1024.0)),
        "-".to_string(),
    ]);
    table.row(&[
        if run.peak_scoped_to_run {
            "VmHWM (peak over the run)".to_string()
        } else {
            "VmHWM (process-wide peak)".to_string()
        },
        run.peak_rss_kib
            .map_or_else(|| "n/a".to_string(), |kib| mib(kib * 1024.0)),
        "-".to_string(),
    ]);
    let mut tally = RuntimeTally::default();
    tally.add(deflate_cluster::metrics::RunStats {
        wall_clock_secs: run.wall_clock_secs,
        events_processed: run.events,
        shards: 1,
    });
    table.set_footer(tally.footer());
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end on a small run: the gauges come back out of the sink,
    /// the load-bearing subsystems all report bytes, and on Linux the
    /// accounted total clears the coverage floor the binary gates on at
    /// the real (10k/100k) sizes.
    #[test]
    fn mini_memory_run_reports_the_load_bearing_subsystems() {
        let run = memory_cell(Scale::Quick, 2_000).expect("memory run");
        assert!(run.accounted_bytes > 0);
        for name in ["workload", "vm_records", "servers", "event_queue"] {
            assert!(
                run.subsystems.iter().any(|(n, b)| n == name && *b > 0),
                "subsystem {name} missing from {:?}",
                run.subsystems
            );
        }
        // Largest-first ordering.
        for pair in run.subsystems.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        if cfg!(target_os = "linux") {
            assert!(run.rss_kib.is_some(), "live VmRSS gauge expected on Linux");
            assert!(run.peak_rss_kib.is_some(), "VmHWM expected on Linux");
        }
        let rendered = memory_table(&run).render();
        assert!(rendered.contains("accounted_total"));
        assert!(rendered.contains("VmRSS"));
        assert!(rendered.contains("VmHWM"));
        assert!(rendered.contains("engine:"), "runtime footer expected");
    }

    /// The acceptance contract is judged per run and explains itself.
    #[test]
    fn failure_reasons_name_the_broken_clause() {
        let run = MemoryRun {
            vms: 100_000,
            servers: 100,
            events: 1,
            wall_clock_secs: 1.0,
            subsystems: vec![("workload".to_string(), 0)],
            accounted_bytes: 0,
            rss_kib: None,
            peak_rss_kib: Some(1024.0),
            peak_scoped_to_run: true,
        };
        assert!(!run.accepted());
        let reasons = run.failures();
        assert!(reasons.iter().any(|r| r.contains("below the 70% floor")));
        assert!(reasons.iter().any(|r| r.contains("no bytes accounted")));
        assert!(reasons.iter().any(|r| r.contains("`vm_records`")));
    }
}
