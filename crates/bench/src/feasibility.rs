//! Experiments reproducing the feasibility analysis of §3.2
//! (Figures 5–12).

use crate::report::{pct, FigureTimer, Table};
use crate::scale::Scale;
use deflate_traces::alibaba::{AlibabaTraceConfig, AlibabaTraceGenerator, ContainerTrace};
use deflate_traces::analysis::{self, FeasibilityPoint};
use deflate_traces::azure::{AzureTraceConfig, AzureTraceGenerator, AzureVmTrace};

/// Deflation levels used by the feasibility figures (10–90 %).
pub const LEVELS: [f64; 9] = analysis::DEFLATION_LEVELS;

/// Generate the Azure VM population for a scale.
pub fn azure_population(scale: Scale) -> Vec<AzureVmTrace> {
    AzureTraceGenerator::generate(&AzureTraceConfig {
        num_vms: scale.azure_vms(),
        duration_hours: 24.0,
        seed: scale.seed(),
        ..Default::default()
    })
}

/// Generate the Alibaba container population for a scale.
pub fn alibaba_population(scale: Scale) -> Vec<ContainerTrace> {
    AlibabaTraceGenerator::generate(&AlibabaTraceConfig {
        num_containers: scale.alibaba_containers(),
        duration_hours: 24.0,
        seed: scale.seed(),
        ..Default::default()
    })
}

fn feasibility_table(title: &str, rows: &[(String, Vec<FeasibilityPoint>)]) -> Table {
    let mut table = Table::new(title, &["group", "deflation", "q1", "median", "q3", "mean"]);
    for (group, points) in rows {
        for p in points {
            table.row(&[
                group.clone(),
                pct(p.deflation),
                pct(p.distribution.q1),
                pct(p.distribution.median),
                pct(p.distribution.q3),
                pct(p.distribution.mean),
            ]);
        }
    }
    table
}

/// Figure 5: fraction of time VMs' CPU usage exceeds the deflated allocation,
/// across the whole population.
pub fn fig05(scale: Scale) -> Table {
    let timer = FigureTimer::start();
    let vms = azure_population(scale);
    let points = analysis::cpu_feasibility(&vms, &LEVELS);
    timer.wrap(feasibility_table(
        "Figure 5: CPU deflation feasibility (all VMs)",
        &[("all".to_string(), points)],
    ))
}

/// Figure 6: the same breakdown by workload class.
pub fn fig06(scale: Scale) -> Table {
    let timer = FigureTimer::start();
    let vms = azure_population(scale);
    let rows: Vec<(String, Vec<FeasibilityPoint>)> =
        analysis::cpu_feasibility_by_class(&vms, &LEVELS)
            .into_iter()
            .map(|(class, points)| (class.to_string(), points))
            .collect();
    timer.wrap(feasibility_table(
        "Figure 6: CPU deflation feasibility by workload class",
        &rows,
    ))
}

/// Figure 7: breakdown by VM memory size.
pub fn fig07(scale: Scale) -> Table {
    let timer = FigureTimer::start();
    let vms = azure_population(scale);
    let rows: Vec<(String, Vec<FeasibilityPoint>)> =
        analysis::cpu_feasibility_by_size(&vms, &LEVELS)
            .into_iter()
            .map(|(size, points)| (size.label().to_string(), points))
            .collect();
    timer.wrap(feasibility_table(
        "Figure 7: CPU deflation feasibility by VM memory size",
        &rows,
    ))
}

/// Figure 8: breakdown by 95th-percentile CPU usage.
pub fn fig08(scale: Scale) -> Table {
    let timer = FigureTimer::start();
    let vms = azure_population(scale);
    let rows: Vec<(String, Vec<FeasibilityPoint>)> =
        analysis::cpu_feasibility_by_peak(&vms, &LEVELS)
            .into_iter()
            .map(|(peak, points)| (peak.label().to_string(), points))
            .collect();
    timer.wrap(feasibility_table(
        "Figure 8: CPU deflation feasibility by 95th-percentile CPU usage",
        &rows,
    ))
}

/// Figure 9: memory-occupancy deflation feasibility (Alibaba containers).
pub fn fig09(scale: Scale) -> Table {
    let timer = FigureTimer::start();
    let containers = alibaba_population(scale);
    let points = analysis::memory_feasibility(&containers, &LEVELS);
    timer.wrap(feasibility_table(
        "Figure 9: memory usage of applications (time above deflated allocation)",
        &[("containers".to_string(), points)],
    ))
}

/// Figure 10: memory-bandwidth usage distribution.
pub fn fig10(scale: Scale) -> Table {
    let timer = FigureTimer::start();
    let containers = alibaba_population(scale);
    let summary = analysis::memory_bandwidth_usage(&containers);
    let mut table = Table::new(
        "Figure 10: memory bandwidth usage across containers",
        &["statistic", "utilisation"],
    );
    table.row(&["min".into(), pct(summary.min)]);
    table.row(&["q1".into(), pct(summary.q1)]);
    table.row(&["median".into(), pct(summary.median)]);
    table.row(&["q3".into(), pct(summary.q3)]);
    table.row(&["max".into(), pct(summary.max)]);
    table.row(&["mean".into(), pct(summary.mean)]);
    timer.wrap(table)
}

/// Figure 11: disk-bandwidth deflation feasibility.
pub fn fig11(scale: Scale) -> Table {
    let timer = FigureTimer::start();
    let containers = alibaba_population(scale);
    let points = analysis::disk_feasibility(&containers, &LEVELS);
    timer.wrap(feasibility_table(
        "Figure 11: disk bandwidth deflation feasibility",
        &[("containers".to_string(), points)],
    ))
}

/// Figure 12: network-bandwidth deflation feasibility.
pub fn fig12(scale: Scale) -> Table {
    let timer = FigureTimer::start();
    let containers = alibaba_population(scale);
    let points = analysis::network_feasibility(&containers, &LEVELS);
    timer.wrap(feasibility_table(
        "Figure 12: network bandwidth deflation feasibility",
        &[("containers".to_string(), points)],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_feasibility_tables_have_rows() {
        let scale = Scale::Quick;
        for (name, table) in [
            ("fig05", fig05(scale)),
            ("fig06", fig06(scale)),
            ("fig07", fig07(scale)),
            ("fig08", fig08(scale)),
            ("fig09", fig09(scale)),
            ("fig10", fig10(scale)),
            ("fig11", fig11(scale)),
            ("fig12", fig12(scale)),
        ] {
            assert!(!table.is_empty(), "{name} produced an empty table");
            assert!(table.render().contains("Figure"), "{name} missing title");
        }
    }

    #[test]
    fn populations_are_deterministic() {
        let a = azure_population(Scale::Quick);
        let b = azure_population(Scale::Quick);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].cpu_util.samples(), b[0].cpu_util.samples());
    }
}
