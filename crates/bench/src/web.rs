//! Experiments reproducing the web-serving results of §7.2 and §7.3:
//! Figure 16 (Wikipedia response times under CPU deflation), Figure 17
//! (fraction of requests served), Figure 18 (microservice social network) and
//! Figure 19 (deflation-aware load balancing).

use crate::report::{pct, secs, FigureTimer, Table};
use crate::scale::Scale;
use deflate_appsim::latency::LatencyStats;
use deflate_appsim::loadbalancer::{LbPolicy, WebCluster, WebClusterConfig};
use deflate_appsim::microservice::SocialNetworkApp;
use deflate_appsim::multitier::{MultiTierApp, MultiTierConfig};

/// CPU deflation levels of Figure 16/17 (0–97 %, matching the paper's
/// 30-core → 1-core sweep).
pub const FIG16_LEVELS: [f64; 11] = [
    0.0, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.9667,
];

/// Deflation levels of Figure 18.
pub const FIG18_LEVELS: [f64; 5] = [0.0, 0.30, 0.50, 0.60, 0.65];

/// Deflation levels of Figure 19 (0–80 %).
pub const FIG19_LEVELS: [f64; 9] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];

/// Run the Wikipedia deflation sweep once and return the per-level stats
/// (shared by Figures 16 and 17).
pub fn wikipedia_sweep(scale: Scale) -> Vec<(f64, LatencyStats)> {
    let config = MultiTierConfig::wikipedia(scale.web_duration_secs(), scale.seed());
    MultiTierApp::deflation_sweep(&config, &FIG16_LEVELS)
}

/// Figure 16: Wikipedia response-time distribution vs CPU deflation.
pub fn fig16(scale: Scale) -> Table {
    let timer = FigureTimer::start();
    let mut table = Table::new(
        "Figure 16: Wikipedia response times with CPU deflation (30-core VM, 800 req/s)",
        &["deflation", "cores", "mean", "median", "p90", "p99"],
    );
    for (d, stats) in wikipedia_sweep(scale) {
        let cores = (30.0 * (1.0 - d)).round();
        table.row(&[
            pct(d),
            format!("{cores:.0}"),
            secs(stats.mean()),
            secs(stats.median()),
            secs(stats.p90()),
            secs(stats.p99()),
        ]);
    }
    timer.wrap(table)
}

/// Figure 17: fraction of Wikipedia requests served vs CPU deflation.
pub fn fig17(scale: Scale) -> Table {
    let timer = FigureTimer::start();
    let mut table = Table::new(
        "Figure 17: Wikipedia requests served vs CPU deflation",
        &["deflation", "requests served"],
    );
    for (d, stats) in wikipedia_sweep(scale) {
        table.row(&[pct(d), pct(stats.served_fraction())]);
    }
    timer.wrap(table)
}

/// Figure 18: social-network (30 microservices) response times vs deflation
/// of 22 deflatable services.
pub fn fig18(scale: Scale) -> Vec<(f64, LatencyStats)> {
    let app = SocialNetworkApp::paper_configuration(500.0);
    app.deflation_sweep(&FIG18_LEVELS, scale.microservice_requests(), scale.seed())
}

/// Figure 18 as a printable table.
pub fn fig18_table(scale: Scale) -> Table {
    let timer = FigureTimer::start();
    let mut table = Table::new(
        "Figure 18: social-network response times (22 of 30 microservices deflated, 500 req/s)",
        &["deflation", "median", "p90", "p99", "served"],
    );
    for (d, stats) in fig18(scale) {
        table.row(&[
            pct(d),
            secs(stats.median()),
            secs(stats.p90()),
            secs(stats.p99()),
            pct(stats.served_fraction()),
        ]);
    }
    timer.wrap(table)
}

/// Figure 19: vanilla vs deflation-aware load balancing over three Wikipedia
/// replicas (two deflatable), 200 req/s.
pub fn fig19(scale: Scale) -> Vec<(f64, LatencyStats, LatencyStats)> {
    let config = WebClusterConfig::figure19(scale.web_duration_secs(), scale.seed());
    WebCluster::policy_comparison(&config, &FIG19_LEVELS)
}

/// Figure 19 as a printable table.
pub fn fig19_table(scale: Scale) -> Table {
    let timer = FigureTimer::start();
    let mut table = Table::new(
        "Figure 19: deflation-aware load balancing (3 replicas, 2 deflatable, 200 req/s)",
        &[
            "deflation",
            "vanilla mean",
            "aware mean",
            "vanilla p90",
            "aware p90",
        ],
    );
    for (d, vanilla, aware) in fig19(scale) {
        table.row(&[
            pct(d),
            secs(vanilla.mean()),
            secs(aware.mean()),
            secs(vanilla.p90()),
            secs(aware.p90()),
        ]);
    }
    timer.wrap(table)
}

/// Convenience: check that the deflation-aware policy improves the p90 tail
/// at a given deflation level (used by tests and the ablation bench).
pub fn aware_lb_tail_improvement(scale: Scale, deflation: f64) -> f64 {
    let config = WebClusterConfig::figure19(scale.web_duration_secs(), scale.seed());
    let vanilla = WebCluster::run(&config, LbPolicy::Vanilla, deflation);
    let aware = WebCluster::run(&config, LbPolicy::DeflationAware, deflation);
    if vanilla.p90() <= 0.0 {
        0.0
    } else {
        1.0 - aware.p90() / vanilla.p90()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16_17_shapes() {
        let sweep = wikipedia_sweep(Scale::Quick);
        assert_eq!(sweep.len(), FIG16_LEVELS.len());
        let base_mean = sweep[0].1.mean();
        let at_50 = sweep.iter().find(|(d, _)| (*d - 0.5).abs() < 1e-9).unwrap();
        let deepest = sweep.last().unwrap();
        // Modest growth at 50 %, large at 97 %.
        assert!(at_50.1.mean() < 3.0 * base_mean);
        assert!(deepest.1.mean() > at_50.1.mean());
        // Served fraction stays ~100 % at 50 %, collapses by 97 %.
        assert!(at_50.1.served_fraction() > 0.99);
        assert!(deepest.1.served_fraction() < 0.9);
        assert!(!fig16(Scale::Quick).is_empty());
        assert!(!fig17(Scale::Quick).is_empty());
    }

    #[test]
    fn fig18_abrupt_beyond_50() {
        let rows = fig18(Scale::Quick);
        let median_at = |target: f64| {
            rows.iter()
                .find(|(d, _)| (*d - target).abs() < 1e-9)
                .map(|(_, s)| s.median())
                .unwrap()
        };
        assert!(median_at(0.5) < 4.0 * median_at(0.0));
        assert!(median_at(0.65) > 5.0 * median_at(0.5));
        assert!(!fig18_table(Scale::Quick).is_empty());
    }

    #[test]
    fn fig19_aware_lb_helps_at_high_deflation() {
        let improvement = aware_lb_tail_improvement(Scale::Quick, 0.8);
        assert!(
            improvement > 0.10,
            "expected ≥10% tail improvement, got {improvement}"
        );
        assert!(!fig19_table(Scale::Quick).is_empty());
    }
}
