//! The engine-profiling experiment (`fig_profile`): where does the
//! simulator spend its wall clock?
//!
//! Replays the `fig_scale` spot-market scenario (same workload, sizes,
//! and knobs) with the `deflate-telemetry` phase profiler enabled and
//! prints a per-phase self-time table per cluster size — the
//! before-picture for ROADMAP item 1 ("break the placement bottleneck"):
//! `placement_rank` is attributed separately from the rest of arrival
//! handling, so a future placement rewrite can be judged against these
//! rows. A Chrome `trace_event` file (openable in Perfetto /
//! `chrome://tracing`) is written per run; `DEFLATE_TRACE_OUT` overrides
//! the output path, which otherwise lands in the system temp directory.
//!
//! The binary enforces the observability acceptance contract and exits
//! non-zero when it breaks: attributed phases must cover ≥ 90 % of the
//! engine total (the profiler's "other" bucket stays small), the
//! placement-ranking phase must be separately attributed, the combined
//! `placement_rank` + `placement_index` share must stay below
//! [`PLACEMENT_SHARE_CEILING`] (the PR 7 incremental-index gate), and
//! the written Chrome trace must validate (parseable JSON array, matched
//! begin/end pairs).

use crate::report::{secs, RuntimeTally, Table, TallyRunStats};
use crate::scale::Scale;
use crate::scale_exp::{run_scale_cell_with_telemetry, scale_workload};
use deflate_core::shard::ShardConfig;
use deflate_telemetry::{
    validate_chrome_trace, ChromeTraceStats, Phase, TelemetryReport, TelemetrySink, TelemetrySpec,
};
use std::path::PathBuf;

/// Fraction of the engine total the attributed phases must cover.
pub const COVERAGE_FLOOR: f64 = 0.90;

/// Ceiling on the combined self-time share of the placement phases
/// (`placement_rank` + `placement_index`) relative to the engine total —
/// the PR 7 placement-bottleneck gate. The PR 6 full-rescan engine
/// measured 54.9% at 10k VMs (75.6% at 100k); the incremental score
/// index must keep the combined share strictly below this ceiling on
/// every profiled size, and CI's `fig_profile quick` smoke step goes red
/// when it creeps back up.
pub const PLACEMENT_SHARE_CEILING: f64 = 0.40;

/// The shard count the profile runs under: 2, so the coordinator/worker
/// split (heapify, utilisation sampling) shows up in the per-shard rows
/// without drowning a small CI host.
pub const PROFILE_SHARDS: usize = 2;

/// One profiled run of the spot-market scenario.
#[derive(Debug)]
pub struct ProfileRun {
    /// VMs in the replayed trace.
    pub vms: usize,
    /// Servers the cluster was sized to.
    pub servers: usize,
    /// Engine shard count.
    pub shards: usize,
    /// Events the engine delivered.
    pub events: u64,
    /// Wall-clock duration of the run, seconds.
    pub wall_clock_secs: f64,
    /// Everything the sink collected (phase report, metrics, trace
    /// counters).
    pub report: TelemetryReport,
    /// Validation result for the written Chrome trace.
    pub trace: Result<ChromeTraceStats, String>,
    /// Where the Chrome trace was written.
    pub trace_path: PathBuf,
}

impl ProfileRun {
    /// Fraction of the engine total covered by attributed phases (`None`
    /// before any run).
    pub fn coverage(&self) -> Option<f64> {
        self.report.phases.coverage()
    }

    /// True when this run satisfies the acceptance contract: coverage at
    /// or above [`COVERAGE_FLOOR`], `placement_rank` separately
    /// attributed (non-zero count), the combined placement share strictly
    /// below [`PLACEMENT_SHARE_CEILING`], and a valid Chrome trace.
    pub fn accepted(&self) -> bool {
        self.coverage().is_some_and(|c| c >= COVERAGE_FLOOR)
            && self.placement_rank_attributed()
            && self
                .placement_share()
                .is_some_and(|s| s < PLACEMENT_SHARE_CEILING)
            && self.trace.is_ok()
    }

    /// Combined self-time share of `placement_rank` + `placement_index`
    /// relative to the engine total (`None` before any run). This is the
    /// number ROADMAP item 1 is judged by: what fraction of the engine's
    /// wall clock goes to ranking servers for arrivals.
    pub fn placement_share(&self) -> Option<f64> {
        let total = self.report.phases.engine_total.as_secs_f64();
        if total <= 0.0 {
            return None;
        }
        let placement: f64 = self
            .report
            .phases
            .phases
            .iter()
            .filter(|row| matches!(row.phase, Phase::PlacementRank | Phase::PlacementIndex))
            .map(|row| row.self_time.as_secs_f64())
            .sum();
        Some(placement / total)
    }

    /// True when the placement-ranking phase was entered at least once —
    /// the attribution ROADMAP item 1 is judged against.
    pub fn placement_rank_attributed(&self) -> bool {
        self.report
            .phases
            .phases
            .iter()
            .any(|row| row.phase == Phase::PlacementRank && row.count > 0)
    }

    /// Human-readable reasons this run fails acceptance (empty when
    /// [`accepted`](Self::accepted)).
    pub fn failures(&self) -> Vec<String> {
        let mut reasons = Vec::new();
        match self.coverage() {
            Some(c) if c >= COVERAGE_FLOOR => {}
            Some(c) => reasons.push(format!(
                "phase coverage {:.1}% below the {:.0}% floor at {} VMs",
                100.0 * c,
                100.0 * COVERAGE_FLOOR,
                self.vms
            )),
            None => reasons.push(format!("no phases profiled at {} VMs", self.vms)),
        }
        if !self.placement_rank_attributed() {
            reasons.push(format!(
                "placement_rank not separately attributed at {} VMs",
                self.vms
            ));
        }
        match self.placement_share() {
            Some(s) if s < PLACEMENT_SHARE_CEILING => {}
            Some(s) => reasons.push(format!(
                "placement share {:.1}% at or above the {:.0}% ceiling at {} VMs \
                 (placement_rank + placement_index of engine total)",
                100.0 * s,
                100.0 * PLACEMENT_SHARE_CEILING,
                self.vms
            )),
            None => {}
        }
        if let Err(err) = &self.trace {
            reasons.push(format!(
                "Chrome trace {} invalid at {} VMs: {err}",
                self.trace_path.display(),
                self.vms
            ));
        }
        reasons
    }
}

/// Where the run's Chrome trace goes: `DEFLATE_TRACE_OUT` if set (one
/// run's trace — with multiple sizes the last run wins), otherwise a
/// per-size, pid-suffixed file in the system temp directory.
pub fn trace_path_for(vms: usize) -> PathBuf {
    if let Ok(path) = std::env::var("DEFLATE_TRACE_OUT") {
        if !path.is_empty() {
            return PathBuf::from(path);
        }
    }
    std::env::temp_dir().join(format!(
        "fig_profile_{}vms_{}.trace.json",
        vms,
        std::process::id()
    ))
}

/// Profile one cluster size of the spot-market scenario.
pub fn profile_cell(scale: Scale, vms: usize) -> std::io::Result<ProfileRun> {
    let trace_path = trace_path_for(vms);
    let spec = TelemetrySpec::profiling().with_chrome_trace(&trace_path);
    let sink = TelemetrySink::from_spec(&spec)?;
    let workload = scale_workload(scale, vms);
    let (result, servers) = run_scale_cell_with_telemetry(
        &workload,
        scale,
        ShardConfig::with_shards(PROFILE_SHARDS),
        sink.clone(),
    );
    let report = sink.finish()?;
    let trace = match std::fs::read_to_string(&trace_path) {
        Ok(text) => validate_chrome_trace(&text),
        Err(err) => Err(format!("unreadable: {err}")),
    };
    Ok(ProfileRun {
        vms,
        servers,
        shards: PROFILE_SHARDS,
        events: result.runtime.events_processed,
        wall_clock_secs: result.runtime.wall_clock_secs,
        report,
        trace,
        trace_path,
    })
}

/// Profile every cluster size of the scale preset's sweep.
pub fn profile_sweep(scale: Scale) -> std::io::Result<Vec<ProfileRun>> {
    scale
        .scale_sweep_vms()
        .iter()
        .map(|&vms| profile_cell(scale, vms))
        .collect()
}

/// One profiled run as the printable per-phase table: self time (child
/// spans subtracted), share of the engine total, and entry count — plus
/// the unattributed remainder (`other`) and the engine total, which the
/// phase rows and `other` sum to exactly.
pub fn phase_table(run: &ProfileRun) -> Table {
    let mut table = Table::new(
        &format!(
            "Engine phase profile: {} VMs, {} servers, {} shards (coverage {})",
            run.vms,
            run.servers,
            run.shards,
            run.coverage()
                .map_or_else(|| "n/a".to_string(), |c| format!("{:.1}%", 100.0 * c)),
        ),
        &["phase", "self time", "share", "count"],
    );
    let total = run.report.phases.engine_total.as_secs_f64();
    let share = |t: f64| {
        if total > 0.0 {
            format!("{:.1}%", 100.0 * t / total)
        } else {
            "n/a".to_string()
        }
    };
    for row in &run.report.phases.phases {
        if row.phase == Phase::EngineTotal {
            continue;
        }
        let t = row.self_time.as_secs_f64();
        table.row(&[
            row.phase.name().to_string(),
            secs(t),
            share(t),
            row.count.to_string(),
        ]);
    }
    let other = run.report.phases.other.as_secs_f64();
    table.row(&[
        "other".to_string(),
        secs(other),
        share(other),
        "-".to_string(),
    ]);
    table.row(&[
        "engine_total".to_string(),
        secs(total),
        share(total),
        "-".to_string(),
    ]);
    let mut tally = RuntimeTally::default();
    tally.add(deflate_cluster::metrics::RunStats {
        wall_clock_secs: run.wall_clock_secs,
        events_processed: run.events,
        shards: run.shards,
    });
    table.set_footer(tally.footer());
    table
}

/// The per-shard breakdown of worker-side phases (heapify, utilisation
/// sampling) as a table; empty when the run was sequential.
pub fn shard_table(run: &ProfileRun) -> Table {
    let mut table = Table::new(
        &format!("Per-shard worker phases: {} VMs", run.vms),
        &["shard", "phase", "time", "count"],
    );
    for row in &run.report.phases.shards {
        table.row(&[
            row.shard.to_string(),
            row.phase.name().to_string(),
            secs(row.time.as_secs_f64()),
            row.count.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end on a small profiled run: the acceptance contract the
    /// binary enforces must hold, and the phase table must carry the
    /// load-bearing rows. 2 000 VMs rather than a few hundred: with the
    /// incremental index the engine's per-event work is cheap, so at
    /// tiny sizes the profiler's fixed per-span overhead dominates the
    /// "other" bucket and coverage dips below the floor the real
    /// (10k/100k) gate sizes comfortably clear.
    #[test]
    fn mini_profile_meets_the_acceptance_contract() {
        let run = profile_cell(Scale::Quick, 2_000).expect("profile run");
        assert!(run.accepted(), "acceptance failures: {:?}", run.failures());
        let share = run.placement_share().expect("engine total profiled");
        assert!(
            share < PLACEMENT_SHARE_CEILING,
            "placement share {share:.3} at/above ceiling"
        );
        assert!(share > 0.0, "placement phases attributed no time at all");
        let stats = run.trace.as_ref().expect("valid trace");
        assert!(stats.spans > 0);
        assert!(stats.threads >= 2, "coordinator + worker tids expected");
        let rendered = phase_table(&run).render();
        assert!(rendered.contains("placement_rank"));
        assert!(rendered.contains("coordinator_merge"));
        assert!(rendered.contains("engine_total"));
        assert!(rendered.contains("engine:"), "runtime footer expected");
        let shards = shard_table(&run);
        assert!(!shards.is_empty(), "worker shard rows expected");
        let _ = std::fs::remove_file(&run.trace_path);
    }

    #[test]
    fn trace_path_env_override_shape() {
        // No env manipulation (tests run in parallel): check the default
        // path shape only.
        let path = trace_path_for(123);
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with("fig_profile_123vms_"));
        assert!(name.ends_with(".trace.json"));
    }
}
