//! The elastic-autoscaling experiment: launch-only vs deflation-aware
//! scaling under transient capacity (`fig_autoscale`).
//!
//! The paper's closing argument is that deflation makes transient
//! capacity safe for *elastic* applications (§1, §8). This experiment
//! hosts one elastic interactive application — a replica pool serving a
//! diurnal request wave — on the usual Azure-derived background workload,
//! while the provider reclaims capacity underneath it, and compares the
//! two enabled [`AutoscalePolicy`] variants:
//!
//! * **launch-only** — scale out by launching new replicas (each pays a
//!   boot delay before serving, and the launch can be *rejected* outright
//!   while a reclamation squeezes the cluster), scale in by terminating
//!   them: today's cloud autoscalers;
//! * **deflation-aware** — scale in by *parking* replicas deflated, scale
//!   out by *reinflating* them: the capacity returns instantly and no
//!   launch can fail, because the VM never left.
//!
//! The headline metrics are the application's response-time profile
//! (per-tick processor-sharing latency, `deflate-appsim`'s
//! `LatencyStats`), its overload fraction, and the replicas lost to
//! reclamations — deflation-aware elasticity wins on tail latency because
//! ramps are served from parked capacity instead of cold boots.

use crate::report::{pct, RuntimeTally, Table, TallyRunStats};
use crate::scale::Scale;
use crate::transient_exp::{default_migration_cost, transient_workload};
use deflate_autoscale::{AutoscalePolicy, DemandCurve, ElasticApp};
use deflate_cluster::manager::{ClusterConfig, PlacementKind, ReclamationMode};
use deflate_cluster::metrics::SimResult;
use deflate_cluster::sim::ClusterSimulation;
use deflate_cluster::spec::{paper_server_capacity, servers_for_transient_overcommitment};
use deflate_core::placement::PartitionScheme;
use deflate_core::policy::{AutoscaleParams, ProportionalDeflation};
use deflate_core::vm::Priority;
use deflate_hypervisor::domain::DeflationMechanism;
use deflate_transient::signal::{CapacityProfile, CapacitySchedule, TransientConfig};
use std::sync::Arc;

/// Utilisation-tick (and therefore autoscaler-observation) interval,
/// seconds. Deliberately shorter than the boot delay so the latency cost
/// of cold launches is visible in the tick samples.
pub const AUTOSCALE_TICK_SECS: f64 = 120.0;

/// First VM id of the elastic replica range — far above any trace VM id.
pub const REPLICA_IDS_FROM: u64 = 10_000_000;

/// The autoscaling policies the experiment compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutoscaleVariant {
    /// Launch / terminate target tracking (today's autoscalers).
    LaunchOnly,
    /// Park / reinflate target tracking (the paper's claim applied to
    /// elasticity).
    DeflationAware,
}

impl AutoscaleVariant {
    /// Both variants in report order.
    pub const ALL: [AutoscaleVariant; 2] = [
        AutoscaleVariant::LaunchOnly,
        AutoscaleVariant::DeflationAware,
    ];

    /// The shared control-loop tuning: 60 % setpoint, five-minute
    /// cooldown, 30 s actuation delay, five-minute boot time, replicas
    /// parked at 10 % of their allocation.
    pub fn params() -> AutoscaleParams {
        AutoscaleParams {
            setpoint: 0.6,
            deadband: 0.1,
            cooldown_secs: 300.0,
            actuation_delay_secs: 30.0,
            boot_secs: 300.0,
            park_fraction: 0.1,
            max_step: 8,
        }
    }

    /// The [`AutoscalePolicy`] this variant runs under.
    pub fn policy(&self) -> AutoscalePolicy {
        match self {
            AutoscaleVariant::LaunchOnly => AutoscalePolicy::TargetTracking(Self::params()),
            AutoscaleVariant::DeflationAware => AutoscalePolicy::DeflationAware(Self::params()),
        }
    }

    /// Display name (matches the policy's).
    pub fn name(&self) -> &'static str {
        self.policy().name()
    }
}

/// The capacity signals the experiment sweeps: smooth day/night
/// harvesting and bursty spot-market revocations.
pub fn autoscale_profiles() -> [CapacityProfile; 2] {
    [
        CapacityProfile::diurnal_default(),
        CapacityProfile::spot_market_default(),
    ]
}

/// The elastic application every run hosts: 4-core interactive replicas
/// serving a diurnal request wave that swings between ~7 and ~34 desired
/// replicas at the 60 % setpoint. The demand peaks at t = 0, so the pool
/// scales in first — building the parked reserve the deflation-aware
/// policy later reinflates — and then climbs back.
pub fn elastic_app() -> ElasticApp {
    ElasticApp {
        app: 0,
        replica_size: deflate_core::resources::ResourceVector::cpu_mem(4000.0, 8192.0),
        replica_priority: Priority::new(0.5),
        replica_rate_rps: 100.0,
        replica_ids_from: REPLICA_IDS_FROM,
        min_replicas: 2,
        max_replicas: 40,
        demand: DemandCurve::Diurnal {
            base_rps: 400.0,
            peak_rps: 2000.0,
            period_secs: 6.0 * 3600.0,
            peak_at_secs: 0.0,
        },
        start_secs: 0.0,
    }
}

/// Run one autoscaling variant under one capacity profile, on the shared
/// transient background workload. The cluster is sized for the background
/// at the profile's mean availability, plus head-room for the elastic
/// pool at its maximum size — so pressure comes from the *reclamations*,
/// not from a statically impossible packing. Reclamation runs the paper's
/// deflation ladder; migrations are charged the default cost model.
pub fn run_autoscale(
    workload: &[deflate_cluster::spec::WorkloadVm],
    scale: Scale,
    variant: AutoscaleVariant,
    profile: CapacityProfile,
) -> SimResult {
    let capacity = paper_server_capacity();
    let app = elastic_app();
    let background =
        servers_for_transient_overcommitment(workload, capacity, 0.0, profile.mean_availability());
    let elastic_servers =
        (app.max_replicas as f64 * app.replica_size.cpu() / capacity.cpu()).ceil() as usize;
    let servers = background + elastic_servers;
    let schedule = CapacitySchedule::generate(&TransientConfig {
        num_servers: servers,
        transient_fraction: 1.0,
        duration_secs: scale.cluster_trace_hours() * 3600.0,
        profile,
        seed: scale.seed(),
    });
    let config = ClusterConfig {
        num_servers: servers,
        server_capacity: capacity,
        placement: PlacementKind::CosineFitness,
        partitions: PartitionScheme::None,
        mechanism: DeflationMechanism::Transparent,
    };
    ClusterSimulation::new(
        config,
        ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
    )
    .with_capacity_schedule(schedule)
    .with_migrate_back(true)
    .with_migration_cost(default_migration_cost())
    .with_utilization_ticks(AUTOSCALE_TICK_SECS)
    .with_autoscale(variant.policy(), vec![app])
    .run(workload)
}

/// The `fig_autoscale` table: policy × capacity signal, with the
/// application's latency profile and the elasticity accounting.
pub fn fig_autoscale_table(scale: Scale) -> Table {
    let mut table = Table::new(
        "Elastic autoscaling under transient capacity: launch-only vs deflation-aware",
        &[
            "profile",
            "policy",
            "scale-out",
            "scale-in",
            "launches",
            "launch-fail",
            "reinflated",
            "parked",
            "replicas lost",
            "SLO met",
            "mean ms",
            "p99 ms",
        ],
    );
    let workload = transient_workload(scale);
    let mut tally = RuntimeTally::default();
    for profile in autoscale_profiles() {
        for variant in AutoscaleVariant::ALL {
            let result = run_autoscale(&workload, scale, variant, profile);
            let stats = &result.autoscale;
            tally.add(result.runtime);
            table.row(&[
                profile.name().to_string(),
                variant.name().to_string(),
                stats.scale_out_actions.to_string(),
                stats.scale_in_actions.to_string(),
                stats.launches.to_string(),
                stats.launch_failures.to_string(),
                stats.reinflations.to_string(),
                stats.parks.to_string(),
                stats.replicas_lost.to_string(),
                pct(stats.slo_fraction()),
                format!("{:.1}", stats.mean_latency_secs() * 1000.0),
                format!("{:.1}", stats.p99_latency_secs() * 1000.0),
            ]);
        }
    }
    table.set_footer(tally.footer());
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_one_row_per_policy_and_profile() {
        let table = fig_autoscale_table(Scale::Quick);
        assert_eq!(
            table.len(),
            autoscale_profiles().len() * AutoscaleVariant::ALL.len()
        );
    }

    /// The acceptance check of the autoscaling subsystem: under
    /// spot-market reclamation, deflation-aware elasticity beats
    /// launch-only scaling on at least one headline metric — tail latency
    /// or replicas lost — and never loses on both.
    #[test]
    fn deflation_aware_beats_launch_only_under_spot_reclamation() {
        let workload = transient_workload(Scale::Quick);
        let profile = CapacityProfile::spot_market_default();
        let launch = run_autoscale(
            &workload,
            Scale::Quick,
            AutoscaleVariant::LaunchOnly,
            profile,
        );
        let deflate = run_autoscale(
            &workload,
            Scale::Quick,
            AutoscaleVariant::DeflationAware,
            profile,
        );
        let (l, d) = (&launch.autoscale, &deflate.autoscale);
        // The mechanisms actually engaged.
        assert!(l.launches > 0 && d.launches > 0);
        assert!(d.reinflations > 0, "deflation-aware must reinflate: {d:?}");
        assert!(d.parks > 0);
        assert_eq!(l.reinflations, 0, "launch-only must never reinflate");
        assert!(l.retirements > 0, "launch-only must terminate on scale-in");
        // Headline: better tail latency or fewer replicas lost...
        let latency_better =
            d.p99_latency_secs() < l.p99_latency_secs() || d.slo_fraction() > l.slo_fraction();
        let losses_better = d.replicas_lost < l.replicas_lost;
        assert!(
            latency_better || losses_better,
            "deflation-aware must improve a headline metric: \
             p99 {:.3}s vs {:.3}s, SLO {:.3} vs {:.3}, lost {} vs {}",
            d.p99_latency_secs(),
            l.p99_latency_secs(),
            d.slo_fraction(),
            l.slo_fraction(),
            d.replicas_lost,
            l.replicas_lost
        );
        // ... and no headline regression on the other axis.
        assert!(
            d.slo_fraction() >= l.slo_fraction() - 0.05,
            "SLO regressed: {:.3} vs {:.3}",
            d.slo_fraction(),
            l.slo_fraction()
        );
        // Both runs are conserved and deterministic.
        assert!(l.replicas_conserved());
        assert!(d.replicas_conserved());
    }
}
