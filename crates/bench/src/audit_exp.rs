//! The divergence-diagnosis experiment (`deflate-audit`): exercise the
//! checkpoint-bisection diagnoser of `deflate-cluster::bisect` against a
//! matrix of run pairs with known ground truth.
//!
//! Four pairs must be bit-identical by the repo's standing determinism
//! contracts — sharded vs sequential, telemetry on vs off, auditor on
//! vs off, placement sequential vs parallel — and one pair carries an
//! injected single-knob divergence (FIFO
//! vs smallest-first transfer ordering under contended migration slots).
//! The binary bisects every pair and exits non-zero when an identical
//! pair diverges (a determinism regression) or the injected pair fails
//! to localize to a window no wider than the requested resolution.
//!
//! The scenario is the migration-contention recipe the scheduler sweep
//! uses: migration-only reclamation on spot-market transient servers,
//! tight cluster sizing, a one-link bandwidth budget and a 30 s
//! deadline — the regime where transfer ordering provably reorders the
//! run, so the injected divergence is real, early, and small.

use deflate_cluster::prelude::*;
use deflate_core::audit::AuditSpec;
use deflate_core::checkpoint::CheckpointError;
use deflate_core::shard::ShardConfig;
use deflate_telemetry::{TelemetrySink, TelemetrySpec};
use deflate_traces::azure::{AzureTraceConfig, AzureTraceGenerator};
use deflate_transient::signal::{CapacityProfile, CapacitySchedule, TransientConfig};

use crate::report::{FigureTimer, Table};

/// Simulated horizon of the diagnosis scenario, seconds (4 trace hours).
pub const AUDIT_HORIZON_SECS: f64 = 4.0 * 3600.0;

/// Bisection resolution, seconds: the injected divergence must be
/// localized to a window no wider than this.
pub const AUDIT_RESOLUTION_SECS: f64 = 60.0;

/// One bisected run pair with its ground-truth expectation.
#[derive(Debug)]
pub struct AuditCase {
    /// What distinguishes the pair (e.g. `"shards 1 vs 4"`).
    pub name: String,
    /// Ground truth: whether the pair is expected to diverge.
    pub expect_divergence: bool,
    /// What the bisection reported (`None` = bit-identical horizon).
    pub report: Option<DivergenceReport>,
}

impl AuditCase {
    /// True when the observed outcome matches the ground truth — and,
    /// for an expected divergence, the window is no wider than
    /// [`AUDIT_RESOLUTION_SECS`].
    pub fn accepted(&self) -> bool {
        match (&self.report, self.expect_divergence) {
            (None, false) => true,
            (Some(report), true) => {
                let (lo, hi) = report.window_secs;
                hi - lo <= AUDIT_RESOLUTION_SECS
            }
            _ => false,
        }
    }

    /// Human-readable reasons this case fails acceptance (empty when
    /// [`accepted`](Self::accepted)).
    pub fn failures(&self) -> Vec<String> {
        match (&self.report, self.expect_divergence) {
            (None, false) => Vec::new(),
            (Some(report), true) => {
                let (lo, hi) = report.window_secs;
                if hi - lo <= AUDIT_RESOLUTION_SECS {
                    Vec::new()
                } else {
                    vec![format!(
                        "{}: window ({lo:.3}s, {hi:.3}s] wider than the {AUDIT_RESOLUTION_SECS}s resolution",
                        self.name
                    )]
                }
            }
            (Some(report), false) => vec![format!(
                "{}: determinism regression — identical configs diverged: {report}",
                self.name
            )],
            (None, true) => vec![format!(
                "{}: injected divergence was not detected",
                self.name
            )],
        }
    }
}

/// The deterministic 60-VM Azure-style workload every case replays.
pub fn audit_workload() -> Vec<WorkloadVm> {
    let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
        num_vms: 60,
        duration_hours: AUDIT_HORIZON_SECS / 3600.0,
        seed: 11,
        ..Default::default()
    });
    workload_from_azure(&traces, MinAllocationRule::None)
}

/// Size the cluster tightly against spot-market availability and
/// generate its capacity schedule.
pub fn audit_cluster(workload: &[WorkloadVm]) -> (usize, CapacitySchedule) {
    let profile = CapacityProfile::spot_market_default();
    let servers = servers_for_transient_overcommitment(
        workload,
        paper_server_capacity(),
        0.0,
        profile.mean_availability(),
    );
    let schedule = CapacitySchedule::generate(&TransientConfig {
        num_servers: servers,
        transient_fraction: 1.0,
        duration_secs: AUDIT_HORIZON_SECS,
        profile,
        seed: 11,
    });
    (servers, schedule)
}

/// The migration-contention simulation: migration-only reclamation, a
/// one-link bandwidth budget and a tight deadline, so the transfer
/// policy genuinely reorders the run.
pub fn audit_sim(
    servers: usize,
    schedule: CapacitySchedule,
    policy: TransferPolicy,
) -> ClusterSimulation {
    ClusterSimulation::new(
        ClusterConfig::paper_default(servers),
        ReclamationMode::MigrationOnly,
    )
    .with_capacity_schedule(schedule)
    .with_migrate_back(true)
    .with_migration_cost(
        MigrationCostModel::lan_default()
            .with_budget_mbps(1250.0)
            .with_deadline_secs(30.0),
    )
    .with_transfer_policy(policy)
}

/// Build and bisect the full case matrix. The `io::Error` covers
/// telemetry-sink setup; corrupt snapshots surface as
/// [`CheckpointError`] mapped into an I/O error, since both mean the
/// diagnosis infrastructure itself is broken (distinct from a case
/// *failing*, which the returned cases report).
pub fn audit_matrix() -> std::io::Result<Vec<AuditCase>> {
    let workload = audit_workload();
    let (servers, schedule) = audit_cluster(&workload);
    let fifo = || TransferPolicy::fifo();

    let mut cases = Vec::new();
    let mut run_case = |name: &str,
                        expect_divergence: bool,
                        a: ClusterSimulation,
                        b: ClusterSimulation|
     -> std::io::Result<()> {
        let report =
            bisect_divergence(&a, &b, &workload, AUDIT_HORIZON_SECS, AUDIT_RESOLUTION_SECS)
                .map_err(checkpoint_io_error)?;
        cases.push(AuditCase {
            name: name.to_string(),
            expect_divergence,
            report,
        });
        Ok(())
    };

    run_case(
        "shards 1 vs 4 (identical)",
        false,
        audit_sim(servers, schedule.clone(), fifo()),
        audit_sim(servers, schedule.clone(), fifo()).with_shards(ShardConfig::with_shards(4)),
    )?;
    run_case(
        "telemetry off vs metrics on (identical)",
        false,
        audit_sim(servers, schedule.clone(), fifo()),
        audit_sim(servers, schedule.clone(), fifo()).with_telemetry(TelemetrySink::from_spec(
            &TelemetrySpec {
                metrics: true,
                ..TelemetrySpec::default()
            },
        )?),
    )?;
    run_case(
        "auditor off vs all checkers on (identical)",
        false,
        audit_sim(servers, schedule.clone(), fifo()),
        audit_sim(servers, schedule.clone(), fifo()).with_audit(AuditSpec::all()),
    )?;
    run_case(
        "placement sequential vs parallel (identical)",
        false,
        audit_sim(servers, schedule.clone(), fifo()),
        audit_sim(servers, schedule.clone(), fifo())
            .with_placement_engine(deflate_core::placement::PlacementEngine::parallel(4)),
    )?;
    run_case(
        "fifo vs smallest-first (injected divergence)",
        true,
        audit_sim(servers, schedule.clone(), fifo()),
        audit_sim(servers, schedule, TransferPolicy::smallest_first()),
    )?;
    Ok(cases)
}

fn checkpoint_io_error(err: CheckpointError) -> std::io::Error {
    std::io::Error::other(format!("snapshot corrupt during bisection: {err}"))
}

/// The case matrix as a printable table: one row per pair with its
/// expectation, outcome, first divergent window/field and probe count.
pub fn audit_table(cases: &[AuditCase], timer: FigureTimer) -> Table {
    let mut table = Table::new(
        &format!(
            "Checkpoint-bisection divergence diagnosis ({AUDIT_RESOLUTION_SECS} s resolution)"
        ),
        &[
            "pair",
            "expected",
            "observed",
            "window",
            "first divergent field",
            "probes",
        ],
    );
    for case in cases {
        let expected = if case.expect_divergence {
            "diverges"
        } else {
            "identical"
        };
        let (observed, window, field, probes) = match &case.report {
            None => (
                "identical".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ),
            Some(report) => (
                "diverges".to_string(),
                format!(
                    "({:.0}s, {:.0}s]",
                    report.window_secs.0, report.window_secs.1
                ),
                report.diff.field.clone(),
                report.probes.to_string(),
            ),
        };
        table.row(&[
            case.name.clone(),
            expected.to_string(),
            observed,
            window,
            field,
            probes,
        ]);
    }
    timer.wrap(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The checked-in CI smoke: every identical pair bisects to "no
    /// divergence" and the injected transfer-policy divergence is
    /// localized to one resolution window.
    #[test]
    fn matrix_matches_ground_truth() {
        let cases = audit_matrix().expect("bisection infrastructure");
        assert_eq!(cases.len(), 5);
        let failures: Vec<String> = cases.iter().flat_map(|c| c.failures()).collect();
        assert!(failures.is_empty(), "{failures:?}");
        let injected = cases.last().unwrap();
        let report = injected.report.as_ref().expect("injected divergence found");
        assert!(report.diff.field.len() > 1, "diff names a field");
        let rendered = audit_table(&cases, FigureTimer::start()).render();
        assert!(rendered.contains("injected divergence"));
        assert!(rendered.contains("engine:"), "runtime footer expected");
    }

    /// Acceptance judgments explain themselves.
    #[test]
    fn failure_reasons_name_the_broken_expectation() {
        let missed = AuditCase {
            name: "injected".to_string(),
            expect_divergence: true,
            report: None,
        };
        assert!(!missed.accepted());
        assert!(missed.failures()[0].contains("not detected"));

        let regressed = AuditCase {
            name: "shards".to_string(),
            expect_divergence: false,
            report: Some(DivergenceReport {
                window_secs: (0.0, 60.0),
                events_processed: (1, 1),
                diff: SnapshotDiff {
                    field: "at_secs".to_string(),
                    a: "0".to_string(),
                    b: "1".to_string(),
                },
                probes: 2,
            }),
        };
        assert!(!regressed.accepted());
        assert!(regressed.failures()[0].contains("determinism regression"));
    }
}
