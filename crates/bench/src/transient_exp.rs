//! The transient-capacity experiment: deflation vs. preemption vs.
//! migration-only under provider-side capacity dynamics.
//!
//! This is the paper's headline scenario (§2, §7.4): servers are
//! *transient* — the provider reclaims part of their capacity and restores
//! it later — and the question is how much of that shock each reclamation
//! strategy absorbs. For each of the three capacity profiles of
//! `deflate-transient` (square wave, diurnal, spot market) the experiment
//! replays the same Azure-derived workload on the same seeded schedule and
//! reports reclamation-failure probability, throughput loss, migration
//! counts (with their page-transfer cost) and revenue per server.
//!
//! Migration is **not free** here: every transfer is priced by the
//! [`MigrationCostModel`] of `deflate-hypervisor` (page-copy time over a
//! shared per-server bandwidth budget, racing the provider's reclamation
//! deadline), which is precisely what makes the migration-only baseline
//! lose VMs the paper's deflation proposal keeps alive. The
//! [`bandwidth_sweep_table`] experiment sweeps the per-server budget to
//! show the effect directly.

use crate::report::{pct, Table};
use crate::scale::Scale;
use deflate_cluster::manager::{ClusterConfig, PlacementKind, ReclamationMode};
use deflate_cluster::metrics::SimResult;
use deflate_cluster::sim::ClusterSimulation;
use deflate_cluster::spec::{
    paper_server_capacity, servers_for_transient_overcommitment, workload_from_azure,
    MinAllocationRule,
};
use deflate_core::placement::PartitionScheme;
use deflate_core::policy::ProportionalDeflation;
use deflate_core::pricing::{PricingPolicy, RateCard};
use deflate_hypervisor::domain::DeflationMechanism;
use deflate_hypervisor::migration::MigrationCostModel;
use deflate_traces::azure::{AzureTraceConfig, AzureTraceGenerator};
use deflate_transient::signal::{CapacityProfile, CapacitySchedule, TransientConfig};
use std::sync::Arc;

/// The reclamation strategies compared under transient capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientMode {
    /// Proportional deflation with deflation-aware migration fallback (the
    /// paper's proposal).
    Deflation,
    /// Kill lowest-priority residents on every reclamation (today's
    /// transient offerings).
    Preemption,
    /// Migrate residents at full size, never deflate (the live-migration
    /// strawman of §2).
    MigrationOnly,
}

impl TransientMode {
    /// All modes in report order.
    pub const ALL: [TransientMode; 3] = [
        TransientMode::Deflation,
        TransientMode::Preemption,
        TransientMode::MigrationOnly,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TransientMode::Deflation => "deflation",
            TransientMode::Preemption => "preemption",
            TransientMode::MigrationOnly => "migration-only",
        }
    }

    fn mode(&self) -> ReclamationMode {
        match self {
            TransientMode::Deflation => {
                ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default()))
            }
            TransientMode::Preemption => ReclamationMode::Preemption,
            TransientMode::MigrationOnly => ReclamationMode::MigrationOnly,
        }
    }
}

/// The three capacity profiles the experiment sweeps, at the defaults of
/// `deflate-transient`.
pub fn profiles() -> [CapacityProfile; 3] {
    [
        CapacityProfile::square_wave_default(),
        CapacityProfile::diurnal_default(),
        CapacityProfile::spot_market_default(),
    ]
}

/// The Azure-derived workload all transient experiments replay (depends
/// only on the scale, so callers sweeping modes/profiles should build it
/// once and pass it to [`run_transient_on`]).
pub fn transient_workload(scale: Scale) -> Vec<deflate_cluster::spec::WorkloadVm> {
    let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
        num_vms: scale.cluster_vms(),
        duration_hours: scale.cluster_trace_hours(),
        seed: scale.seed(),
        ..Default::default()
    });
    workload_from_azure(&traces, MinAllocationRule::None)
}

/// The migration cost model all transient experiments charge by default: a
/// 10 GbE link per transfer, 30 % dirty-page overhead, a one-link
/// per-server budget (transfers off the same server serialise) and the
/// 30-second preemption notice GCP-style transient offerings give — short
/// enough that draining a well-packed server by migration alone races the
/// deadline.
pub fn default_migration_cost() -> MigrationCostModel {
    MigrationCostModel::lan_default()
        .with_budget_mbps(1250.0)
        .with_deadline_secs(30.0)
}

/// Run one mode under one capacity profile with the default migration cost
/// model. The cluster is sized for the profile's mean availability (so all
/// modes face the same, non-trivial pressure), all servers are transient,
/// and displaced VMs migrate back when capacity returns.
pub fn run_transient(scale: Scale, mode: TransientMode, profile: CapacityProfile) -> SimResult {
    run_transient_on(&transient_workload(scale), scale, mode, profile)
}

/// [`run_transient`] with a pre-built workload, for callers sweeping many
/// (mode, profile) pairs over the same trace.
pub fn run_transient_on(
    workload: &[deflate_cluster::spec::WorkloadVm],
    scale: Scale,
    mode: TransientMode,
    profile: CapacityProfile,
) -> SimResult {
    run_transient_costed(workload, scale, mode, profile, default_migration_cost())
}

/// [`run_transient_on`] with an explicit migration cost model (used by the
/// bandwidth sweep; pass [`MigrationCostModel::instant`] to reproduce the
/// historical free-migration comparison).
pub fn run_transient_costed(
    workload: &[deflate_cluster::spec::WorkloadVm],
    scale: Scale,
    mode: TransientMode,
    profile: CapacityProfile,
    cost: MigrationCostModel,
) -> SimResult {
    let capacity = paper_server_capacity();
    let servers =
        servers_for_transient_overcommitment(workload, capacity, 0.0, profile.mean_availability());
    let schedule = CapacitySchedule::generate(&TransientConfig {
        num_servers: servers,
        transient_fraction: 1.0,
        duration_secs: scale.cluster_trace_hours() * 3600.0,
        profile,
        seed: scale.seed(),
    });
    let config = ClusterConfig {
        num_servers: servers,
        server_capacity: capacity,
        placement: PlacementKind::CosineFitness,
        partitions: PartitionScheme::None,
        mechanism: DeflationMechanism::Transparent,
    };
    ClusterSimulation::new(config, mode.mode())
        .with_capacity_schedule(schedule)
        .with_migrate_back(true)
        .with_migration_cost(cost)
        .run(workload)
}

/// The transient-capacity comparison as a printable table: one row per
/// (profile, mode) pair, with the migration cost that used to be invisible
/// (total page-transfer seconds, volume moved, deadline aborts).
pub fn fig_transient_table(scale: Scale) -> Table {
    let mut table = Table::new(
        "Transient capacity: deflation vs preemption vs migration under reclamation",
        &[
            "profile",
            "mode",
            "failure probability",
            "evictions",
            "throughput loss",
            "migrations",
            "migration secs",
            "moved GiB",
            "aborts",
            "revenue/server",
        ],
    );
    let rates = RateCard::default();
    let pricing = PricingPolicy::static_default();
    let workload = transient_workload(scale);
    for profile in profiles() {
        for mode in TransientMode::ALL {
            let result = run_transient_on(&workload, scale, mode, profile);
            table.row(&[
                profile.name().to_string(),
                mode.name().to_string(),
                pct(result.failure_probability()),
                pct(result.eviction_probability()),
                pct(result.mean_throughput_loss()),
                result.migration_count().to_string(),
                format!("{:.1}", result.total_migration_secs()),
                format!("{:.1}", result.total_migration_volume_mb() / 1024.0),
                result.migration_abort_count().to_string(),
                format!(
                    "{:.1}",
                    result.deflatable_revenue_per_server(&pricing, &rates)
                ),
            ]);
        }
    }
    table
}

/// Per-server migration-bandwidth budgets the sweep explores, MiB/s
/// (`INFINITY` reproduces the free-migration baseline).
pub const BANDWIDTH_SWEEP_MBPS: [f64; 5] = [f64::INFINITY, 2500.0, 1250.0, 625.0, 312.5];

/// The bandwidth-sweep experiment: deflation vs migration-only under the
/// bursty spot-market profile as the per-server migration-bandwidth budget
/// shrinks. With generous bandwidth the migration-only baseline looks
/// almost free; every halving of the budget queues more transfers past the
/// reclamation deadline, turning them into aborts and evictions — while
/// deflation barely migrates at all. One row per (budget, mode) pair.
pub fn bandwidth_sweep_table(scale: Scale) -> Table {
    let mut table = Table::new(
        "Migration-bandwidth sweep under spot-market reclamation",
        &[
            "budget MiB/s",
            "mode",
            "failure probability",
            "evictions+aborts",
            "migrations",
            "mean migration secs",
            "aborts",
        ],
    );
    let workload = transient_workload(scale);
    let profile = CapacityProfile::spot_market_default();
    for budget in BANDWIDTH_SWEEP_MBPS {
        for mode in [TransientMode::Deflation, TransientMode::MigrationOnly] {
            let cost = if budget.is_infinite() {
                MigrationCostModel::instant()
            } else {
                default_migration_cost().with_budget_mbps(budget)
            };
            let result = run_transient_costed(&workload, scale, mode, profile, cost);
            table.row(&[
                if budget.is_infinite() {
                    "unlimited (free)".to_string()
                } else {
                    format!("{budget:.0}")
                },
                mode.name().to_string(),
                pct(result.failure_probability()),
                result.eviction_or_abort_count().to_string(),
                result.migration_count().to_string(),
                format!("{:.2}", result.mean_migration_secs()),
                result.migration_abort_count().to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deflation_beats_preemption_under_every_profile() {
        for profile in profiles() {
            let deflation = run_transient(Scale::Quick, TransientMode::Deflation, profile);
            let preemption = run_transient(Scale::Quick, TransientMode::Preemption, profile);
            assert!(
                deflation.failure_probability() < preemption.failure_probability(),
                "{}: deflation {} vs preemption {}",
                profile.name(),
                deflation.failure_probability(),
                preemption.failure_probability()
            );
            // Capacity actually moved.
            assert!(deflation.transient.reclaim_events > 0);
        }
    }

    #[test]
    fn migration_only_records_migrations_with_nonzero_cost() {
        let result = run_transient(
            Scale::Quick,
            TransientMode::MigrationOnly,
            CapacityProfile::square_wave_default(),
        );
        assert!(
            result.transient.migrations > 0,
            "expected migrations, counters: {:?}",
            result.transient
        );
        assert_eq!(result.migration_count(), result.migrations.len());
        // Migration is no longer free: completed transfers took wall-clock
        // time and moved bytes.
        assert!(
            result.total_migration_secs() > 0.0,
            "migrations must be charged transfer time"
        );
        assert!(result.total_migration_volume_mb() > 0.0);
        assert!(result
            .migrations
            .iter()
            .all(|m| m.duration_secs > 0.0 && m.volume_mb > 0.0));
    }

    /// The acceptance check of the migration-cost model: under the bursty
    /// spot-market profile with a finite per-server bandwidth budget, the
    /// migration-only baseline loses strictly more VMs to evictions and
    /// deadline aborts than deflation does.
    #[test]
    fn finite_bandwidth_makes_migration_only_lose_more_vms_than_deflation() {
        let workload = transient_workload(Scale::Quick);
        let profile = CapacityProfile::spot_market_default();
        let cost = default_migration_cost();
        let deflation = run_transient_costed(
            &workload,
            Scale::Quick,
            TransientMode::Deflation,
            profile,
            cost,
        );
        let migration = run_transient_costed(
            &workload,
            Scale::Quick,
            TransientMode::MigrationOnly,
            profile,
            cost,
        );
        assert!(
            migration.eviction_or_abort_count() > deflation.eviction_or_abort_count(),
            "migration-only evictions+aborts {} must exceed deflation's {}",
            migration.eviction_or_abort_count(),
            deflation.eviction_or_abort_count()
        );
        // The costed run reports its durations and aborts in the counters.
        assert!(migration.total_migration_secs() > 0.0);
        assert!(
            migration.migration_abort_count() > 0,
            "a one-link budget under spot outages must abort some transfers: {:?}",
            migration.transient
        );
    }

    #[test]
    fn tables_have_one_row_per_mode_and_profile() {
        let table = fig_transient_table(Scale::Quick);
        assert_eq!(table.len(), profiles().len() * TransientMode::ALL.len());
        let sweep = bandwidth_sweep_table(Scale::Quick);
        assert_eq!(sweep.len(), BANDWIDTH_SWEEP_MBPS.len() * 2);
    }
}
