//! The transient-capacity experiment: deflation vs. preemption vs.
//! migration-only under provider-side capacity dynamics.
//!
//! This is the paper's headline scenario (§2, §7.4): servers are
//! *transient* — the provider reclaims part of their capacity and restores
//! it later — and the question is how much of that shock each reclamation
//! strategy absorbs. For each of the three capacity profiles of
//! `deflate-transient` (square wave, diurnal, spot market) the experiment
//! replays the same Azure-derived workload on the same seeded schedule and
//! reports reclamation-failure probability, throughput loss, migration
//! counts and revenue per server.

use crate::report::{pct, Table};
use crate::scale::Scale;
use deflate_cluster::manager::{ClusterConfig, PlacementKind, ReclamationMode};
use deflate_cluster::metrics::SimResult;
use deflate_cluster::sim::ClusterSimulation;
use deflate_cluster::spec::{
    paper_server_capacity, servers_for_transient_overcommitment, workload_from_azure,
    MinAllocationRule,
};
use deflate_core::placement::PartitionScheme;
use deflate_core::policy::ProportionalDeflation;
use deflate_core::pricing::{PricingPolicy, RateCard};
use deflate_hypervisor::domain::DeflationMechanism;
use deflate_traces::azure::{AzureTraceConfig, AzureTraceGenerator};
use deflate_transient::signal::{CapacityProfile, CapacitySchedule, TransientConfig};
use std::sync::Arc;

/// The reclamation strategies compared under transient capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientMode {
    /// Proportional deflation with deflation-aware migration fallback (the
    /// paper's proposal).
    Deflation,
    /// Kill lowest-priority residents on every reclamation (today's
    /// transient offerings).
    Preemption,
    /// Migrate residents at full size, never deflate (the live-migration
    /// strawman of §2).
    MigrationOnly,
}

impl TransientMode {
    /// All modes in report order.
    pub const ALL: [TransientMode; 3] = [
        TransientMode::Deflation,
        TransientMode::Preemption,
        TransientMode::MigrationOnly,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TransientMode::Deflation => "deflation",
            TransientMode::Preemption => "preemption",
            TransientMode::MigrationOnly => "migration-only",
        }
    }

    fn mode(&self) -> ReclamationMode {
        match self {
            TransientMode::Deflation => {
                ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default()))
            }
            TransientMode::Preemption => ReclamationMode::Preemption,
            TransientMode::MigrationOnly => ReclamationMode::MigrationOnly,
        }
    }
}

/// The three capacity profiles the experiment sweeps, at the defaults of
/// `deflate-transient`.
pub fn profiles() -> [CapacityProfile; 3] {
    [
        CapacityProfile::square_wave_default(),
        CapacityProfile::diurnal_default(),
        CapacityProfile::spot_market_default(),
    ]
}

/// The Azure-derived workload all transient experiments replay (depends
/// only on the scale, so callers sweeping modes/profiles should build it
/// once and pass it to [`run_transient_on`]).
pub fn transient_workload(scale: Scale) -> Vec<deflate_cluster::spec::WorkloadVm> {
    let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
        num_vms: scale.cluster_vms(),
        duration_hours: scale.cluster_trace_hours(),
        seed: scale.seed(),
        ..Default::default()
    });
    workload_from_azure(&traces, MinAllocationRule::None)
}

/// Run one mode under one capacity profile. The cluster is sized for the
/// profile's mean availability (so all modes face the same, non-trivial
/// pressure), all servers are transient, and displaced VMs migrate back
/// when capacity returns.
pub fn run_transient(scale: Scale, mode: TransientMode, profile: CapacityProfile) -> SimResult {
    run_transient_on(&transient_workload(scale), scale, mode, profile)
}

/// [`run_transient`] with a pre-built workload, for callers sweeping many
/// (mode, profile) pairs over the same trace.
pub fn run_transient_on(
    workload: &[deflate_cluster::spec::WorkloadVm],
    scale: Scale,
    mode: TransientMode,
    profile: CapacityProfile,
) -> SimResult {
    let capacity = paper_server_capacity();
    let servers =
        servers_for_transient_overcommitment(workload, capacity, 0.0, profile.mean_availability());
    let schedule = CapacitySchedule::generate(&TransientConfig {
        num_servers: servers,
        transient_fraction: 1.0,
        duration_secs: scale.cluster_trace_hours() * 3600.0,
        profile,
        seed: scale.seed(),
    });
    let config = ClusterConfig {
        num_servers: servers,
        server_capacity: capacity,
        placement: PlacementKind::CosineFitness,
        partitions: PartitionScheme::None,
        mechanism: DeflationMechanism::Transparent,
    };
    ClusterSimulation::new(config, mode.mode())
        .with_capacity_schedule(schedule)
        .with_migrate_back(true)
        .run(workload)
}

/// The transient-capacity comparison as a printable table: one row per
/// (profile, mode) pair.
pub fn fig_transient_table(scale: Scale) -> Table {
    let mut table = Table::new(
        "Transient capacity: deflation vs preemption vs migration under reclamation",
        &[
            "profile",
            "mode",
            "failure probability",
            "evictions",
            "throughput loss",
            "migrations",
            "revenue/server",
        ],
    );
    let rates = RateCard::default();
    let pricing = PricingPolicy::static_default();
    let workload = transient_workload(scale);
    for profile in profiles() {
        for mode in TransientMode::ALL {
            let result = run_transient_on(&workload, scale, mode, profile);
            table.row(&[
                profile.name().to_string(),
                mode.name().to_string(),
                pct(result.failure_probability()),
                pct(result.eviction_probability()),
                pct(result.mean_throughput_loss()),
                result.migration_count().to_string(),
                format!(
                    "{:.1}",
                    result.deflatable_revenue_per_server(&pricing, &rates)
                ),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deflation_beats_preemption_under_every_profile() {
        for profile in profiles() {
            let deflation = run_transient(Scale::Quick, TransientMode::Deflation, profile);
            let preemption = run_transient(Scale::Quick, TransientMode::Preemption, profile);
            assert!(
                deflation.failure_probability() < preemption.failure_probability(),
                "{}: deflation {} vs preemption {}",
                profile.name(),
                deflation.failure_probability(),
                preemption.failure_probability()
            );
            // Capacity actually moved.
            assert!(deflation.transient.reclaim_events > 0);
        }
    }

    #[test]
    fn migration_only_records_migrations() {
        let result = run_transient(
            Scale::Quick,
            TransientMode::MigrationOnly,
            CapacityProfile::square_wave_default(),
        );
        assert!(
            result.transient.migrations > 0,
            "expected migrations, counters: {:?}",
            result.transient
        );
        assert_eq!(result.migration_count(), result.migrations.len());
    }

    #[test]
    fn table_has_one_row_per_mode_and_profile() {
        let table = fig_transient_table(Scale::Quick);
        assert_eq!(table.len(), profiles().len() * TransientMode::ALL.len());
    }
}
