//! The transient-capacity experiment: deflation vs. preemption vs.
//! migration-only under provider-side capacity dynamics.
//!
//! This is the paper's headline scenario (§2, §7.4): servers are
//! *transient* — the provider reclaims part of their capacity and restores
//! it later — and the question is how much of that shock each reclamation
//! strategy absorbs. For each of the three capacity profiles of
//! `deflate-transient` (square wave, diurnal, spot market) the experiment
//! replays the same Azure-derived workload on the same seeded schedule and
//! reports reclamation-failure probability, throughput loss, migration
//! counts (with their page-transfer cost) and revenue per server.
//!
//! Migration is **not free** here: every transfer is priced by the
//! [`MigrationCostModel`] of `deflate-hypervisor` (page-copy time over a
//! shared per-server bandwidth budget, racing the provider's reclamation
//! deadline), which is precisely what makes the migration-only baseline
//! lose VMs the paper's deflation proposal keeps alive. The
//! [`bandwidth_sweep_table`] experiment sweeps the per-server budget to
//! show the effect directly.

use crate::report::{pct, RuntimeTally, Table, TallyRunStats};
use crate::scale::Scale;
use deflate_cluster::manager::{ClusterConfig, PlacementKind, ReclamationMode};
use deflate_cluster::metrics::SimResult;
use deflate_cluster::sim::ClusterSimulation;
use deflate_cluster::spec::{
    paper_server_capacity, servers_for_transient_overcommitment, workload_from_azure,
    MinAllocationRule,
};
use deflate_core::placement::{PartitionScheme, PlacementEngine};
use deflate_core::policy::ProportionalDeflation;
use deflate_core::policy::TransferPolicy;
use deflate_core::pricing::{PricingPolicy, RateCard};
use deflate_core::shard::ShardConfig;
use deflate_hypervisor::domain::DeflationMechanism;
use deflate_hypervisor::migration::MigrationCostModel;
use deflate_traces::azure::{AzureTraceConfig, AzureTraceGenerator};
use deflate_transient::signal::{CapacityProfile, CapacitySchedule, TransientConfig};
use std::sync::Arc;

/// The reclamation strategies compared under transient capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientMode {
    /// Proportional deflation with deflation-aware migration fallback (the
    /// paper's proposal).
    Deflation,
    /// Kill lowest-priority residents on every reclamation (today's
    /// transient offerings).
    Preemption,
    /// Migrate residents at full size, never deflate (the live-migration
    /// strawman of §2).
    MigrationOnly,
}

impl TransientMode {
    /// All modes in report order.
    pub const ALL: [TransientMode; 3] = [
        TransientMode::Deflation,
        TransientMode::Preemption,
        TransientMode::MigrationOnly,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TransientMode::Deflation => "deflation",
            TransientMode::Preemption => "preemption",
            TransientMode::MigrationOnly => "migration-only",
        }
    }

    /// The engine-level reclamation mode this strategy configures.
    pub fn mode(&self) -> ReclamationMode {
        match self {
            TransientMode::Deflation => {
                ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default()))
            }
            TransientMode::Preemption => ReclamationMode::Preemption,
            TransientMode::MigrationOnly => ReclamationMode::MigrationOnly,
        }
    }
}

/// The three capacity profiles the experiment sweeps, at the defaults of
/// `deflate-transient`.
pub fn profiles() -> [CapacityProfile; 3] {
    [
        CapacityProfile::square_wave_default(),
        CapacityProfile::diurnal_default(),
        CapacityProfile::spot_market_default(),
    ]
}

/// The Azure-derived workload all transient experiments replay (depends
/// only on the scale, so callers sweeping modes/profiles should build it
/// once and pass it to [`run_transient_on`]).
pub fn transient_workload(scale: Scale) -> Vec<deflate_cluster::spec::WorkloadVm> {
    let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
        num_vms: scale.cluster_vms(),
        duration_hours: scale.cluster_trace_hours(),
        seed: scale.seed(),
        ..Default::default()
    });
    workload_from_azure(&traces, MinAllocationRule::None)
}

/// The migration cost model all transient experiments charge by default: a
/// 10 GbE link per transfer, 30 % dirty-page overhead, a one-link
/// per-server budget (transfers off the same server serialise) and the
/// 30-second preemption notice GCP-style transient offerings give — short
/// enough that draining a well-packed server by migration alone races the
/// deadline.
pub fn default_migration_cost() -> MigrationCostModel {
    MigrationCostModel::lan_default()
        .with_budget_mbps(1250.0)
        .with_deadline_secs(30.0)
}

/// Run one mode under one capacity profile with the default migration cost
/// model. The cluster is sized for the profile's mean availability (so all
/// modes face the same, non-trivial pressure), all servers are transient,
/// and displaced VMs migrate back when capacity returns.
pub fn run_transient(scale: Scale, mode: TransientMode, profile: CapacityProfile) -> SimResult {
    run_transient_on(&transient_workload(scale), scale, mode, profile)
}

/// [`run_transient`] with a pre-built workload, for callers sweeping many
/// (mode, profile) pairs over the same trace.
pub fn run_transient_on(
    workload: &[deflate_cluster::spec::WorkloadVm],
    scale: Scale,
    mode: TransientMode,
    profile: CapacityProfile,
) -> SimResult {
    run_transient_costed(workload, scale, mode, profile, default_migration_cost())
}

/// [`run_transient_on`] with an explicit migration cost model (used by the
/// bandwidth sweep; pass [`MigrationCostModel::instant`] to reproduce the
/// historical free-migration comparison). Transfers are scheduled FIFO —
/// the pre-scheduler greedy booking, bit-for-bit.
pub fn run_transient_costed(
    workload: &[deflate_cluster::spec::WorkloadVm],
    scale: Scale,
    mode: TransientMode,
    profile: CapacityProfile,
    cost: MigrationCostModel,
) -> SimResult {
    run_transient_scheduled(workload, scale, mode, profile, cost, TransferPolicy::fifo())
}

/// [`run_transient_costed`] with an explicit transfer-scheduling policy —
/// the entry point of the scheduler experiment.
pub fn run_transient_scheduled(
    workload: &[deflate_cluster::spec::WorkloadVm],
    scale: Scale,
    mode: TransientMode,
    profile: CapacityProfile,
    cost: MigrationCostModel,
    policy: TransferPolicy,
) -> SimResult {
    run_transient_engine(
        workload,
        scale,
        mode,
        profile,
        cost,
        policy,
        ShardConfig::sequential(),
    )
}

/// [`run_transient_scheduled`] with an explicit engine-shard count — the
/// fully-parameterised entry point, used by the shard-parity tests and the
/// `fig_scale` sweep. Sharding is a performance knob only: any
/// [`ShardConfig`] produces a `SimResult` equal to the sequential engine's
/// (`tests/shard_parity.rs` pins this on the `fig_transient` and
/// `fig_scheduler` configurations).
#[allow(clippy::too_many_arguments)]
pub fn run_transient_engine(
    workload: &[deflate_cluster::spec::WorkloadVm],
    scale: Scale,
    mode: TransientMode,
    profile: CapacityProfile,
    cost: MigrationCostModel,
    policy: TransferPolicy,
    shards: ShardConfig,
) -> SimResult {
    run_transient_placed(
        workload,
        scale,
        mode,
        profile,
        cost,
        policy,
        shards,
        PlacementEngine::default(),
    )
}

/// [`run_transient_engine`] with an explicit placement-ranking engine.
/// Like sharding, the [`PlacementEngine`] is a performance knob only: the
/// parallel fan-out produces a `SimResult` equal to the sequential
/// default's, score bits included (`tests/shard_parity.rs` pins this on
/// the same configurations).
#[allow(clippy::too_many_arguments)]
pub fn run_transient_placed(
    workload: &[deflate_cluster::spec::WorkloadVm],
    scale: Scale,
    mode: TransientMode,
    profile: CapacityProfile,
    cost: MigrationCostModel,
    policy: TransferPolicy,
    shards: ShardConfig,
    engine: PlacementEngine,
) -> SimResult {
    transient_simulation(workload, scale, mode, profile, cost, policy)
        .with_shards(shards)
        .with_placement_engine(engine)
        .run(workload)
}

/// The capacity schedule and server count every transient experiment runs
/// under: the cluster is sized for the profile's mean availability, all
/// servers are transient, and the change-points are seeded from the scale
/// preset — so two calls with the same inputs produce the identical
/// schedule. `fig_whatif` regenerates the schedule through this function
/// to learn the reclamation times its meta-scheduler decides at.
pub fn transient_capacity(
    workload: &[deflate_cluster::spec::WorkloadVm],
    scale: Scale,
    profile: CapacityProfile,
) -> (CapacitySchedule, usize) {
    let capacity = paper_server_capacity();
    let servers =
        servers_for_transient_overcommitment(workload, capacity, 0.0, profile.mean_availability());
    let schedule = CapacitySchedule::generate(&TransientConfig {
        num_servers: servers,
        transient_fraction: 1.0,
        duration_secs: scale.cluster_trace_hours() * 3600.0,
        profile,
        seed: scale.seed(),
    });
    (schedule, servers)
}

/// Build — without running — the fully configured [`ClusterSimulation`]
/// behind [`run_transient_placed`]. `fig_whatif` needs the simulation
/// itself rather than its result: the meta-scheduler checkpoints it,
/// forks the snapshot under sibling simulations that differ only in
/// [`TransferPolicy`], and resumes the winner.
pub fn transient_simulation(
    workload: &[deflate_cluster::spec::WorkloadVm],
    scale: Scale,
    mode: TransientMode,
    profile: CapacityProfile,
    cost: MigrationCostModel,
    policy: TransferPolicy,
) -> ClusterSimulation {
    let (schedule, servers) = transient_capacity(workload, scale, profile);
    let config = ClusterConfig {
        num_servers: servers,
        server_capacity: paper_server_capacity(),
        placement: PlacementKind::CosineFitness,
        partitions: PartitionScheme::None,
        mechanism: DeflationMechanism::Transparent,
    };
    ClusterSimulation::new(config, mode.mode())
        .with_capacity_schedule(schedule)
        .with_migrate_back(true)
        .with_migration_cost(cost)
        .with_transfer_policy(policy)
}

/// The transient-capacity comparison as a printable table: one row per
/// (profile, mode) pair, with the migration cost that used to be invisible
/// (total page-transfer seconds, volume moved, deadline aborts).
pub fn fig_transient_table(scale: Scale) -> Table {
    let mut table = Table::new(
        "Transient capacity: deflation vs preemption vs migration under reclamation",
        &[
            "profile",
            "mode",
            "failure probability",
            "evictions",
            "throughput loss",
            "migrations",
            "migration secs",
            "moved GiB",
            "aborts",
            "revenue/server",
        ],
    );
    let rates = RateCard::default();
    let pricing = PricingPolicy::static_default();
    let workload = transient_workload(scale);
    let mut tally = RuntimeTally::default();
    for profile in profiles() {
        for mode in TransientMode::ALL {
            let result = run_transient_on(&workload, scale, mode, profile);
            tally.add(result.runtime);
            table.row(&[
                profile.name().to_string(),
                mode.name().to_string(),
                pct(result.failure_probability()),
                pct(result.eviction_probability()),
                pct(result.mean_throughput_loss()),
                result.migration_count().to_string(),
                format!("{:.1}", result.total_migration_secs()),
                format!("{:.1}", result.total_migration_volume_mb() / 1024.0),
                result.migration_abort_count().to_string(),
                format!(
                    "{:.1}",
                    result.deflatable_revenue_per_server(&pricing, &rates)
                ),
            ]);
        }
    }
    table.set_footer(tally.footer());
    table
}

/// Per-server migration-bandwidth budgets the sweep explores, MiB/s
/// (`INFINITY` reproduces the free-migration baseline).
pub const BANDWIDTH_SWEEP_MBPS: [f64; 5] = [f64::INFINITY, 2500.0, 1250.0, 625.0, 312.5];

/// The bandwidth-sweep experiment: deflation vs migration-only under the
/// bursty spot-market profile as the per-server migration-bandwidth budget
/// shrinks. With generous bandwidth the migration-only baseline looks
/// almost free; every halving of the budget queues more transfers past the
/// reclamation deadline, turning them into aborts and evictions — while
/// deflation barely migrates at all. One row per (budget, mode) pair.
pub fn bandwidth_sweep_table(scale: Scale) -> Table {
    let mut table = Table::new(
        "Migration-bandwidth sweep under spot-market reclamation",
        &[
            "budget MiB/s",
            "mode",
            "failure probability",
            "evictions+aborts",
            "migrations",
            "mean migration secs",
            "aborts",
        ],
    );
    let workload = transient_workload(scale);
    let profile = CapacityProfile::spot_market_default();
    let mut tally = RuntimeTally::default();
    for budget in BANDWIDTH_SWEEP_MBPS {
        for mode in [TransientMode::Deflation, TransientMode::MigrationOnly] {
            let cost = if budget.is_infinite() {
                MigrationCostModel::instant()
            } else {
                default_migration_cost().with_budget_mbps(budget)
            };
            let result = run_transient_costed(&workload, scale, mode, profile, cost);
            tally.add(result.runtime);
            table.row(&[
                if budget.is_infinite() {
                    "unlimited (free)".to_string()
                } else {
                    format!("{budget:.0}")
                },
                mode.name().to_string(),
                pct(result.failure_probability()),
                result.eviction_or_abort_count().to_string(),
                result.migration_count().to_string(),
                format!("{:.2}", result.mean_migration_secs()),
                result.migration_abort_count().to_string(),
            ]);
        }
    }
    table.set_footer(tally.footer());
    table
}

/// The scheduling variants the scheduler sweep compares. The FIFO variant
/// charges the PR 2 cost model (constant dirty-page overhead) and books
/// greedily — bit-identical to the pre-scheduler behaviour; the
/// deadline-aware variants additionally feed the scheduler dirty-rate-aware
/// estimates ([`dirty_aware_migration_cost`]) so admission control compares
/// realistic copy times against the deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerVariant {
    /// Greedy request-order booking, constant overhead (the baseline).
    Fifo,
    /// Greedy request-order booking under the dirty-rate-aware cost model
    /// — the control that isolates the scheduling effect: any gap between
    /// this row and the EDF rows is due to ordering and admission
    /// control, not to the different migration physics.
    FifoDirty,
    /// Smallest transfer volume first, constant overhead.
    SmallestFirst,
    /// EDF + admission control, dirty-rate-aware estimates.
    Edf,
    /// EDF + admission control + deflate-then-migrate, dirty-rate-aware
    /// estimates. Only meaningful in deflation mode.
    EdfDeflate,
}

impl SchedulerVariant {
    /// All variants in report order.
    pub const ALL: [SchedulerVariant; 5] = [
        SchedulerVariant::Fifo,
        SchedulerVariant::FifoDirty,
        SchedulerVariant::SmallestFirst,
        SchedulerVariant::Edf,
        SchedulerVariant::EdfDeflate,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerVariant::FifoDirty => "fifo+dirty",
            _ => self.policy().name(),
        }
    }

    /// The transfer policy this variant schedules under.
    pub fn policy(&self) -> TransferPolicy {
        match self {
            SchedulerVariant::Fifo | SchedulerVariant::FifoDirty => TransferPolicy::fifo(),
            SchedulerVariant::SmallestFirst => TransferPolicy::smallest_first(),
            SchedulerVariant::Edf => TransferPolicy::edf(),
            SchedulerVariant::EdfDeflate => TransferPolicy::edf().with_deflate_then_migrate(true),
        }
    }

    /// The cost model this variant charges at a given per-server budget.
    pub fn cost(&self, budget_mbps: f64) -> MigrationCostModel {
        let base = default_migration_cost().with_budget_mbps(budget_mbps);
        match self {
            SchedulerVariant::Fifo | SchedulerVariant::SmallestFirst => base,
            SchedulerVariant::FifoDirty | SchedulerVariant::Edf | SchedulerVariant::EdfDeflate => {
                dirty_aware_migration_cost(budget_mbps)
            }
        }
    }

    /// Deflate-then-migrate is a rung of the deflation ladder; the
    /// migration-only baseline never deflates, so the variant does not
    /// apply there.
    pub fn applies_to(&self, mode: TransientMode) -> bool {
        !matches!(self, SchedulerVariant::EdfDeflate) || mode == TransientMode::Deflation
    }
}

/// [`default_migration_cost`] with dirty-rate-aware pre-copy: a fully busy
/// guest dirties 800 MiB/s (64 % of a 10 GbE migration stream), and
/// non-converging transfers pay 2 s of stop-and-copy downtime. Idle VMs
/// get cheaper estimates than the constant 1.3× overhead, write-heavy VMs
/// costlier ones — which is what lets EDF admission control tell doomed
/// copies from viable ones.
pub fn dirty_aware_migration_cost(budget_mbps: f64) -> MigrationCostModel {
    default_migration_cost()
        .with_budget_mbps(budget_mbps)
        .with_dirty_rate(800.0, 2.0)
}

/// Per-server bandwidth budgets the scheduler sweep explores, MiB/s. The
/// first entry is the PR 2 one-link default the acceptance comparison is
/// anchored to.
pub const SCHEDULER_SWEEP_MBPS: [f64; 3] = [1250.0, 625.0, 312.5];

/// The transfer-scheduler experiment: policy × bandwidth budget under
/// spot-market reclamation. FIFO booking wastes tight budgets on doomed
/// copies (aborts); smallest-first squeezes more copies under the
/// deadline; EDF rejects provably-late transfers up front (rejections
/// instead of aborts, no wasted link time), and deflate-then-migrate
/// shrinks the copies themselves so fewer transfers are doomed at all.
pub fn scheduler_sweep_table(scale: Scale) -> Table {
    let mut table = Table::new(
        "Transfer scheduling under spot-market reclamation: policy x bandwidth budget",
        &[
            "budget MiB/s",
            "mode",
            "policy",
            "failure probability",
            "evictions+aborts",
            "migrations",
            "aborts",
            "rejections",
            "mean queue-wait s",
        ],
    );
    let workload = transient_workload(scale);
    let profile = CapacityProfile::spot_market_default();
    let mut tally = RuntimeTally::default();
    for budget in SCHEDULER_SWEEP_MBPS {
        for mode in [TransientMode::Deflation, TransientMode::MigrationOnly] {
            for variant in SchedulerVariant::ALL {
                if !variant.applies_to(mode) {
                    continue;
                }
                let result = run_transient_scheduled(
                    &workload,
                    scale,
                    mode,
                    profile,
                    variant.cost(budget),
                    variant.policy(),
                );
                tally.add(result.runtime);
                table.row(&[
                    format!("{budget:.0}"),
                    mode.name().to_string(),
                    variant.name().to_string(),
                    pct(result.failure_probability()),
                    result.eviction_or_abort_count().to_string(),
                    result.migration_count().to_string(),
                    result.migration_abort_count().to_string(),
                    result.migration_rejection_count().to_string(),
                    format!("{:.2}", result.mean_queue_wait_secs()),
                ]);
            }
        }
    }
    table.set_footer(tally.footer());
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deflation_beats_preemption_under_every_profile() {
        for profile in profiles() {
            let deflation = run_transient(Scale::Quick, TransientMode::Deflation, profile);
            let preemption = run_transient(Scale::Quick, TransientMode::Preemption, profile);
            assert!(
                deflation.failure_probability() < preemption.failure_probability(),
                "{}: deflation {} vs preemption {}",
                profile.name(),
                deflation.failure_probability(),
                preemption.failure_probability()
            );
            // Capacity actually moved.
            assert!(deflation.transient.reclaim_events > 0);
        }
    }

    #[test]
    fn migration_only_records_migrations_with_nonzero_cost() {
        let result = run_transient(
            Scale::Quick,
            TransientMode::MigrationOnly,
            CapacityProfile::square_wave_default(),
        );
        assert!(
            result.transient.migrations > 0,
            "expected migrations, counters: {:?}",
            result.transient
        );
        assert_eq!(result.migration_count(), result.migrations.len());
        // Migration is no longer free: completed transfers took wall-clock
        // time and moved bytes.
        assert!(
            result.total_migration_secs() > 0.0,
            "migrations must be charged transfer time"
        );
        assert!(result.total_migration_volume_mb() > 0.0);
        assert!(result
            .migrations
            .iter()
            .all(|m| m.duration_secs > 0.0 && m.volume_mb > 0.0));
    }

    /// The acceptance check of the migration-cost model: under the bursty
    /// spot-market profile with a finite per-server bandwidth budget, the
    /// migration-only baseline loses strictly more VMs to evictions and
    /// deadline aborts than deflation does.
    #[test]
    fn finite_bandwidth_makes_migration_only_lose_more_vms_than_deflation() {
        let workload = transient_workload(Scale::Quick);
        let profile = CapacityProfile::spot_market_default();
        let cost = default_migration_cost();
        let deflation = run_transient_costed(
            &workload,
            Scale::Quick,
            TransientMode::Deflation,
            profile,
            cost,
        );
        let migration = run_transient_costed(
            &workload,
            Scale::Quick,
            TransientMode::MigrationOnly,
            profile,
            cost,
        );
        assert!(
            migration.eviction_or_abort_count() > deflation.eviction_or_abort_count(),
            "migration-only evictions+aborts {} must exceed deflation's {}",
            migration.eviction_or_abort_count(),
            deflation.eviction_or_abort_count()
        );
        // The costed run reports its durations and aborts in the counters.
        assert!(migration.total_migration_secs() > 0.0);
        assert!(
            migration.migration_abort_count() > 0,
            "a one-link budget under spot outages must abort some transfers: {:?}",
            migration.transient
        );
    }

    #[test]
    fn tables_have_one_row_per_mode_and_profile() {
        let table = fig_transient_table(Scale::Quick);
        assert_eq!(table.len(), profiles().len() * TransientMode::ALL.len());
        let sweep = bandwidth_sweep_table(Scale::Quick);
        assert_eq!(sweep.len(), BANDWIDTH_SWEEP_MBPS.len() * 2);
        // Per budget: all five variants in deflation mode, four in
        // migration-only (deflate-then-migrate does not apply there).
        let sched = scheduler_sweep_table(Scale::Quick);
        assert_eq!(sched.len(), SCHEDULER_SWEEP_MBPS.len() * 9);
    }

    /// The acceptance check of the transfer scheduler: under the default
    /// spot-market signal at the PR 2 one-link budget, EDF with
    /// deflate-then-migrate aborts strictly fewer migrations than the
    /// greedy FIFO booking — admission control refuses doomed copies up
    /// front and the pre-migration squeeze shrinks the rest under the
    /// deadline.
    #[test]
    fn edf_with_deflate_then_migrate_cuts_aborts_versus_fifo() {
        let workload = transient_workload(Scale::Quick);
        let profile = CapacityProfile::spot_market_default();
        let budget = 1250.0;
        let fifo = run_transient_costed(
            &workload,
            Scale::Quick,
            TransientMode::Deflation,
            profile,
            SchedulerVariant::Fifo.cost(budget),
        );
        let edf = run_transient_scheduled(
            &workload,
            Scale::Quick,
            TransientMode::Deflation,
            profile,
            SchedulerVariant::EdfDeflate.cost(budget),
            SchedulerVariant::EdfDeflate.policy(),
        );
        assert!(
            edf.migration_abort_count() < fifo.migration_abort_count(),
            "edf+deflate aborts {} must be strictly below fifo's {}",
            edf.migration_abort_count(),
            fifo.migration_abort_count()
        );
        assert!(
            fifo.migration_abort_count() > 0,
            "the comparison is vacuous without fifo aborts"
        );
        // Control for the cost-model difference: FIFO under the *same*
        // dirty-rate-aware physics still aborts transfers, so the win is
        // attributable to admission control and the pre-migration
        // squeeze, not to cheaper migrations.
        let fifo_dirty = run_transient_scheduled(
            &workload,
            Scale::Quick,
            TransientMode::Deflation,
            profile,
            SchedulerVariant::FifoDirty.cost(budget),
            SchedulerVariant::FifoDirty.policy(),
        );
        assert!(
            edf.migration_abort_count() < fifo_dirty.migration_abort_count(),
            "edf+deflate aborts {} must also beat the fifo+dirty control's {}",
            edf.migration_abort_count(),
            fifo_dirty.migration_abort_count()
        );
        // EDF never books a transfer that would miss its own deadline, so
        // deadline aborts are impossible; the counter can only be fed by
        // mid-flight cancellations. It also loses no more VMs overall.
        assert!(edf.eviction_or_abort_count() <= fifo.eviction_or_abort_count());
        assert_eq!(fifo.migration_rejection_count(), 0);
    }

    /// Regression pin for the satellite requirement that the FIFO policy
    /// reproduces the pre-scheduler `fig_bandwidth_sweep` numbers exactly:
    /// these rows were captured from the PR 2 implementation (greedy
    /// per-migration booking) at quick scale, before the scheduler
    /// existed. Any drift here means the refactor changed FIFO behaviour.
    #[test]
    fn fifo_reproduces_the_pre_scheduler_bandwidth_sweep_exactly() {
        let golden: [[&str; 7]; 10] = [
            [
                "unlimited (free)",
                "deflation",
                "0.5%",
                "0",
                "66",
                "0.00",
                "0",
            ],
            [
                "unlimited (free)",
                "migration-only",
                "1.5%",
                "1",
                "168",
                "0.00",
                "0",
            ],
            ["2500", "deflation", "0.7%", "1", "47", "4.51", "7"],
            ["2500", "migration-only", "2.0%", "2", "181", "5.48", "7"],
            ["1250", "deflation", "0.2%", "0", "54", "5.07", "4"],
            ["1250", "migration-only", "2.0%", "2", "174", "5.39", "8"],
            ["625", "deflation", "3.0%", "10", "43", "5.21", "24"],
            ["625", "migration-only", "3.0%", "7", "150", "5.65", "15"],
            ["312", "deflation", "3.5%", "12", "34", "6.39", "28"],
            ["312", "migration-only", "9.4%", "34", "73", "7.32", "48"],
        ];
        let sweep = bandwidth_sweep_table(Scale::Quick);
        assert_eq!(sweep.len(), golden.len());
        for (row, expected) in sweep.rows().iter().zip(golden) {
            assert_eq!(row, &expected, "bandwidth-sweep row drifted from PR 2");
        }
    }
}
