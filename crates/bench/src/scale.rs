//! Experiment scale presets.
//!
//! Every experiment can run at two scales: `Quick` (seconds, used by unit
//! tests and Criterion iterations) and `Full` (the default for the
//! experiment binaries, sized like the paper's evaluation: a 10,000-VM
//! trace for the cluster simulation, thousands of VMs for the feasibility
//! analysis, minutes of simulated web traffic).

use serde::{Deserialize, Serialize};

/// Experiment size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Small inputs for fast iteration (tests, Criterion).
    Quick,
    /// Paper-sized inputs for the experiment binaries.
    Full,
}

impl Scale {
    /// Parse from a CLI argument / environment variable value.
    pub fn from_arg(arg: Option<&str>) -> Scale {
        match arg {
            Some("full") | Some("FULL") => Scale::Full,
            Some("quick") | Some("QUICK") => Scale::Quick,
            _ => Scale::Full,
        }
    }

    /// Scale selected for an experiment binary: the first CLI argument, or
    /// the `DEFLATE_SCALE` environment variable, defaulting to `Full`.
    pub fn from_env_and_args() -> Scale {
        let arg = std::env::args().nth(1);
        if let Some(a) = arg.as_deref() {
            return Scale::from_arg(Some(a));
        }
        match std::env::var("DEFLATE_SCALE") {
            Ok(v) => Scale::from_arg(Some(v.as_str())),
            Err(_) => Scale::Full,
        }
    }

    /// Number of Azure VMs for the feasibility analysis (Figures 5–8).
    pub fn azure_vms(&self) -> usize {
        match self {
            Scale::Quick => 600,
            Scale::Full => 8_000,
        }
    }

    /// Number of Alibaba containers (Figures 9–12).
    pub fn alibaba_containers(&self) -> usize {
        match self {
            Scale::Quick => 300,
            Scale::Full => 4_000,
        }
    }

    /// Simulated duration of the web-serving experiments, seconds
    /// (Figures 16, 17, 19).
    pub fn web_duration_secs(&self) -> f64 {
        match self {
            Scale::Quick => 20.0,
            Scale::Full => 120.0,
        }
    }

    /// Number of Monte-Carlo requests for the microservice experiment
    /// (Figure 18).
    pub fn microservice_requests(&self) -> usize {
        match self {
            Scale::Quick => 5_000,
            Scale::Full => 50_000,
        }
    }

    /// Number of VMs in the cluster-simulation trace (Figures 20–22; the
    /// paper samples 10,000 VMs).
    pub fn cluster_vms(&self) -> usize {
        match self {
            Scale::Quick => 800,
            Scale::Full => 10_000,
        }
    }

    /// Duration of the cluster-simulation trace, hours.
    pub fn cluster_trace_hours(&self) -> f64 {
        match self {
            Scale::Quick => 12.0,
            Scale::Full => 24.0,
        }
    }

    /// Cluster sizes (VM counts) the `fig_scale` engine-scaling sweep
    /// replays. Quick mode still includes a 100,000-VM row — the point of
    /// the sweep is scale, and CI exercises exactly this list; full mode
    /// adds the million-VM row the sharded engine exists for.
    pub fn scale_sweep_vms(&self) -> &'static [usize] {
        match self {
            Scale::Quick => &[10_000, 100_000],
            Scale::Full => &[10_000, 100_000, 1_000_000],
        }
    }

    /// Engine shard counts the `fig_scale` sweep runs each cluster size
    /// under (override with the `DEFLATE_SHARDS` environment variable).
    /// Quick mode stops at 2 — enough to exercise the parallel path and
    /// its parity column on every CI push; full mode sweeps to 8.
    pub fn scale_sweep_shards(&self) -> &'static [usize] {
        match self {
            Scale::Quick => &[1, 2],
            Scale::Full => &[1, 2, 4, 8],
        }
    }

    /// Duration of the `fig_scale` trace, hours. Deliberately shorter than
    /// [`cluster_trace_hours`](Self::cluster_trace_hours): per-VM
    /// utilisation traces are sampled every five minutes, so at a million
    /// VMs the trace length is what bounds resident memory.
    pub fn scale_trace_hours(&self) -> f64 {
        4.0
    }

    /// The deterministic seed every experiment derives its RNG streams from.
    pub fn seed(&self) -> u64 {
        0xDEF1A7E
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing() {
        assert_eq!(Scale::from_arg(Some("quick")), Scale::Quick);
        assert_eq!(Scale::from_arg(Some("full")), Scale::Full);
        assert_eq!(Scale::from_arg(Some("bogus")), Scale::Full);
        assert_eq!(Scale::from_arg(None), Scale::Full);
    }

    #[test]
    fn quick_is_smaller_than_full() {
        assert!(Scale::Quick.azure_vms() < Scale::Full.azure_vms());
        assert!(Scale::Quick.cluster_vms() < Scale::Full.cluster_vms());
        assert!(Scale::Quick.web_duration_secs() < Scale::Full.web_duration_secs());
        assert!(Scale::Quick.microservice_requests() < Scale::Full.microservice_requests());
        assert!(Scale::Quick.alibaba_containers() < Scale::Full.alibaba_containers());
        assert!(Scale::Quick.cluster_trace_hours() <= Scale::Full.cluster_trace_hours());
        assert_eq!(Scale::Quick.seed(), Scale::Full.seed());
    }
}
