//! Experiments reproducing the single-application results: Figure 3 (uniform
//! deflation of SpecJBB / Kcompile / Memcached) and Figure 14 (SpecJBB memory
//! deflation, transparent vs hybrid).

use crate::report::{f3, pct, FigureTimer, Table};
use deflate_appsim::apps::{ApplicationProfile, SpecJbbMemoryExperiment};

/// Deflation levels for Figure 3 (0–100 % in 10 % steps).
pub const FIG3_LEVELS: [f64; 11] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Memory-deflation levels for Figure 14 (0–45 % in 5 % steps).
pub const FIG14_LEVELS: [f64; 10] = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45];

/// Figure 3: normalized performance of the three applications when all
/// resources are deflated in the same proportion.
pub fn fig03() -> Table {
    let timer = FigureTimer::start();
    let apps = ApplicationProfile::figure3_applications();
    let mut table = Table::new(
        "Figure 3: application performance under uniform deflation",
        &["deflation", "SpecJBB", "Kcompile", "Memcached"],
    );
    for &d in &FIG3_LEVELS {
        table.row(&[
            pct(d),
            f3(apps[0].performance(d)),
            f3(apps[1].performance(d)),
            f3(apps[2].performance(d)),
        ]);
    }
    timer.wrap(table)
}

/// Raw Figure 3 series: `(deflation, [specjbb, kcompile, memcached])`.
pub fn fig03_series() -> Vec<(f64, [f64; 3])> {
    let apps = ApplicationProfile::figure3_applications();
    FIG3_LEVELS
        .iter()
        .map(|&d| {
            (
                d,
                [
                    apps[0].performance(d),
                    apps[1].performance(d),
                    apps[2].performance(d),
                ],
            )
        })
        .collect()
}

/// Figure 14: SpecJBB 2015 mean response time (normalized to no deflation)
/// under transparent vs hybrid memory deflation.
pub fn fig14() -> Table {
    let timer = FigureTimer::start();
    let exp = SpecJbbMemoryExperiment::default();
    let mut table = Table::new(
        "Figure 14: SpecJBB response time under memory deflation",
        &["memory deflation", "transparent", "hybrid"],
    );
    for (d, transparent, hybrid) in exp.sweep(&FIG14_LEVELS) {
        table.row(&[pct(d), f3(transparent), f3(hybrid)]);
    }
    timer.wrap(table)
}

/// Raw Figure 14 series: `(deflation, transparent RT, hybrid RT)`.
pub fn fig14_series() -> Vec<(f64, f64, f64)> {
    SpecJbbMemoryExperiment::default().sweep(&FIG14_LEVELS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig03_has_expected_shape() {
        let series = fig03_series();
        assert_eq!(series.len(), FIG3_LEVELS.len());
        // At 0 deflation all apps are at full performance.
        assert!(series[0].1.iter().all(|&p| (p - 1.0).abs() < 1e-12));
        // SpecJBB (index 0) is always the worst performer or tied.
        for (_, perf) in &series {
            assert!(perf[0] <= perf[1] + 1e-9);
            assert!(perf[0] <= perf[2] + 1e-9);
        }
        assert!(!fig03().is_empty());
    }

    #[test]
    fn fig14_has_expected_shape() {
        let series = fig14_series();
        assert_eq!(series.len(), FIG14_LEVELS.len());
        // Baseline is 1.0 for both mechanisms.
        assert!((series[0].1 - 1.0).abs() < 1e-9);
        assert!((series[0].2 - 1.0).abs() < 1e-9);
        // Hybrid never worse than transparent.
        for (_, t, h) in &series {
            assert!(h <= &(t + 1e-9));
        }
        assert!(!fig14().is_empty());
    }
}
