//! Experiments reproducing the cluster-level evaluation of §7.4: Figure 20
//! (reclamation-failure probability), Figure 21 (throughput loss) and
//! Figure 22 (revenue increase), all as a function of cluster overcommitment.

use crate::report::{pct, RuntimeTally, Table, TallyRunStats};
use crate::scale::Scale;
use deflate_cluster::manager::{ClusterConfig, PlacementKind, ReclamationMode};
use deflate_cluster::metrics::SimResult;
use deflate_cluster::sim::ClusterSimulation;
use deflate_cluster::spec::{
    paper_server_capacity, servers_for_overcommitment, workload_from_azure, MinAllocationRule,
    WorkloadVm,
};
use deflate_core::placement::PartitionScheme;
use deflate_core::policy::{DeterministicDeflation, PriorityDeflation, ProportionalDeflation};
use deflate_core::pricing::{PricingPolicy, RateCard};
use deflate_hypervisor::domain::DeflationMechanism;
use deflate_traces::azure::{AzureTraceConfig, AzureTraceGenerator};
use std::sync::Arc;

/// Overcommitment levels swept by Figures 20–22 (0–70 %).
pub const OVERCOMMIT_LEVELS: [f64; 8] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];

/// The reclamation policies compared by Figure 20/21.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    /// Proportional deflation (Eq 1/2).
    Proportional,
    /// Priority-weighted deflation (Eq 3/4).
    Priority,
    /// Deterministic (binary) deflation.
    Deterministic,
    /// Priority deflation with priority-partitioned placement (§5.2.1).
    PriorityPartitioned,
    /// The preemption baseline of current transient offerings.
    Preemption,
}

impl PolicyChoice {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyChoice::Proportional => "proportional",
            PolicyChoice::Priority => "priority",
            PolicyChoice::Deterministic => "deterministic",
            PolicyChoice::PriorityPartitioned => "priority+partitions",
            PolicyChoice::Preemption => "preemption",
        }
    }

    fn mode(&self) -> ReclamationMode {
        match self {
            PolicyChoice::Proportional => {
                ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default()))
            }
            PolicyChoice::Priority | PolicyChoice::PriorityPartitioned => {
                ReclamationMode::Deflation(Arc::new(PriorityDeflation::default()))
            }
            PolicyChoice::Deterministic => {
                ReclamationMode::Deflation(Arc::new(DeterministicDeflation::binary()))
            }
            PolicyChoice::Preemption => ReclamationMode::Preemption,
        }
    }

    fn partitions(&self) -> PartitionScheme {
        match self {
            PolicyChoice::PriorityPartitioned => PartitionScheme::ByPriority { pools: 4 },
            _ => PartitionScheme::None,
        }
    }

    fn min_rule(&self) -> MinAllocationRule {
        match self {
            // The priority-aware policies also derive the minimum allocation
            // from the priority (§5.1.2).
            PolicyChoice::Priority | PolicyChoice::PriorityPartitioned => {
                MinAllocationRule::PriorityTimesMax
            }
            _ => MinAllocationRule::None,
        }
    }
}

/// The cluster workload (derived from the synthetic Azure trace) used by the
/// Figure 20–22 experiments.
pub fn cluster_workload(scale: Scale, min_rule: MinAllocationRule) -> Vec<WorkloadVm> {
    let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
        num_vms: scale.cluster_vms(),
        duration_hours: scale.cluster_trace_hours(),
        seed: scale.seed(),
        ..Default::default()
    });
    workload_from_azure(&traces, min_rule)
}

/// Run one policy at one overcommitment level.
pub fn run_policy(scale: Scale, policy: PolicyChoice, overcommitment: f64) -> SimResult {
    let workload = cluster_workload(scale, policy.min_rule());
    let capacity = paper_server_capacity();
    let servers = servers_for_overcommitment(&workload, capacity, overcommitment);
    let config = ClusterConfig {
        num_servers: servers,
        server_capacity: capacity,
        placement: PlacementKind::CosineFitness,
        partitions: policy.partitions(),
        mechanism: DeflationMechanism::Transparent,
    };
    ClusterSimulation::new(config, policy.mode()).run(&workload)
}

/// The policies Figure 20 compares, in report order.
pub const FIG20_POLICIES: [PolicyChoice; 4] = [
    PolicyChoice::Proportional,
    PolicyChoice::Priority,
    PolicyChoice::Deterministic,
    PolicyChoice::Preemption,
];

/// The policies Figure 21 compares, in report order.
pub const FIG21_POLICIES: [PolicyChoice; 4] = [
    PolicyChoice::Proportional,
    PolicyChoice::Priority,
    PolicyChoice::Deterministic,
    PolicyChoice::PriorityPartitioned,
];

/// Shared cell sweep behind a figure's data series and its table: one
/// `run_policy` per (policy, overcommitment) cell, the metric extracted
/// by `metric`, every full result also handed to `on_result` (the
/// table's runtime tally; a no-op for the series API). Keeping the
/// policy lists and per-cell computation in one place means the printed
/// tables cannot silently drift from the data-series functions.
fn policy_cells(
    scale: Scale,
    policies: &[PolicyChoice],
    metric: impl Fn(&SimResult) -> f64,
    mut on_result: impl FnMut(&SimResult),
) -> Vec<(PolicyChoice, Vec<(f64, f64)>)> {
    policies
        .iter()
        .map(|&policy| {
            let series = OVERCOMMIT_LEVELS
                .iter()
                .map(|&oc| {
                    let result = run_policy(scale, policy, oc);
                    on_result(&result);
                    (oc, metric(&result))
                })
                .collect();
            (policy, series)
        })
        .collect()
}

/// Render a policy × overcommitment series as a table with the given
/// title/columns and an engine-runtime footer.
fn policy_table(
    title: &str,
    value_header: &str,
    cells: Vec<(PolicyChoice, Vec<(f64, f64)>)>,
    tally: RuntimeTally,
) -> Table {
    let mut table = Table::new(title, &["policy", "overcommitment", value_header]);
    for (policy, series) in cells {
        for (oc, value) in series {
            table.row(&[policy.name().to_string(), pct(oc), pct(value)]);
        }
    }
    table.set_footer(tally.footer());
    table
}

/// Figure 20: reclamation-failure probability vs overcommitment, for each
/// policy and the preemption baseline.
pub fn fig20(scale: Scale) -> Vec<(PolicyChoice, Vec<(f64, f64)>)> {
    policy_cells(
        scale,
        &FIG20_POLICIES,
        SimResult::failure_probability,
        |_| {},
    )
}

/// Figure 20 as a printable table (with the engine-runtime footer the
/// data-series API has no place for).
pub fn fig20_table(scale: Scale) -> Table {
    let mut tally = RuntimeTally::default();
    let cells = policy_cells(
        scale,
        &FIG20_POLICIES,
        SimResult::failure_probability,
        |result| tally.add(result.runtime),
    );
    policy_table(
        "Figure 20: failure probability vs cluster overcommitment",
        "failure probability",
        cells,
        tally,
    )
}

/// Figure 21: decrease in throughput of deflatable VMs vs overcommitment.
pub fn fig21(scale: Scale) -> Vec<(PolicyChoice, Vec<(f64, f64)>)> {
    policy_cells(
        scale,
        &FIG21_POLICIES,
        SimResult::mean_throughput_loss,
        |_| {},
    )
}

/// Figure 21 as a printable table (with the engine-runtime footer).
pub fn fig21_table(scale: Scale) -> Table {
    let mut tally = RuntimeTally::default();
    let cells = policy_cells(
        scale,
        &FIG21_POLICIES,
        SimResult::mean_throughput_loss,
        |result| tally.add(result.runtime),
    );
    policy_table(
        "Figure 21: throughput decrease of deflatable VMs vs cluster overcommitment",
        "throughput loss",
        cells,
        tally,
    )
}

/// The pricing schemes compared by Figure 22.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PricingChoice {
    /// Static 0.2× pricing with proportional deflation.
    Static,
    /// Priority-based pricing with priority-based deflation.
    PriorityBased,
    /// Allocation-based pricing with proportional deflation.
    AllocationBased,
}

impl PricingChoice {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PricingChoice::Static => "static",
            PricingChoice::PriorityBased => "priority-based",
            PricingChoice::AllocationBased => "allocation-based",
        }
    }

    fn pricing(&self) -> PricingPolicy {
        match self {
            PricingChoice::Static => PricingPolicy::static_default(),
            PricingChoice::PriorityBased => PricingPolicy::PriorityBased,
            PricingChoice::AllocationBased => PricingPolicy::AllocationBased,
        }
    }

    fn policy(&self) -> PolicyChoice {
        match self {
            PricingChoice::Static | PricingChoice::AllocationBased => PolicyChoice::Proportional,
            PricingChoice::PriorityBased => PolicyChoice::Priority,
        }
    }
}

/// The pricing schemes Figure 22 compares, in report order.
pub const FIG22_PRICINGS: [PricingChoice; 3] = [
    PricingChoice::Static,
    PricingChoice::PriorityBased,
    PricingChoice::AllocationBased,
];

/// Shared cell sweep behind Figure 22's series and table (same pattern
/// as [`policy_cells`]). The 0 %-overcommitment run doubles as the
/// revenue baseline instead of being simulated twice.
fn fig22_cells(
    scale: Scale,
    mut on_result: impl FnMut(&SimResult),
) -> Vec<(PricingChoice, Vec<(f64, f64)>)> {
    let rates = RateCard::default();
    FIG22_PRICINGS
        .iter()
        .map(|&choice| {
            let pricing = choice.pricing();
            let baseline_result = run_policy(scale, choice.policy(), 0.0);
            on_result(&baseline_result);
            let baseline = baseline_result.deflatable_revenue_per_server(&pricing, &rates);
            let series = OVERCOMMIT_LEVELS
                .iter()
                .map(|&oc| {
                    let revenue = if oc == 0.0 {
                        baseline
                    } else {
                        let result = run_policy(scale, choice.policy(), oc);
                        on_result(&result);
                        result.deflatable_revenue_per_server(&pricing, &rates)
                    };
                    let increase = if baseline <= 0.0 {
                        0.0
                    } else {
                        revenue / baseline - 1.0
                    };
                    (oc, increase)
                })
                .collect();
            (choice, series)
        })
        .collect()
}

/// Figure 22: increase in per-server revenue from deflatable VMs vs
/// overcommitment, relative to the 0 %-overcommitment baseline of the same
/// pricing scheme.
pub fn fig22(scale: Scale) -> Vec<(PricingChoice, Vec<(f64, f64)>)> {
    fig22_cells(scale, |_| {})
}

/// Figure 22 as a printable table (with the engine-runtime footer).
pub fn fig22_table(scale: Scale) -> Table {
    let mut table = Table::new(
        "Figure 22: increase in cloud revenue from deflatable VMs",
        &["pricing", "overcommitment", "revenue increase"],
    );
    let mut tally = RuntimeTally::default();
    for (choice, series) in fig22_cells(scale, |result| tally.add(result.runtime)) {
        for (oc, increase) in series {
            table.row(&[choice.name().to_string(), pct(oc), pct(increase)]);
        }
    }
    table.set_footer(tally.footer());
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deflation_beats_preemption_on_failures() {
        // A single overcommitment point is enough for a unit test; the full
        // sweep runs in the fig20 binary / bench.
        let proportional = run_policy(Scale::Quick, PolicyChoice::Proportional, 0.5);
        let preemption = run_policy(Scale::Quick, PolicyChoice::Preemption, 0.5);
        assert!(
            proportional.failure_probability() < preemption.failure_probability(),
            "proportional {} vs preemption {}",
            proportional.failure_probability(),
            preemption.failure_probability()
        );
        assert!(proportional.failure_probability() < 0.05);
    }

    #[test]
    fn throughput_loss_is_small_at_moderate_overcommitment() {
        let result = run_policy(Scale::Quick, PolicyChoice::Proportional, 0.4);
        assert!(
            result.mean_throughput_loss() < 0.05,
            "loss {}",
            result.mean_throughput_loss()
        );
    }

    #[test]
    fn revenue_increases_with_overcommitment_for_static_pricing() {
        let rates = RateCard::default();
        let pricing = PricingPolicy::static_default();
        let base = run_policy(Scale::Quick, PolicyChoice::Proportional, 0.0)
            .deflatable_revenue_per_server(&pricing, &rates);
        let high = run_policy(Scale::Quick, PolicyChoice::Proportional, 0.5)
            .deflatable_revenue_per_server(&pricing, &rates);
        assert!(
            high > base,
            "per-server revenue should rise: {base} -> {high}"
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(PolicyChoice::Proportional.name(), "proportional");
        assert_eq!(
            PolicyChoice::PriorityPartitioned.name(),
            "priority+partitions"
        );
        assert_eq!(PricingChoice::AllocationBased.name(), "allocation-based");
    }
}
