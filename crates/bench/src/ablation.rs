//! Ablation experiments for the design choices called out in `DESIGN.md`:
//! the placement heuristic (cosine fitness vs classic bin-packing), cluster
//! partitioning, and the deflation mechanism (transparent vs explicit vs
//! hybrid).

use crate::report::{f3, pct, FigureTimer, RuntimeTally, Table, TallyRunStats};
use crate::scale::Scale;
use deflate_cluster::manager::{ClusterConfig, PlacementKind, ReclamationMode};
use deflate_cluster::sim::ClusterSimulation;
use deflate_cluster::spec::{paper_server_capacity, servers_for_overcommitment, MinAllocationRule};
use deflate_core::placement::PartitionScheme;
use deflate_core::policy::{PriorityDeflation, ProportionalDeflation};
use deflate_core::resources::ResourceVector;
use deflate_core::vm::{VmClass, VmId, VmSpec};
use deflate_hypervisor::domain::{DeflationMechanism, Domain};
use std::sync::Arc;

/// Ablation A: placement heuristics at a fixed 50 % overcommitment.
///
/// Compares reclamation-failure probability and throughput loss for cosine
/// fitness (the paper's choice) against first-fit, best-fit and worst-fit.
pub fn placement_ablation(scale: Scale) -> Table {
    let workload = crate::cluster_exp::cluster_workload(scale, MinAllocationRule::None);
    let capacity = paper_server_capacity();
    let servers = servers_for_overcommitment(&workload, capacity, 0.5);
    let mut tally = RuntimeTally::default();
    let mut table = Table::new(
        "Ablation: placement heuristic at 50% overcommitment",
        &[
            "placement",
            "failure probability",
            "throughput loss",
            "deflated VMs",
        ],
    );
    for placement in [
        PlacementKind::CosineFitness,
        PlacementKind::FirstFit,
        PlacementKind::BestFit,
        PlacementKind::WorstFit,
    ] {
        let config = ClusterConfig {
            num_servers: servers,
            server_capacity: capacity,
            placement,
            partitions: PartitionScheme::None,
            mechanism: DeflationMechanism::Transparent,
        };
        let mode = ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default()));
        let result = ClusterSimulation::new(config, mode).run(&workload);
        tally.add(result.runtime);
        table.row(&[
            placement.name().to_string(),
            pct(result.failure_probability()),
            pct(result.mean_throughput_loss()),
            pct(result.deflated_vm_fraction()),
        ]);
    }
    table.set_footer(tally.footer());
    table
}

/// Ablation B: cluster partitioning (mixed vs priority pools) under the
/// priority deflation policy at 50 % overcommitment.
pub fn partition_ablation(scale: Scale) -> Table {
    let workload = crate::cluster_exp::cluster_workload(scale, MinAllocationRule::PriorityTimesMax);
    let capacity = paper_server_capacity();
    let servers = servers_for_overcommitment(&workload, capacity, 0.5);
    let mut tally = RuntimeTally::default();
    let mut table = Table::new(
        "Ablation: cluster partitioning at 50% overcommitment (priority policy)",
        &["partitions", "failure probability", "throughput loss"],
    );
    for (label, partitions) in [
        ("mixed (none)", PartitionScheme::None),
        ("2 pools", PartitionScheme::ByPriority { pools: 2 }),
        ("4 pools", PartitionScheme::ByPriority { pools: 4 }),
    ] {
        let config = ClusterConfig {
            num_servers: servers,
            server_capacity: capacity,
            placement: PlacementKind::CosineFitness,
            partitions,
            mechanism: DeflationMechanism::Transparent,
        };
        let mode = ReclamationMode::Deflation(Arc::new(PriorityDeflation::default()));
        let result = ClusterSimulation::new(config, mode).run(&workload);
        tally.add(result.runtime);
        table.row(&[
            label.to_string(),
            pct(result.failure_probability()),
            pct(result.mean_throughput_loss()),
        ]);
    }
    table.set_footer(tally.footer());
    table
}

/// Ablation C: deflation mechanisms. For a range of targets, how closely does
/// each mechanism reach the requested allocation (granularity error) and how
/// much memory pressure does it leave behind?
pub fn mechanism_ablation() -> Table {
    let timer = FigureTimer::start();
    let spec = VmSpec::deflatable(
        VmId(1),
        VmClass::Interactive,
        ResourceVector::new(16_000.0, 32_768.0, 500.0, 2_000.0),
    );
    let usage = ResourceVector::new(4_000.0, 12_288.0, 50.0, 100.0);
    let mut table = Table::new(
        "Ablation: deflation mechanisms (granularity error and memory pressure)",
        &[
            "mechanism",
            "target deflation",
            "cpu error",
            "memory error",
            "memory pressure",
        ],
    );
    for mechanism in [
        DeflationMechanism::Transparent,
        DeflationMechanism::Explicit,
        DeflationMechanism::Hybrid,
    ] {
        for target_deflation in [0.2, 0.4, 0.6] {
            let mut domain = Domain::launch_with(spec.clone(), mechanism);
            domain.report_guest_usage(usage, 4_096.0);
            let target = spec.max_allocation * (1.0 - target_deflation);
            domain.deflate_to(target);
            let eff = domain.effective_allocation();
            let cpu_error = (eff.cpu() - target.cpu()).abs() / spec.max_allocation.cpu();
            let mem_error = (eff.memory() - target.memory()).abs() / spec.max_allocation.memory();
            table.row(&[
                mechanism.name().to_string(),
                pct(target_deflation),
                pct(cpu_error),
                pct(mem_error),
                f3(domain.memory_pressure_overhead()),
            ]);
        }
    }
    timer.wrap(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_ablation_produces_all_rows() {
        let table = placement_ablation(Scale::Quick);
        assert_eq!(table.len(), 4);
    }

    #[test]
    fn partition_ablation_produces_all_rows() {
        let table = partition_ablation(Scale::Quick);
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn mechanism_ablation_shows_explicit_granularity_error() {
        let table = mechanism_ablation();
        assert_eq!(table.len(), 9);
        let rendered = table.render();
        assert!(rendered.contains("transparent"));
        assert!(rendered.contains("explicit"));
        assert!(rendered.contains("hybrid"));
    }
}
