//! # deflate-bench
//!
//! Experiment harness reproducing every figure of the paper's evaluation.
//!
//! Each `figNN` module function regenerates the data series behind the
//! corresponding figure and returns it both as structured data and as a
//! printable [`report::Table`]. The `src/bin/figNN.rs` binaries print the
//! tables (`cargo run --release -p deflate-bench --bin fig20`), and the
//! Criterion benches in `benches/` measure the cost of regenerating each
//! figure at `Quick` scale.
//!
//! | Module | Figures |
//! |---|---|
//! | [`apps_exp`] | 3, 14 |
//! | [`feasibility`] | 5, 6, 7, 8, 9, 10, 11, 12 |
//! | [`web`] | 16, 17, 18, 19 |
//! | [`cluster_exp`] | 20, 21, 22 |
//! | [`transient_exp`] | transient-capacity reclamation comparison + migration-bandwidth sweep + transfer-scheduler sweep |
//! | [`autoscale_exp`] | elastic autoscaling under transient capacity: launch-only vs deflation-aware (`fig_autoscale`) |
//! | [`scale_exp`] | engine-scaling sweep: cluster size × shard count (`fig_scale`) |
//! | [`whatif_exp`] | what-if meta-scheduler: checkpoint/fork model-predictive transfer-policy selection (`fig_whatif`) |
//! | [`profile_exp`] | engine phase profile: per-phase self time + Chrome trace (`fig_profile`) |
//! | [`memory_exp`] | per-subsystem memory accounting vs procfs RSS (`fig_memory`) |
//! | [`audit_exp`] | checkpoint-bisection divergence diagnosis (`deflate-audit`) |
//! | [`ablation`] | placement / partition / mechanism ablations |
//!
//! Beyond the paper's figures, the transient experiments charge every live
//! migration with the page-transfer cost model of `deflate-hypervisor`
//! (see [`transient_exp::default_migration_cost`]); the
//! `fig_bandwidth_sweep` binary shows how shrinking the per-server
//! migration-bandwidth budget turns the "free" migration-only baseline
//! into deadline aborts and evictions, and the `fig_scheduler` binary
//! shows the deadline-aware transfer scheduler (EDF admission control +
//! deflate-then-migrate, see [`transient_exp::scheduler_sweep_table`])
//! winning those aborts back. `docs/EXPERIMENTS.md` is the reproduction
//! guide; `docs/ARCHITECTURE.md` maps every figure to the binary that
//! reproduces it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablation;
pub mod apps_exp;
pub mod audit_exp;
pub mod autoscale_exp;
pub mod cluster_exp;
pub mod feasibility;
pub mod memory_exp;
pub mod profile_exp;
pub mod report;
pub mod scale;
pub mod scale_exp;
pub mod transient_exp;
pub mod web;
pub mod whatif_exp;

pub use report::Table;
pub use scale::Scale;

/// Print every figure's table at the given scale (used by the `all_figures`
/// binary). The engine-scaling sweep (`fig_scale`) and the what-if
/// meta-scheduler (`fig_whatif`) are deliberately not included: they
/// measure the simulator rather than reproducing a figure, and the
/// full-scale million-VM sweep rows would dominate the sequence — run
/// them on their own.
pub fn print_all(scale: Scale) {
    apps_exp::fig03().print();
    feasibility::fig05(scale).print();
    feasibility::fig06(scale).print();
    feasibility::fig07(scale).print();
    feasibility::fig08(scale).print();
    feasibility::fig09(scale).print();
    feasibility::fig10(scale).print();
    feasibility::fig11(scale).print();
    feasibility::fig12(scale).print();
    apps_exp::fig14().print();
    web::fig16(scale).print();
    web::fig17(scale).print();
    web::fig18_table(scale).print();
    web::fig19_table(scale).print();
    cluster_exp::fig20_table(scale).print();
    cluster_exp::fig21_table(scale).print();
    cluster_exp::fig22_table(scale).print();
    transient_exp::fig_transient_table(scale).print();
    transient_exp::bandwidth_sweep_table(scale).print();
    transient_exp::scheduler_sweep_table(scale).print();
    autoscale_exp::fig_autoscale_table(scale).print();
    ablation::placement_ablation(scale).print();
    ablation::partition_ablation(scale).print();
    ablation::mechanism_ablation().print();
}
