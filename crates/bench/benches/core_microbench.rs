//! Micro-benchmarks of the core library primitives: deflation-policy
//! planning, placement scoring and the processor-sharing queue. These are not
//! tied to a paper figure; they quantify the cost of the mechanisms the
//! cluster manager invokes on every admission.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deflate_appsim::queueing::PsQueue;
use deflate_core::placement::{CosineFitness, PlacementPolicy, ServerView};
use deflate_core::policy::{
    DeflationPolicy, DeterministicDeflation, PriorityDeflation, ProportionalDeflation,
    VmResourceState,
};
use deflate_core::resources::ResourceVector;
use deflate_core::vm::{ServerId, VmClass, VmId, VmSpec};
use std::hint::black_box;

fn states(n: usize) -> Vec<VmResourceState> {
    (0..n)
        .map(|i| VmResourceState {
            id: VmId(i as u64),
            max: 8_000.0,
            min: 0.0,
            current: 8_000.0,
            priority: 0.2 + 0.6 * (i as f64 / n.max(1) as f64),
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_planning");
    for n in [8usize, 64, 512] {
        let vms = states(n);
        let demand = 0.3 * 8_000.0 * n as f64;
        group.bench_with_input(BenchmarkId::new("proportional", n), &vms, |b, vms| {
            let policy = ProportionalDeflation::default();
            b.iter(|| black_box(policy.plan(vms, demand)))
        });
        group.bench_with_input(BenchmarkId::new("priority", n), &vms, |b, vms| {
            let policy = PriorityDeflation::default();
            b.iter(|| black_box(policy.plan(vms, demand)))
        });
        group.bench_with_input(BenchmarkId::new("deterministic", n), &vms, |b, vms| {
            let policy = DeterministicDeflation::binary();
            b.iter(|| black_box(policy.plan(vms, demand)))
        });
    }
    group.finish();
}

fn bench_placement(c: &mut Criterion) {
    let servers: Vec<ServerView> = (0..128)
        .map(|i| {
            let total = ResourceVector::cpu_mem(48_000.0, 131_072.0);
            ServerView {
                id: ServerId(i),
                total,
                used: total * (0.3 + 0.5 * (i as f64 / 128.0)),
                deflatable: total * 0.2,
                overcommitment: 1.0 + (i % 4) as f64 * 0.2,
                partition: None,
            }
        })
        .collect();
    let vm = VmSpec::deflatable(
        VmId(1),
        VmClass::Interactive,
        ResourceVector::cpu_mem(8_000.0, 16_384.0),
    );
    c.bench_function("placement_cosine_fitness_128_servers", |b| {
        let policy = CosineFitness::load_balancing();
        b.iter(|| black_box(policy.place(&vm, &servers)))
    });
}

fn bench_ps_queue(c: &mut Criterion) {
    c.bench_function("ps_queue_10k_requests", |b| {
        b.iter(|| {
            let mut q = PsQueue::new(8.0);
            let mut completions = 0usize;
            for i in 0..10_000u64 {
                let t = i as f64 * 0.001;
                completions += q.arrive(t, i, 0.004).len();
            }
            let (done, _) = q.drain(1e9);
            black_box(completions + done.len())
        })
    });
}

criterion_group!(benches, bench_policies, bench_placement, bench_ps_queue);
criterion_main!(benches);
