//! Criterion benches regenerating Figures 20–22: the trace-driven cluster
//! simulation (failure probability, throughput loss, revenue) at a
//! representative 50 % overcommitment point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deflate_bench::cluster_exp::{run_policy, PolicyChoice};
use deflate_bench::Scale;
use deflate_core::pricing::{PricingPolicy, RateCard};
use std::hint::black_box;

fn bench_cluster_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig20_22_cluster_sim");
    group.sample_size(10);
    for policy in [
        PolicyChoice::Proportional,
        PolicyChoice::Priority,
        PolicyChoice::Deterministic,
        PolicyChoice::Preemption,
    ] {
        group.bench_with_input(
            BenchmarkId::new("fig20_21_run_at_50pct_overcommit", policy.name()),
            &policy,
            |b, &p| b.iter(|| black_box(run_policy(Scale::Quick, p, 0.5))),
        );
    }
    group.bench_function("fig22_revenue_accounting", |b| {
        let result = run_policy(Scale::Quick, PolicyChoice::Proportional, 0.5);
        let rates = RateCard::default();
        b.iter(|| {
            black_box(
                result.deflatable_revenue_per_server(&PricingPolicy::static_default(), &rates)
                    + result.deflatable_revenue_per_server(&PricingPolicy::PriorityBased, &rates)
                    + result.deflatable_revenue_per_server(&PricingPolicy::AllocationBased, &rates),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cluster_simulation);
criterion_main!(benches);
