//! Criterion benches regenerating Figures 5–8: the Azure CPU-deflation
//! feasibility analysis (overall, by class, by size, by peak utilisation).

use criterion::{criterion_group, criterion_main, Criterion};
use deflate_bench::feasibility::{self, LEVELS};
use deflate_bench::Scale;
use deflate_traces::analysis;
use std::hint::black_box;

fn bench_azure_feasibility(c: &mut Criterion) {
    let vms = feasibility::azure_population(Scale::Quick);
    let mut group = c.benchmark_group("azure_feasibility");
    group.sample_size(10);
    group.bench_function("fig05_all_vms", |b| {
        b.iter(|| black_box(analysis::cpu_feasibility(&vms, &LEVELS)))
    });
    group.bench_function("fig06_by_class", |b| {
        b.iter(|| black_box(analysis::cpu_feasibility_by_class(&vms, &LEVELS)))
    });
    group.bench_function("fig07_by_size", |b| {
        b.iter(|| black_box(analysis::cpu_feasibility_by_size(&vms, &LEVELS)))
    });
    group.bench_function("fig08_by_peak", |b| {
        b.iter(|| black_box(analysis::cpu_feasibility_by_peak(&vms, &LEVELS)))
    });
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("azure_trace_generation");
    group.sample_size(10);
    group.bench_function("generate_600_vms", |b| {
        b.iter(|| black_box(feasibility::azure_population(Scale::Quick)))
    });
    group.finish();
}

criterion_group!(benches, bench_azure_feasibility, bench_trace_generation);
criterion_main!(benches);
