//! Criterion benches regenerating Figures 9–12: the Alibaba memory /
//! memory-bandwidth / disk / network feasibility analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use deflate_bench::feasibility::{self, LEVELS};
use deflate_bench::Scale;
use deflate_traces::analysis;
use std::hint::black_box;

fn bench_alibaba_feasibility(c: &mut Criterion) {
    let containers = feasibility::alibaba_population(Scale::Quick);
    let mut group = c.benchmark_group("alibaba_feasibility");
    group.sample_size(10);
    group.bench_function("fig09_memory", |b| {
        b.iter(|| black_box(analysis::memory_feasibility(&containers, &LEVELS)))
    });
    group.bench_function("fig10_memory_bandwidth", |b| {
        b.iter(|| black_box(analysis::memory_bandwidth_usage(&containers)))
    });
    group.bench_function("fig11_disk", |b| {
        b.iter(|| black_box(analysis::disk_feasibility(&containers, &LEVELS)))
    });
    group.bench_function("fig12_network", |b| {
        b.iter(|| black_box(analysis::network_feasibility(&containers, &LEVELS)))
    });
    group.finish();
}

criterion_group!(benches, bench_alibaba_feasibility);
criterion_main!(benches);
