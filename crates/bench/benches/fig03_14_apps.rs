//! Criterion benches regenerating Figure 3 (application deflation-response
//! curves) and Figure 14 (SpecJBB memory deflation, transparent vs hybrid).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig03(c: &mut Criterion) {
    c.bench_function("fig03_uniform_deflation_curves", |b| {
        b.iter(|| black_box(deflate_bench::apps_exp::fig03_series()))
    });
}

fn bench_fig14(c: &mut Criterion) {
    c.bench_function("fig14_specjbb_memory_deflation", |b| {
        b.iter(|| black_box(deflate_bench::apps_exp::fig14_series()))
    });
}

criterion_group!(benches, bench_fig03, bench_fig14);
criterion_main!(benches);
