//! Criterion benches regenerating Figures 16–17: the Wikipedia multi-tier
//! application under CPU deflation (response times and requests served).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deflate_appsim::multitier::{MultiTierApp, MultiTierConfig};
use deflate_bench::Scale;
use std::hint::black_box;

fn bench_wikipedia(c: &mut Criterion) {
    let scale = Scale::Quick;
    let config = MultiTierConfig::wikipedia(scale.web_duration_secs(), scale.seed());
    let mut group = c.benchmark_group("fig16_17_wikipedia");
    group.sample_size(10);
    for deflation in [0.0, 0.5, 0.8] {
        group.bench_with_input(
            BenchmarkId::new("run_at_deflation", format!("{:.0}%", deflation * 100.0)),
            &deflation,
            |b, &d| b.iter(|| black_box(MultiTierApp::run(&config, d))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wikipedia);
criterion_main!(benches);
