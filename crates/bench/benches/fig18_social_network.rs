//! Criterion bench regenerating Figure 18: the 30-microservice social
//! network under deflation of its 22 deflatable services.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deflate_appsim::microservice::SocialNetworkApp;
use std::hint::black_box;

fn bench_social_network(c: &mut Criterion) {
    let app = SocialNetworkApp::paper_configuration(500.0);
    let mut group = c.benchmark_group("fig18_social_network");
    group.sample_size(10);
    for deflation in [0.0, 0.5, 0.65] {
        group.bench_with_input(
            BenchmarkId::new("run_at_deflation", format!("{:.0}%", deflation * 100.0)),
            &deflation,
            |b, &d| b.iter(|| black_box(app.run(d, 5_000, 7))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_social_network);
criterion_main!(benches);
