//! Criterion benches for the ablation studies: placement heuristics,
//! cluster partitioning and deflation mechanisms.

use criterion::{criterion_group, criterion_main, Criterion};
use deflate_bench::ablation;
use deflate_bench::Scale;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("placement_heuristics", |b| {
        b.iter(|| black_box(ablation::placement_ablation(Scale::Quick)))
    });
    group.bench_function("cluster_partitions", |b| {
        b.iter(|| black_box(ablation::partition_ablation(Scale::Quick)))
    });
    group.bench_function("deflation_mechanisms", |b| {
        b.iter(|| black_box(ablation::mechanism_ablation()))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
