//! Criterion bench regenerating Figure 19: vanilla vs deflation-aware
//! weighted-round-robin load balancing across three Wikipedia replicas.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deflate_appsim::loadbalancer::{LbPolicy, WebCluster, WebClusterConfig};
use deflate_bench::Scale;
use std::hint::black_box;

fn bench_load_balancing(c: &mut Criterion) {
    let scale = Scale::Quick;
    let config = WebClusterConfig::figure19(scale.web_duration_secs(), scale.seed());
    let mut group = c.benchmark_group("fig19_load_balancing");
    group.sample_size(10);
    for policy in [LbPolicy::Vanilla, LbPolicy::DeflationAware] {
        group.bench_with_input(
            BenchmarkId::new("run_at_60pct_deflation", policy.name()),
            &policy,
            |b, &p| b.iter(|| black_box(WebCluster::run(&config, p, 0.6))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_load_balancing);
criterion_main!(benches);
