//! The deterministic per-application autoscaling control loop.
//!
//! The [`Autoscaler`] is driven entirely by the simulation's event engine:
//! it observes each application at `UtilizationTick` events, schedules
//! `ScaleOut` / `ScaleIn` events for decisions (after the policy's
//! actuation delay), and executes them when the engine delivers those
//! events — all at the coordinator, in the engine's global event order, so
//! autoscale-enabled runs are bit-identical across shard counts.
//!
//! The autoscaler talks to the cluster through the [`ElasticCluster`]
//! trait rather than a concrete manager type: every replica it creates,
//! retires, parks or reinflates goes through the cluster's own accounting
//! (placement, deflation, migration, eviction), never around it —
//! `deflate-cluster` implements the trait for its `ClusterManager`.

use crate::app::ElasticApp;
use crate::stats::{AutoscaleStats, LATENCY_CAP_SECS};
use deflate_appsim::latency::LatencyStats;
use deflate_core::checkpoint::{ByteReader, ByteWriter, CheckpointError, CheckpointResult};
use deflate_core::policy::{AutoscaleParams, AutoscalePolicy};
use deflate_core::vm::{ServerId, VmId, VmSpec};
use deflate_transient::events::SimEvent;

/// The cluster operations an autoscaler needs. Implemented by
/// `deflate-cluster`'s `ClusterManager`; the mock in this crate's tests
/// exercises the control loop without a full cluster.
pub trait ElasticCluster {
    /// Place and start a new replica VM; `None` when no server can make
    /// room. Returns the hosting server for allocation-history recording.
    fn launch_replica(&mut self, spec: VmSpec) -> Option<ServerId>;
    /// Terminate a replica and reinflate its server's residents. `None`
    /// when the VM is not running.
    fn retire_replica(&mut self, vm: VmId) -> Option<ServerId>;
    /// Deflate a replica to `fraction` of its full allocation and mark it
    /// parked (excluded from reinflation) — the deflation-aware scale-in.
    /// `None` when the VM is unknown or mid-migration.
    fn park_replica(&mut self, vm: VmId, fraction: f64) -> Option<ServerId>;
    /// Unpark a replica and reinflate it into whatever room its server
    /// has — the deflation-aware scale-out. `None` when the VM is unknown.
    fn unpark_replica(&mut self, vm: VmId) -> Option<ServerId>;
    /// The replica's current CPU allocation fraction (1.0 = undeflated),
    /// `None` when it is not running.
    fn replica_allocation_fraction(&self, vm: VmId) -> Option<f64>;
}

/// One replica VM managed by the autoscaler.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Member {
    vm: VmId,
    /// Parked by a deflation-aware scale-in: deflated, not serving, but
    /// instantly reinflatable.
    parked: bool,
    /// Time from which the replica serves traffic (launch time + boot
    /// delay for fresh launches; the unpark time for reinflated
    /// replicas — reinflation is instantaneous).
    serving_from: f64,
}

/// Per-application control-loop state.
#[derive(Debug, Clone)]
struct AppState {
    spec: ElasticApp,
    /// Managed replicas, ascending VM id (ids are handed out
    /// monotonically, and scale-ins remove from the tail).
    members: Vec<Member>,
    /// Replica ids consumed so far (`replica_ids_from + launched` is the
    /// next fresh id).
    launched: u64,
    /// No new scaling decision before this time.
    cooldown_until: f64,
}

/// The deterministic target-tracking autoscaler.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    params: AutoscaleParams,
    deflation_aware: bool,
    apps: Vec<AppState>,
    stats: AutoscaleStats,
}

impl Autoscaler {
    /// Build an autoscaler for the given enabled policy and applications.
    ///
    /// # Panics
    ///
    /// Panics when the policy is [`AutoscalePolicy::Disabled`] — a
    /// disabled run must not construct an autoscaler at all (that is what
    /// keeps it bit-identical to the pre-autoscaling engine).
    pub fn new(policy: AutoscalePolicy, apps: Vec<ElasticApp>) -> Self {
        let params = policy
            .params()
            .expect("Autoscaler::new requires an enabled AutoscalePolicy");
        Autoscaler {
            params,
            deflation_aware: policy.is_deflation_aware(),
            apps: apps
                .into_iter()
                .map(|spec| AppState {
                    cooldown_until: spec.start_secs,
                    spec,
                    members: Vec::new(),
                    launched: 0,
                })
                .collect(),
            stats: AutoscaleStats::default(),
        }
    }

    /// Serialize the control loop's **dynamic** state for an engine
    /// checkpoint: per-application member pools (vm id, parked flag,
    /// serving-from time, in pool order), the fresh-id counter, the
    /// cooldown clock, and the accumulated [`AutoscaleStats`]. The policy
    /// parameters and application specs are configuration — the restoring
    /// side rebuilds the autoscaler from the same [`AutoscalePolicy`] and
    /// [`ElasticApp`] list before applying the snapshot.
    pub fn write_snapshot(&self, w: &mut ByteWriter) {
        w.put_usize(self.apps.len());
        for app in &self.apps {
            w.put_usize(app.members.len());
            for m in &app.members {
                w.put_u64(m.vm.0);
                w.put_bool(m.parked);
                w.put_f64(m.serving_from);
            }
            w.put_u64(app.launched);
            w.put_f64(app.cooldown_until);
        }
        let s = &self.stats;
        w.put_usize(s.scale_out_actions);
        w.put_usize(s.scale_in_actions);
        w.put_usize(s.launches);
        w.put_usize(s.launch_failures);
        w.put_usize(s.reinflations);
        w.put_usize(s.parks);
        w.put_usize(s.retirements);
        w.put_usize(s.replicas_lost);
        w.put_usize(s.ticks);
        w.put_usize(s.overload_ticks);
        w.put_f64(s.setpoint_error_sum);
        s.latency.write_snapshot(w);
        w.put_usize(s.final_active);
        w.put_usize(s.final_parked);
    }

    /// Restore [`write_snapshot`](Self::write_snapshot) state onto a
    /// freshly constructed autoscaler (same policy and application list).
    pub fn read_snapshot(&mut self, r: &mut ByteReader<'_>) -> CheckpointResult<()> {
        let num_apps = r.get_usize()?;
        if num_apps != self.apps.len() {
            return Err(CheckpointError::Corrupt(format!(
                "snapshot has {} apps, autoscaler has {}",
                num_apps,
                self.apps.len()
            )));
        }
        for app in &mut self.apps {
            let members = r.get_usize()?;
            app.members.clear();
            for _ in 0..members {
                app.members.push(Member {
                    vm: VmId(r.get_u64()?),
                    parked: r.get_bool()?,
                    serving_from: r.get_f64()?,
                });
            }
            app.launched = r.get_u64()?;
            app.cooldown_until = r.get_f64()?;
        }
        self.stats = AutoscaleStats {
            scale_out_actions: r.get_usize()?,
            scale_in_actions: r.get_usize()?,
            launches: r.get_usize()?,
            launch_failures: r.get_usize()?,
            reinflations: r.get_usize()?,
            parks: r.get_usize()?,
            retirements: r.get_usize()?,
            replicas_lost: r.get_usize()?,
            ticks: r.get_usize()?,
            overload_ticks: r.get_usize()?,
            setpoint_error_sum: r.get_f64()?,
            latency: LatencyStats::read_snapshot(r)?,
            final_active: r.get_usize()?,
            final_parked: r.get_usize()?,
        };
        Ok(())
    }

    /// The bootstrap events: one `ScaleOut` per application at its start
    /// time, which launches the initial pool. The caller schedules these
    /// into the engine before the run begins.
    pub fn initial_events(&self) -> Vec<(f64, SimEvent)> {
        self.apps
            .iter()
            .map(|a| (a.spec.start_secs, SimEvent::ScaleOut { app: a.spec.app }))
            .collect()
    }

    /// Observe every application at a utilisation tick: sample utilisation
    /// and latency into the stats, and — outside the cooldown — schedule
    /// scale events for pools off their setpoint. Returns the events to
    /// schedule.
    pub fn on_tick(&mut self, now: f64, cluster: &impl ElasticCluster) -> Vec<(f64, SimEvent)> {
        let params = self.params;
        let mut events = Vec::new();
        for app in &mut self.apps {
            if now < app.spec.start_secs {
                continue;
            }
            let lambda = app.spec.demand.rate(now);
            let rate = app.spec.replica_rate_rps.max(1e-9);
            // Effective service capacity: serving replicas scaled by their
            // current allocation fraction (deflation slows them down).
            let mut capacity_rps = 0.0;
            let mut inverse_rate_sum = 0.0;
            let mut serving = 0usize;
            for m in app.members.iter().filter(|m| !m.parked) {
                if m.serving_from > now {
                    continue;
                }
                let frac = cluster.replica_allocation_fraction(m.vm).unwrap_or(0.0);
                let replica_rps = frac * rate;
                if replica_rps > 0.0 {
                    capacity_rps += replica_rps;
                    inverse_rate_sum += 1.0 / replica_rps;
                    serving += 1;
                }
            }
            let util = if capacity_rps <= 0.0 {
                f64::INFINITY
            } else {
                lambda / capacity_rps
            };
            self.stats.ticks += 1;
            self.stats.setpoint_error_sum += (util.min(2.0) - params.setpoint).abs();
            if util >= 1.0 {
                self.stats.overload_ticks += 1;
                self.stats.latency.record_dropped();
            } else {
                // Processor-sharing response time: every serving replica
                // runs at load `util`, so replica i answers in
                // `(1/μ_i) / (1 − util)`; the pool mean averages over the
                // replicas a balanced load balancer spreads requests to.
                let mean_service_secs = inverse_rate_sum / serving as f64;
                let latency = (mean_service_secs / (1.0 - util)).min(LATENCY_CAP_SECS);
                self.stats.latency.record_served(latency);
            }

            // Decision, gated by the cooldown.
            if now < app.cooldown_until {
                continue;
            }
            let active = app.members.iter().filter(|m| !m.parked).count();
            let desired = app.spec.desired_replicas(lambda, params.setpoint);
            let fire_at = now + params.actuation_delay_secs.max(0.0);
            if desired > active {
                events.push((fire_at, SimEvent::ScaleOut { app: app.spec.app }));
                self.stats.scale_out_actions += 1;
                app.cooldown_until = now + params.cooldown_secs.max(0.0);
            } else if desired < active && util < params.setpoint - params.deadband {
                events.push((fire_at, SimEvent::ScaleIn { app: app.spec.app }));
                self.stats.scale_in_actions += 1;
                app.cooldown_until = now + params.cooldown_secs.max(0.0);
            }
        }
        events
    }

    /// Execute a scale-out for one application: bring the active pool up
    /// towards the demand-derived desired count, preferring reinflation of
    /// parked replicas (deflation-aware policy) over fresh launches.
    /// Returns the servers whose residents' allocations may have changed.
    pub fn on_scale_out(
        &mut self,
        app: u32,
        now: f64,
        cluster: &mut impl ElasticCluster,
    ) -> Vec<ServerId> {
        let params = self.params;
        let deflation_aware = self.deflation_aware;
        let mut touched = Vec::new();
        let Some(state) = self.apps.iter_mut().find(|a| a.spec.app == app) else {
            return touched;
        };
        let lambda = state.spec.demand.rate(now);
        let desired = state.spec.desired_replicas(lambda, params.setpoint);
        let active = state.members.iter().filter(|m| !m.parked).count();
        let mut need = desired.saturating_sub(active).min(params.max_step.max(1));
        while need > 0 {
            // Reinflate before launching: a parked replica is already
            // booted and placed, so its capacity returns instantly.
            let parked_slot = deflation_aware
                .then(|| state.members.iter().position(|m| m.parked))
                .flatten();
            if let Some(i) = parked_slot {
                let vm = state.members[i].vm;
                if let Some(server) = cluster.unpark_replica(vm) {
                    state.members[i].parked = false;
                    state.members[i].serving_from = now;
                    self.stats.reinflations += 1;
                    touched.push(server);
                } else {
                    // The replica vanished under us (should not happen —
                    // evictions are reported); drop it defensively.
                    state.members.remove(i);
                    self.stats.replicas_lost += 1;
                }
            } else if state.members.len() < state.spec.max_replicas {
                let spec = state.spec.replica_spec(state.launched);
                let vm = spec.id;
                match cluster.launch_replica(spec) {
                    Some(server) => {
                        state.members.push(Member {
                            vm,
                            parked: false,
                            serving_from: now + params.boot_secs.max(0.0),
                        });
                        state.launched += 1;
                        self.stats.launches += 1;
                        touched.push(server);
                    }
                    None => {
                        // Cluster full (mid-reclamation): give up on this
                        // action; the next decision retries.
                        self.stats.launch_failures += 1;
                        break;
                    }
                }
            } else {
                break;
            }
            need -= 1;
        }
        touched
    }

    /// Execute a scale-in for one application: shrink the active pool
    /// towards the desired count, newest replicas first — terminating them
    /// (launch-only) or parking them deflated (deflation-aware). Returns
    /// the servers whose residents' allocations may have changed.
    pub fn on_scale_in(
        &mut self,
        app: u32,
        now: f64,
        cluster: &mut impl ElasticCluster,
    ) -> Vec<ServerId> {
        let params = self.params;
        let deflation_aware = self.deflation_aware;
        let mut touched = Vec::new();
        let Some(state) = self.apps.iter_mut().find(|a| a.spec.app == app) else {
            return touched;
        };
        let lambda = state.spec.demand.rate(now);
        let desired = state
            .spec
            .desired_replicas(lambda, params.setpoint)
            .max(state.spec.min_replicas.max(1));
        let active = state.members.iter().filter(|m| !m.parked).count();
        let mut excess = active.saturating_sub(desired).min(params.max_step.max(1));
        // Newest (highest-id) active replicas go first, keeping the pool's
        // long-lived core stable.
        let mut i = state.members.len();
        while excess > 0 && i > 0 {
            i -= 1;
            if state.members[i].parked {
                continue;
            }
            let vm = state.members[i].vm;
            if deflation_aware {
                if let Some(server) = cluster.park_replica(vm, params.park_fraction) {
                    state.members[i].parked = true;
                    self.stats.parks += 1;
                    touched.push(server);
                    excess -= 1;
                }
                // A park refusal (VM mid-migration) skips to the next
                // candidate; the replica keeps serving.
            } else if let Some(server) = cluster.retire_replica(vm) {
                state.members.remove(i);
                self.stats.retirements += 1;
                touched.push(server);
                excess -= 1;
            } else {
                // Unknown VM: stale member, drop it.
                state.members.remove(i);
                self.stats.replicas_lost += 1;
                excess -= 1;
            }
        }
        touched
    }

    /// Report a replica destroyed by the cluster (reclamation eviction or
    /// a migration abort). Returns `true` when the VM was one of ours —
    /// the caller uses this to tell elastic replicas from workload VMs.
    pub fn on_replica_evicted(&mut self, vm: VmId) -> bool {
        for app in &mut self.apps {
            if let Some(i) = app.members.iter().position(|m| m.vm == vm) {
                app.members.remove(i);
                self.stats.replicas_lost += 1;
                return true;
            }
        }
        false
    }

    /// Drop every member the cluster no longer runs (its allocation
    /// fraction is gone), counting each as lost. The simulator calls this
    /// after operations that can kill VMs without naming them to the
    /// autoscaler — a replica launch preempting other replicas under the
    /// preemption baseline. Returns the number of members dropped.
    pub fn reconcile_lost(&mut self, cluster: &impl ElasticCluster) -> usize {
        let mut dropped = 0;
        for app in &mut self.apps {
            app.members.retain(|m| {
                let alive = cluster.replica_allocation_fraction(m.vm).is_some();
                if !alive {
                    dropped += 1;
                }
                alive
            });
        }
        self.stats.replicas_lost += dropped;
        dropped
    }

    /// True when the VM is a replica currently managed by the autoscaler.
    pub fn is_member(&self, vm: VmId) -> bool {
        self.apps
            .iter()
            .any(|a| a.members.iter().any(|m| m.vm == vm))
    }

    /// Finish the run: fold the final pool composition into the stats and
    /// return them.
    pub fn into_stats(mut self) -> AutoscaleStats {
        for app in &self.apps {
            for m in &app.members {
                if m.parked {
                    self.stats.final_parked += 1;
                } else {
                    self.stats.final_active += 1;
                }
            }
        }
        self.stats
    }

    /// The stats accumulated so far (without the final pool composition).
    pub fn stats(&self) -> &AutoscaleStats {
        &self.stats
    }

    /// Current pool composition across all applications: `(active, parked)`
    /// member counts. The audit observatory's replica-ledger checker uses
    /// this to verify *mid-run* that
    /// `launches == retirements + replicas_lost + active + parked` — the
    /// conservation law [`AutoscaleStats::replicas_conserved`] only checks
    /// at the end of a run.
    pub fn live_replicas(&self) -> (usize, usize) {
        let mut active = 0;
        let mut parked = 0;
        for app in &self.apps {
            for m in &app.members {
                if m.parked {
                    parked += 1;
                } else {
                    active += 1;
                }
            }
        }
        (active, parked)
    }

    /// Owned heap bytes behind the control loop: the per-application member
    /// pools and the latency-sample buffer. Feeds the engine's
    /// `mem.autoscaler` gauge.
    pub fn accounted_bytes(&self) -> u64 {
        deflate_core::mem::vec_capacity_bytes(&self.apps)
            + self
                .apps
                .iter()
                .map(|a| deflate_core::mem::vec_capacity_bytes(&a.members))
                .sum::<u64>()
            + self.stats.latency.accounted_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::DemandCurve;
    use deflate_core::resources::ResourceVector;
    use deflate_core::vm::Priority;
    use std::collections::BTreeMap;

    /// A minimal in-memory cluster: every VM gets fraction 1.0, capacity
    /// for `room` replicas.
    struct MockCluster {
        room: usize,
        fractions: BTreeMap<VmId, f64>,
        parked: BTreeMap<VmId, bool>,
    }

    impl MockCluster {
        fn with_room(room: usize) -> Self {
            MockCluster {
                room,
                fractions: BTreeMap::new(),
                parked: BTreeMap::new(),
            }
        }
    }

    impl ElasticCluster for MockCluster {
        fn launch_replica(&mut self, spec: VmSpec) -> Option<ServerId> {
            if self.fractions.len() >= self.room {
                return None;
            }
            self.fractions.insert(spec.id, 1.0);
            self.parked.insert(spec.id, false);
            Some(ServerId(0))
        }
        fn retire_replica(&mut self, vm: VmId) -> Option<ServerId> {
            self.fractions.remove(&vm).map(|_| ServerId(0))
        }
        fn park_replica(&mut self, vm: VmId, fraction: f64) -> Option<ServerId> {
            let f = self.fractions.get_mut(&vm)?;
            *f = fraction;
            self.parked.insert(vm, true);
            Some(ServerId(0))
        }
        fn unpark_replica(&mut self, vm: VmId) -> Option<ServerId> {
            let f = self.fractions.get_mut(&vm)?;
            *f = 1.0;
            self.parked.insert(vm, false);
            Some(ServerId(0))
        }
        fn replica_allocation_fraction(&self, vm: VmId) -> Option<f64> {
            self.fractions.get(&vm).copied()
        }
    }

    fn app(demand: DemandCurve) -> ElasticApp {
        ElasticApp {
            app: 0,
            replica_size: ResourceVector::cpu_mem(4000.0, 8192.0),
            replica_priority: Priority::new(0.5),
            replica_rate_rps: 100.0,
            replica_ids_from: 1_000_000,
            min_replicas: 1,
            max_replicas: 16,
            demand,
            start_secs: 0.0,
        }
    }

    fn params() -> AutoscaleParams {
        AutoscaleParams {
            setpoint: 0.5,
            deadband: 0.1,
            cooldown_secs: 100.0,
            actuation_delay_secs: 10.0,
            boot_secs: 50.0,
            park_fraction: 0.1,
            max_step: 16,
        }
    }

    #[test]
    fn bootstrap_launches_the_demand_derived_pool() {
        let mut a = Autoscaler::new(
            AutoscalePolicy::TargetTracking(params()),
            vec![app(DemandCurve::Constant { rps: 400.0 })],
        );
        let initial = a.initial_events();
        assert_eq!(initial, vec![(0.0, SimEvent::ScaleOut { app: 0 })]);
        let mut cluster = MockCluster::with_room(100);
        let touched = a.on_scale_out(0, 0.0, &mut cluster);
        // 400 rps at 0.5×100 rps/replica → 8 replicas.
        assert_eq!(a.stats().launches, 8);
        assert_eq!(touched.len(), 8);
        assert_eq!(cluster.fractions.len(), 8);
        // Booting replicas serve nothing yet: the pool is overloaded at
        // t=0 but no new decision fires (desired == active).
        let events = a.on_tick(0.0, &cluster);
        assert!(events.is_empty());
        assert_eq!(a.stats().overload_ticks, 1);
        // Once booted, utilisation sits on the setpoint: no decision, a
        // served latency sample.
        let events = a.on_tick(60.0, &cluster);
        assert!(events.is_empty());
        assert_eq!(a.stats().latency.served(), 1);
        let stats = a.into_stats();
        assert_eq!(stats.final_active, 8);
        assert!(stats.replicas_conserved());
    }

    #[test]
    fn launch_only_terminates_and_relaunches_paying_boot_time() {
        let mut a = Autoscaler::new(
            AutoscalePolicy::TargetTracking(params()),
            vec![app(DemandCurve::Constant { rps: 400.0 })],
        );
        let mut cluster = MockCluster::with_room(100);
        a.on_scale_out(0, 0.0, &mut cluster);
        // Force a scale-in by lowering demand: desired 2 at 100 rps.
        let state = &mut a.apps[0];
        state.spec.demand = DemandCurve::Constant { rps: 100.0 };
        a.on_scale_in(0, 100.0, &mut cluster);
        assert_eq!(a.stats().retirements, 6);
        assert_eq!(cluster.fractions.len(), 2);
        // Demand returns: everything must be relaunched, with boot time.
        a.apps[0].spec.demand = DemandCurve::Constant { rps: 400.0 };
        a.on_scale_out(0, 200.0, &mut cluster);
        assert_eq!(a.stats().launches, 8 + 6);
        assert_eq!(a.stats().reinflations, 0);
        // The relaunched replicas are still booting at t=210.
        a.on_tick(210.0, &cluster);
        assert_eq!(a.stats().overload_ticks, 1);
        assert!(a.into_stats().replicas_conserved());
    }

    #[test]
    fn deflation_aware_parks_and_reinflates_instantly() {
        let mut a = Autoscaler::new(
            AutoscalePolicy::DeflationAware(params()),
            vec![app(DemandCurve::Constant { rps: 400.0 })],
        );
        let mut cluster = MockCluster::with_room(100);
        a.on_scale_out(0, 0.0, &mut cluster);
        a.apps[0].spec.demand = DemandCurve::Constant { rps: 100.0 };
        a.on_scale_in(0, 100.0, &mut cluster);
        assert_eq!(a.stats().parks, 6);
        assert_eq!(a.stats().retirements, 0);
        // Still 8 VMs in the cluster, 6 of them deflated to 10 %.
        assert_eq!(cluster.fractions.len(), 8);
        assert_eq!(cluster.fractions.values().filter(|&&f| f < 0.5).count(), 6);
        // Demand returns: reinflation, no launches, serving immediately.
        a.apps[0].spec.demand = DemandCurve::Constant { rps: 400.0 };
        a.on_scale_out(0, 200.0, &mut cluster);
        assert_eq!(a.stats().reinflations, 6);
        assert_eq!(a.stats().launches, 8);
        a.on_tick(200.0, &cluster);
        assert_eq!(a.stats().overload_ticks, 0, "reinflation is instant");
        let stats = a.into_stats();
        assert_eq!(stats.final_active, 8);
        assert_eq!(stats.final_parked, 0);
        assert!(stats.replicas_conserved());
    }

    #[test]
    fn cooldown_and_deadband_gate_decisions() {
        let mut a = Autoscaler::new(
            AutoscalePolicy::TargetTracking(params()),
            vec![app(DemandCurve::Constant { rps: 400.0 })],
        );
        let mut cluster = MockCluster::with_room(100);
        a.on_scale_out(0, 0.0, &mut cluster);
        // Raise demand: a decision fires and opens the cooldown window.
        a.apps[0].spec.demand = DemandCurve::Constant { rps: 600.0 };
        let events = a.on_tick(60.0, &cluster);
        assert_eq!(events, vec![(70.0, SimEvent::ScaleOut { app: 0 })]);
        // Within the cooldown nothing new fires.
        assert!(a.on_tick(80.0, &cluster).is_empty());
        // After the cooldown the still-unmet demand fires again.
        assert_eq!(a.on_tick(170.0, &cluster).len(), 1);
        assert_eq!(a.stats().scale_out_actions, 2);
    }

    #[test]
    fn full_cluster_counts_launch_failures() {
        let mut a = Autoscaler::new(
            AutoscalePolicy::TargetTracking(params()),
            vec![app(DemandCurve::Constant { rps: 400.0 })],
        );
        let mut cluster = MockCluster::with_room(3);
        a.on_scale_out(0, 0.0, &mut cluster);
        assert_eq!(a.stats().launches, 3);
        assert_eq!(a.stats().launch_failures, 1);
        assert!(a.into_stats().replicas_conserved());
    }

    #[test]
    fn evictions_remove_members_and_count_losses() {
        let mut a = Autoscaler::new(
            AutoscalePolicy::DeflationAware(params()),
            vec![app(DemandCurve::Constant { rps: 200.0 })],
        );
        let mut cluster = MockCluster::with_room(100);
        a.on_scale_out(0, 0.0, &mut cluster);
        let victim = VmId(1_000_000);
        assert!(a.is_member(victim));
        assert!(a.on_replica_evicted(victim));
        assert!(!a.is_member(victim));
        assert!(!a.on_replica_evicted(VmId(42)), "not ours");
        let stats = a.into_stats();
        assert_eq!(stats.replicas_lost, 1);
        assert!(stats.replicas_conserved());
    }

    #[test]
    fn reconcile_drops_members_the_cluster_no_longer_runs() {
        let mut a = Autoscaler::new(
            AutoscalePolicy::TargetTracking(params()),
            vec![app(DemandCurve::Constant { rps: 200.0 })],
        );
        let mut cluster = MockCluster::with_room(100);
        a.on_scale_out(0, 0.0, &mut cluster);
        assert_eq!(a.stats().launches, 4);
        // Something outside the autoscaler (a preempting launch) kills a
        // replica without reporting it.
        cluster.fractions.remove(&VmId(1_000_002));
        assert_eq!(a.reconcile_lost(&cluster), 1);
        assert!(!a.is_member(VmId(1_000_002)));
        assert_eq!(a.reconcile_lost(&cluster), 0, "idempotent");
        let stats = a.into_stats();
        assert_eq!(stats.replicas_lost, 1);
        assert!(stats.replicas_conserved());
    }

    #[test]
    #[should_panic(expected = "enabled AutoscalePolicy")]
    fn disabled_policy_cannot_build_an_autoscaler() {
        let _ = Autoscaler::new(AutoscalePolicy::Disabled, vec![]);
    }
}
