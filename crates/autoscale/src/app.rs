//! Elastic-application specifications and deterministic demand signals.
//!
//! An **elastic application** is a pool of identical replica VMs serving a
//! request stream whose rate varies over time. The autoscaler resizes the
//! pool to keep the pool's utilisation near a setpoint. Everything here is
//! a pure function of simulated time, so runs are deterministic and
//! bit-identical across engine shard counts.

use deflate_core::resources::ResourceVector;
use deflate_core::vm::{Priority, VmClass, VmId, VmSpec};
use serde::{Deserialize, Serialize};

/// A deterministic request-rate signal, requests per second as a pure
/// function of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DemandCurve {
    /// A flat request rate.
    Constant {
        /// Requests per second.
        rps: f64,
    },
    /// A smooth day/night cycle between `base_rps` and `peak_rps`:
    /// `rate(t) = base + (peak − base) · ½(1 + cos(2π(t − peak_at)/period))`.
    /// The rate peaks at `peak_at_secs` (and every period after) and
    /// bottoms out half a period later.
    Diurnal {
        /// Request rate at the trough.
        base_rps: f64,
        /// Request rate at the peak.
        peak_rps: f64,
        /// Cycle length, seconds.
        period_secs: f64,
        /// Time of the (first) peak, seconds.
        peak_at_secs: f64,
    },
}

impl DemandCurve {
    /// The request rate at simulated time `t`, requests per second.
    pub fn rate(&self, t: f64) -> f64 {
        match *self {
            DemandCurve::Constant { rps } => rps.max(0.0),
            DemandCurve::Diurnal {
                base_rps,
                peak_rps,
                period_secs,
                peak_at_secs,
            } => {
                let period = period_secs.max(1.0);
                let angle = std::f64::consts::TAU * ((t - peak_at_secs) / period);
                let swing = (peak_rps - base_rps).max(0.0);
                (base_rps + swing * 0.5 * (1.0 + angle.cos())).max(0.0)
            }
        }
    }

    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            DemandCurve::Constant { .. } => "constant",
            DemandCurve::Diurnal { .. } => "diurnal",
        }
    }
}

/// Specification of one elastic application: the replica template, the
/// pool bounds and the demand signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticApp {
    /// Application id — the entity id carried by `ScaleOut` / `ScaleIn`
    /// events and their shard-routing key.
    pub app: u32,
    /// Resource allocation of one replica VM.
    pub replica_size: ResourceVector,
    /// Deflation priority of the replicas (they are always deflatable —
    /// an elastic interactive application is exactly the paper's target
    /// workload).
    pub replica_priority: Priority,
    /// Service rate of one *undeflated* replica, requests per second. A
    /// replica deflated to allocation fraction `f` serves `f` times this.
    pub replica_rate_rps: f64,
    /// First VM id used for replicas; replica `n` gets
    /// `VmId(replica_ids_from + n)`. Callers must keep this range disjoint
    /// from the trace workload's ids.
    pub replica_ids_from: u64,
    /// Lower bound on the replica pool (never scale in below this).
    pub min_replicas: usize,
    /// Upper bound on the replica pool (never scale out above this).
    pub max_replicas: usize,
    /// The request-rate signal the pool serves.
    pub demand: DemandCurve,
    /// Time the application comes online (its bootstrap scale-out event).
    pub start_secs: f64,
}

impl ElasticApp {
    /// The spec of replica `n` — a deflatable interactive VM with a
    /// deterministic id.
    pub fn replica_spec(&self, n: u64) -> VmSpec {
        VmSpec::deflatable(
            VmId(self.replica_ids_from + n),
            VmClass::Interactive,
            self.replica_size,
        )
        .with_priority(self.replica_priority)
    }

    /// The replica count that serves `lambda_rps` at `setpoint`
    /// utilisation, clamped into `[min_replicas, max_replicas]`.
    pub fn desired_replicas(&self, lambda_rps: f64, setpoint: f64) -> usize {
        let per_replica = (self.replica_rate_rps * setpoint.clamp(0.05, 1.0)).max(1e-9);
        let desired = (lambda_rps.max(0.0) / per_replica).ceil() as usize;
        desired.clamp(self.min_replicas.max(1), self.max_replicas.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> ElasticApp {
        ElasticApp {
            app: 0,
            replica_size: ResourceVector::cpu_mem(4000.0, 8192.0),
            replica_priority: Priority::new(0.5),
            replica_rate_rps: 100.0,
            replica_ids_from: 1_000_000,
            min_replicas: 2,
            max_replicas: 20,
            demand: DemandCurve::Diurnal {
                base_rps: 200.0,
                peak_rps: 1000.0,
                period_secs: 3600.0,
                peak_at_secs: 0.0,
            },
            start_secs: 0.0,
        }
    }

    #[test]
    fn diurnal_demand_peaks_and_troughs() {
        let d = app().demand;
        assert!((d.rate(0.0) - 1000.0).abs() < 1e-9);
        assert!((d.rate(1800.0) - 200.0).abs() < 1e-9);
        assert!((d.rate(3600.0) - 1000.0).abs() < 1e-9);
        // Never negative, even for degenerate shapes.
        let broken = DemandCurve::Diurnal {
            base_rps: -5.0,
            peak_rps: -1.0,
            period_secs: 0.0,
            peak_at_secs: 0.0,
        };
        assert!(broken.rate(123.0) >= 0.0);
        assert_eq!(DemandCurve::Constant { rps: 50.0 }.rate(1e6), 50.0);
    }

    #[test]
    fn desired_replicas_tracks_the_setpoint() {
        let a = app();
        // 1000 rps at 60 % of 100 rps/replica → ceil(1000/60) = 17.
        assert_eq!(a.desired_replicas(1000.0, 0.6), 17);
        // Clamped at the pool bounds.
        assert_eq!(a.desired_replicas(0.0, 0.6), 2);
        assert_eq!(a.desired_replicas(1e9, 0.6), 20);
    }

    #[test]
    fn replica_specs_are_deterministic_and_deflatable() {
        let a = app();
        let s0 = a.replica_spec(0);
        let s7 = a.replica_spec(7);
        assert_eq!(s0.id, VmId(1_000_000));
        assert_eq!(s7.id, VmId(1_000_007));
        assert!(s0.deflatable);
        assert_eq!(s0.class, VmClass::Interactive);
        assert_eq!(a.replica_spec(0), a.replica_spec(0));
    }
}
