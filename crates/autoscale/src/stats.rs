//! Accounting for one simulation run's autoscaling activity.

use deflate_appsim::latency::LatencyStats;
use serde::{Deserialize, Serialize};

/// Latency cap applied to the per-tick response-time model, seconds: an
/// overloaded (or pathologically deflated) pool reports this instead of an
/// unbounded value, which keeps percentile summaries meaningful.
pub const LATENCY_CAP_SECS: f64 = 60.0;

/// What the autoscaler did — and how well the application fared — over one
/// simulation run. Every field is deterministic and joins `SimResult`'s
/// bit-identity contract (the sharded engine must reproduce it exactly).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleStats {
    /// Scale-out decisions scheduled (one `ScaleOut` event each).
    pub scale_out_actions: usize,
    /// Scale-in decisions scheduled (one `ScaleIn` event each).
    pub scale_in_actions: usize,
    /// New replica VMs launched (each pays the boot time before serving).
    pub launches: usize,
    /// Launch attempts the cluster rejected — no server could make room
    /// (typically mid-reclamation). The capacity deficit persists until
    /// the next decision.
    pub launch_failures: usize,
    /// Scale-outs served by *reinflating* a parked replica instead of
    /// launching a new VM — the deflation-aware policy's signature move,
    /// instantaneous where a launch pays the boot time.
    pub reinflations: usize,
    /// Scale-ins served by *parking* (deflating) a replica instead of
    /// terminating it.
    pub parks: usize,
    /// Replicas terminated by launch-only scale-ins.
    pub retirements: usize,
    /// Replicas destroyed by capacity reclamations (evicted or lost
    /// mid-migration) — the elastic population's share of "VMs lost".
    pub replicas_lost: usize,
    /// Utilisation ticks the autoscaler evaluated (per application).
    pub ticks: usize,
    /// Ticks at which the pool was overloaded (utilisation ≥ 1): demand
    /// exceeded the pool's effective service capacity and requests
    /// queued without bound. Each also records a dropped sample in
    /// [`latency`](Self::latency).
    pub overload_ticks: usize,
    /// Sum over ticks of `|utilisation − setpoint|`; divide by
    /// [`ticks`](Self::ticks) for the mean tracking error.
    pub setpoint_error_sum: f64,
    /// Per-tick response-time samples of the application (processor-
    /// sharing model, capped at [`LATENCY_CAP_SECS`]); overload ticks are
    /// recorded as dropped, so `served_fraction` doubles as an SLO metric.
    pub latency: LatencyStats,
    /// Replicas serving (or booting) when the run ended.
    pub final_active: usize,
    /// Replicas parked (deflated, instantly reinflatable) when the run
    /// ended.
    pub final_parked: usize,
}

impl AutoscaleStats {
    /// Mean absolute distance between the observed utilisation and the
    /// setpoint, over all evaluated ticks (0 when autoscaling never ran).
    pub fn mean_setpoint_error(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.setpoint_error_sum / self.ticks as f64
        }
    }

    /// Mean per-tick response time of non-overloaded ticks, seconds.
    pub fn mean_latency_secs(&self) -> f64 {
        self.latency.mean()
    }

    /// 99th-percentile per-tick response time, seconds.
    pub fn p99_latency_secs(&self) -> f64 {
        self.latency.p99()
    }

    /// Fraction of ticks at which the pool met demand (was not
    /// overloaded) — the run's service-level indicator.
    pub fn slo_fraction(&self) -> f64 {
        self.latency.served_fraction()
    }

    /// Total scaling actions of either direction.
    pub fn scale_actions(&self) -> usize {
        self.scale_out_actions + self.scale_in_actions
    }

    /// Replica-conservation check: every replica ever launched is either
    /// still in the pool (active or parked), was retired by a scale-in, or
    /// was lost to a reclamation. The autoscaler cannot create or destroy
    /// capacity any other way.
    pub fn replicas_conserved(&self) -> bool {
        self.launches
            == self.retirements + self.replicas_lost + self.final_active + self.final_parked
    }

    /// Publish the run's autoscaling accounting into the telemetry
    /// metrics registry (no-op when the metrics sink is off). Called once
    /// at the end of a run with the final stats.
    pub fn publish_metrics(&self, telemetry: &deflate_telemetry::TelemetrySink) {
        if !telemetry.enabled() {
            return;
        }
        telemetry.count("autoscale.scale_out_actions", self.scale_out_actions as u64);
        telemetry.count("autoscale.scale_in_actions", self.scale_in_actions as u64);
        telemetry.count("autoscale.launches", self.launches as u64);
        telemetry.count("autoscale.launch_failures", self.launch_failures as u64);
        telemetry.count("autoscale.reinflations", self.reinflations as u64);
        telemetry.count("autoscale.parks", self.parks as u64);
        telemetry.count("autoscale.retirements", self.retirements as u64);
        telemetry.count("autoscale.replicas_lost", self.replicas_lost as u64);
        telemetry.count("autoscale.ticks", self.ticks as u64);
        telemetry.count("autoscale.overload_ticks", self.overload_ticks as u64);
        telemetry.gauge_set("autoscale.mean_setpoint_error", self.mean_setpoint_error());
        telemetry.gauge_set("autoscale.p99_latency_secs", self.p99_latency_secs());
        // The full latency distribution, not just the summary gauges:
        // samples land in the registry's default duration buckets.
        for &secs in self.latency.response_times() {
            telemetry.observe("autoscale.latency_secs", secs);
        }
        telemetry.gauge_set("autoscale.slo_fraction", self.slo_fraction());
        telemetry.gauge_set("autoscale.final_active", self.final_active as f64);
        telemetry.gauge_set("autoscale.final_parked", self.final_parked as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = AutoscaleStats::default();
        assert_eq!(s.mean_setpoint_error(), 0.0);
        assert_eq!(s.mean_latency_secs(), 0.0);
        assert_eq!(s.slo_fraction(), 1.0);
        assert_eq!(s.scale_actions(), 0);
        assert!(s.replicas_conserved());
    }

    #[test]
    fn conservation_balances_the_ledger() {
        let mut s = AutoscaleStats {
            launches: 10,
            retirements: 3,
            replicas_lost: 2,
            final_active: 4,
            final_parked: 1,
            ..Default::default()
        };
        assert!(s.replicas_conserved());
        s.final_parked = 0;
        assert!(!s.replicas_conserved());
    }

    #[test]
    fn publish_lands_in_the_registry() {
        use deflate_telemetry::{TelemetrySink, TelemetrySpec};
        let mut stats = AutoscaleStats {
            launches: 5,
            parks: 2,
            ticks: 8,
            ..Default::default()
        };
        stats.latency.record_served(0.2);
        stats.latency.record_served(0.9);
        let sink = TelemetrySink::in_memory(&TelemetrySpec::profiling());
        stats.publish_metrics(&sink);
        let snap = sink.report().metrics;
        assert_eq!(snap.counter("autoscale.launches"), 5);
        assert_eq!(snap.counter("autoscale.parks"), 2);
        assert_eq!(snap.gauge("autoscale.slo_fraction"), Some(1.0));
        let hist = snap
            .histogram("autoscale.latency_secs")
            .expect("latency histogram published");
        assert_eq!(hist.count, 2);
        assert!((hist.sum - 1.1).abs() < 1e-9);
        // disabled sink: publish is a no-op, not a panic
        stats.publish_metrics(&TelemetrySink::disabled());
    }

    #[test]
    fn setpoint_error_is_averaged_over_ticks() {
        let s = AutoscaleStats {
            ticks: 4,
            setpoint_error_sum: 1.0,
            ..Default::default()
        };
        assert!((s.mean_setpoint_error() - 0.25).abs() < 1e-12);
    }
}
