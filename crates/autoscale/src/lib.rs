//! # deflate-autoscale
//!
//! Deflation-aware elastic autoscaling — the paper's thesis (*"VM
//! deflation makes transient capacity safe for elastic and interactive
//! applications"*, §1/§8) turned into a control loop over the `vmdeflate`
//! cluster simulator.
//!
//! An [`ElasticApp`] is a pool of identical replica VMs serving a
//! deterministic request-rate signal ([`DemandCurve`]). The
//! [`Autoscaler`] observes each pool's utilisation at the simulator's
//! `UtilizationTick` events and steers it towards a setpoint
//! ([`AutoscaleParams`]) by scheduling `ScaleOut` / `ScaleIn` events —
//! decisions actuate after a delay, cooldowns damp the loop, and every
//! replica operation goes through the cluster's own accounting via the
//! [`ElasticCluster`] trait (implemented by `deflate-cluster`'s
//! `ClusterManager`).
//!
//! Two enabled policies share that loop
//! ([`AutoscalePolicy`], defined in `deflate-core`):
//!
//! * **launch-only target tracking** — scale out by launching new
//!   replicas (each pays a boot delay before serving), scale in by
//!   terminating them: today's cloud autoscalers;
//! * **deflation-aware target tracking** — scale in *deflates* replicas
//!   into a parked state instead of terminating them, and scale out
//!   *reinflates* parked replicas before launching anything: the
//!   capacity returns instantly, launches (and their failures under
//!   reclamation pressure) are mostly avoided, and the pool rides out
//!   transient-capacity shocks the way the paper promises.
//!
//! The run's accounting lands in [`AutoscaleStats`] (scale actions,
//! reinflations-instead-of-launches, replicas lost, setpoint error, and a
//! processor-sharing response-time profile built on
//! `deflate-appsim`'s [`LatencyStats`]), which `deflate-cluster` surfaces
//! in its `SimResult` — deterministically, as part of the engine's
//! bit-identity contract across shard counts.
//!
//! [`LatencyStats`]: deflate_appsim::latency::LatencyStats

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod app;
pub mod autoscaler;
pub mod stats;

pub use app::{DemandCurve, ElasticApp};
pub use autoscaler::{Autoscaler, ElasticCluster};
pub use deflate_core::policy::{AutoscaleParams, AutoscalePolicy};
pub use stats::AutoscaleStats;
