//! [`TelemetrySink`]: the handle the engine threads telemetry through.
//!
//! A sink is `Option<Arc<state>>` under the hood: the disabled sink
//! (default) is `None`, clones are pointer-copies, and every publish
//! method is a no-op costing one branch when disabled — in particular no
//! `Instant::now()` call. The engine can therefore take a sink
//! unconditionally.
//!
//! Two invariants the determinism tests pin:
//!
//! * A sink only ever *observes*: nothing it records flows back into
//!   simulation state, so enabled sinks cannot change a `SimResult`.
//! * Sink I/O failures (full disk, unwritable path mid-run) are counted
//!   and reported at [`finish`](TelemetrySink::finish), never surfaced
//!   mid-run — telemetry must not abort or perturb a simulation.

use crate::chrome::{ChromeEvent, ChromeTrace};
use crate::events::{EventField, EventLog};
use crate::profiler::{Phase, PhaseReport, ProfilerState};
use crate::registry::{MetricsRegistry, MetricsSnapshot};
use deflate_core::telemetry::{TelemetryEventKind, TelemetrySpec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Debug)]
struct SinkInner {
    spec: TelemetrySpec,
    /// Timestamp origin for Chrome trace `ts` values.
    epoch: Instant,
    /// Span guards feed the profiler (self-time attribution).
    profile: bool,
    /// Span guards feed the Chrome trace (B/E events).
    chrome_enabled: bool,
    /// `in_memory` sinks never touch the filesystem, even with paths set.
    memory_only: bool,
    metrics: Option<Mutex<MetricsRegistry>>,
    profiler: Mutex<ProfilerState>,
    chrome: Option<Mutex<ChromeTrace>>,
    events: Option<Mutex<EventLog>>,
    io_errors: AtomicU64,
}

/// Cheap-to-clone telemetry handle; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySink {
    inner: Option<Arc<SinkInner>>,
}

impl TelemetrySink {
    /// The disabled sink: every operation is a one-branch no-op.
    pub fn disabled() -> Self {
        TelemetrySink { inner: None }
    }

    /// Build a live sink from a spec, opening file sinks eagerly (so a
    /// bad path fails before the run starts, not after it).
    /// [`TelemetrySpec::is_off`] specs yield the disabled sink.
    pub fn from_spec(spec: &TelemetrySpec) -> std::io::Result<Self> {
        Self::build(spec, false)
    }

    /// Like [`from_spec`](Self::from_spec) but nothing touches the
    /// filesystem: the JSONL log buffers in memory (readable via
    /// [`event_log_lines`](Self::event_log_lines)) and the Chrome trace
    /// is only serialised on demand
    /// ([`chrome_trace_json`](Self::chrome_trace_json)). Used by tests
    /// and the determinism harness.
    pub fn in_memory(spec: &TelemetrySpec) -> Self {
        Self::build(spec, true).expect("in-memory sink performs no I/O")
    }

    fn build(spec: &TelemetrySpec, memory_only: bool) -> std::io::Result<Self> {
        if spec.is_off() {
            return Ok(Self::disabled());
        }
        let events = match &spec.event_log_path {
            None => None,
            Some(path) => Some(Mutex::new(if memory_only {
                EventLog::to_memory(spec.event_kinds, spec.sample_rate())
            } else {
                EventLog::to_file(path, spec.event_kinds, spec.sample_rate())?
            })),
        };
        let chrome_enabled = spec.chrome_trace_path.is_some();
        Ok(TelemetrySink {
            inner: Some(Arc::new(SinkInner {
                spec: spec.clone(),
                epoch: Instant::now(),
                profile: spec.profile,
                chrome_enabled,
                memory_only,
                metrics: spec.metrics.then(|| Mutex::new(MetricsRegistry::new())),
                profiler: Mutex::new(ProfilerState::default()),
                chrome: chrome_enabled.then(|| Mutex::new(ChromeTrace::new())),
                events,
                io_errors: AtomicU64::new(0),
            })),
        })
    }

    /// True when any sink is live.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The spec this sink was built from (`None` when disabled).
    pub fn spec(&self) -> Option<&TelemetrySpec> {
        self.inner.as_deref().map(|inner| &inner.spec)
    }

    // ---- spans ---------------------------------------------------------

    /// Open a coordinator-thread phase span; the returned RAII guard
    /// closes it on drop. Spans nest: each phase is attributed its
    /// *self* time (see [`crate::profiler`]). Must be entered/exited in
    /// stack order, which the guard enforces structurally.
    #[must_use = "the span measures until the guard drops"]
    pub fn span(&self, phase: Phase) -> SpanGuard {
        let live = match &self.inner {
            Some(inner) if inner.profile || inner.chrome_enabled => inner,
            _ => return SpanGuard { live: None },
        };
        inner_chrome_begin(live, phase, 0);
        if live.profile {
            live.profiler.lock().expect("profiler lock").enter(phase);
        }
        SpanGuard {
            live: Some((Arc::clone(live), phase, Instant::now())),
        }
    }

    /// Open a worker-thread span for `shard`. Worker spans don't join
    /// the coordinator's nesting stack — they accumulate flat, per
    /// `(shard, phase)`, and appear on Chrome-trace thread `shard + 1`.
    #[must_use = "the span measures until the guard drops"]
    pub fn shard_span(&self, shard: usize, phase: Phase) -> ShardSpanGuard {
        let live = match &self.inner {
            Some(inner) if inner.profile || inner.chrome_enabled => inner,
            _ => return ShardSpanGuard { live: None },
        };
        let tid = (shard + 1) as u32;
        inner_chrome_begin(live, phase, tid);
        ShardSpanGuard {
            live: Some((Arc::clone(live), phase, shard, Instant::now())),
        }
    }

    // ---- metrics -------------------------------------------------------

    /// Add `n` to a counter (no-op unless the metrics sink is on).
    pub fn count(&self, name: &str, n: u64) {
        if let Some(metrics) = self.metrics_ref() {
            metrics.lock().expect("metrics lock").count(name, n);
        }
    }

    /// Set a gauge (no-op unless the metrics sink is on).
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(metrics) = self.metrics_ref() {
            metrics.lock().expect("metrics lock").gauge_set(name, value);
        }
    }

    /// Record a histogram sample (no-op unless the metrics sink is on).
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(metrics) = self.metrics_ref() {
            metrics.lock().expect("metrics lock").observe(name, value);
        }
    }

    // ---- event log -----------------------------------------------------

    /// True when the JSONL sink is on and its filter includes `kind` —
    /// check before building a field slice for [`log_event`](Self::log_event).
    pub fn wants(&self, kind: TelemetryEventKind) -> bool {
        match &self.inner {
            Some(inner) => match &inner.events {
                Some(log) => log.lock().expect("event log lock").wants(kind),
                None => false,
            },
            None => false,
        }
    }

    /// Record one simulation event (filter and sampling applied inside).
    /// I/O errors are counted, not raised.
    pub fn log_event(
        &self,
        kind: TelemetryEventKind,
        time: f64,
        fields: &[(&str, EventField<'_>)],
    ) {
        if let Some(inner) = &self.inner {
            if let Some(log) = &inner.events {
                let mut log = log.lock().expect("event log lock");
                if log.wants(kind) && log.record(kind, time, fields).is_err() {
                    inner.io_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    // ---- output --------------------------------------------------------

    /// Flush file sinks (JSONL log; Chrome trace is written here, in one
    /// shot) and assemble the final [`TelemetryReport`]. Idempotent for
    /// reporting; call once after the run. I/O errors from the flush are
    /// returned, mid-run write errors appear in
    /// [`TelemetryReport::io_errors`].
    pub fn finish(&self) -> std::io::Result<TelemetryReport> {
        let inner = match &self.inner {
            Some(inner) => inner,
            None => return Ok(TelemetryReport::default()),
        };
        if let Some(log) = &inner.events {
            log.lock().expect("event log lock").flush()?;
        }
        if !inner.memory_only {
            if let (Some(chrome), Some(path)) = (&inner.chrome, &inner.spec.chrome_trace_path) {
                let json = chrome.lock().expect("chrome lock").to_json();
                std::fs::write(path, json)?;
            }
        }
        Ok(self.report())
    }

    /// Assemble the report without flushing anything to disk.
    pub fn report(&self) -> TelemetryReport {
        let inner = match &self.inner {
            Some(inner) => inner,
            None => return TelemetryReport::default(),
        };
        let (chrome_events, chrome_dropped) = match &inner.chrome {
            Some(chrome) => {
                let chrome = chrome.lock().expect("chrome lock");
                (chrome.len(), chrome.dropped())
            }
            None => (0, 0),
        };
        TelemetryReport {
            phases: inner.profiler.lock().expect("profiler lock").report(),
            metrics: inner
                .metrics
                .as_ref()
                .map(|m| m.lock().expect("metrics lock").snapshot())
                .unwrap_or_default(),
            chrome_events,
            chrome_dropped,
            event_lines: inner
                .events
                .as_ref()
                .map(|log| log.lock().expect("event log lock").written())
                .unwrap_or(0),
            io_errors: inner.io_errors.load(Ordering::Relaxed),
        }
    }

    /// The JSONL lines of a memory-backed sink (`None` when disabled or
    /// streaming to a file).
    pub fn event_log_lines(&self) -> Option<Vec<String>> {
        let inner = self.inner.as_deref()?;
        let log = inner.events.as_ref()?.lock().expect("event log lock");
        log.lines().map(|lines| lines.to_vec())
    }

    /// Owned heap bytes behind the sink itself: the metrics registry and
    /// any memory-backed event-log buffer. The observability layer's own
    /// footprint, reported as `mem.telemetry` so the memory ledger keeps
    /// the observer honest too. 0 when disabled. Measured *before* the
    /// ledger publishes its `mem.*` gauges, so the figure excludes the
    /// entries the publish itself adds.
    pub fn accounted_bytes(&self) -> u64 {
        let Some(inner) = self.inner.as_deref() else {
            return 0;
        };
        let metrics = inner
            .metrics
            .as_ref()
            .map_or(0, |m| m.lock().expect("metrics lock").accounted_bytes());
        let events = inner
            .events
            .as_ref()
            .map_or(0, |e| e.lock().expect("event log lock").accounted_bytes());
        metrics + events
    }

    /// Serialise the in-memory Chrome trace (`None` when that sink is
    /// off). Works for both file-backed and memory-only sinks.
    pub fn chrome_trace_json(&self) -> Option<String> {
        let inner = self.inner.as_deref()?;
        Some(
            inner
                .chrome
                .as_ref()?
                .lock()
                .expect("chrome lock")
                .to_json(),
        )
    }

    fn metrics_ref(&self) -> Option<&Mutex<MetricsRegistry>> {
        self.inner
            .as_deref()
            .and_then(|inner| inner.metrics.as_ref())
    }
}

fn inner_chrome_begin(inner: &Arc<SinkInner>, phase: Phase, tid: u32) {
    if let Some(chrome) = &inner.chrome {
        let ts_us = inner.epoch.elapsed().as_micros() as u64;
        chrome.lock().expect("chrome lock").push(ChromeEvent {
            name: phase.name(),
            ph: b'B',
            ts_us,
            tid,
        });
    }
}

fn inner_chrome_end(inner: &Arc<SinkInner>, phase: Phase, tid: u32) {
    if let Some(chrome) = &inner.chrome {
        let ts_us = inner.epoch.elapsed().as_micros() as u64;
        chrome.lock().expect("chrome lock").push(ChromeEvent {
            name: phase.name(),
            ph: b'E',
            ts_us,
            tid,
        });
    }
}

/// RAII guard for a coordinator phase span (see [`TelemetrySink::span`]).
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<(Arc<SinkInner>, Phase, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((inner, phase, start)) = self.live.take() {
            let elapsed = start.elapsed();
            if inner.profile {
                inner
                    .profiler
                    .lock()
                    .expect("profiler lock")
                    .exit(phase, elapsed);
            }
            inner_chrome_end(&inner, phase, 0);
        }
    }
}

/// RAII guard for a worker-thread span (see [`TelemetrySink::shard_span`]).
#[derive(Debug)]
pub struct ShardSpanGuard {
    live: Option<(Arc<SinkInner>, Phase, usize, Instant)>,
}

impl Drop for ShardSpanGuard {
    fn drop(&mut self) {
        if let Some((inner, phase, shard, start)) = self.live.take() {
            let elapsed = start.elapsed();
            if inner.profile {
                inner
                    .profiler
                    .lock()
                    .expect("profiler lock")
                    .record_shard(shard, phase, elapsed);
            }
            inner_chrome_end(&inner, phase, (shard + 1) as u32);
        }
    }
}

/// Everything a finished sink has to say: phase attribution, metrics
/// snapshot and trace-sink statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    /// Per-phase self times, engine total, coverage.
    pub phases: PhaseReport,
    /// Deterministic metrics snapshot.
    pub metrics: MetricsSnapshot,
    /// Chrome trace events collected.
    pub chrome_events: usize,
    /// Chrome trace events dropped at the cap.
    pub chrome_dropped: u64,
    /// JSONL lines recorded (post filter + sampling).
    pub event_lines: u64,
    /// Mid-run sink write failures (swallowed, never raised).
    pub io_errors: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::validate_chrome_trace;
    use crate::events::parse_event_line;
    use deflate_core::telemetry::TelemetryEventSet;

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TelemetrySink::disabled();
        assert!(!sink.enabled());
        {
            let _span = sink.span(Phase::EngineTotal);
            sink.count("x", 1);
            sink.gauge_set("g", 1.0);
            sink.observe("h", 1.0);
            assert!(!sink.wants(TelemetryEventKind::Arrival));
            sink.log_event(TelemetryEventKind::Arrival, 0.0, &[]);
        }
        let report = sink.finish().unwrap();
        assert_eq!(report, TelemetryReport::default());
        assert!(report.phases.is_empty());
        assert!(report.metrics.is_empty());
    }

    #[test]
    fn off_spec_yields_disabled_sink() {
        let sink = TelemetrySink::from_spec(&TelemetrySpec::off()).unwrap();
        assert!(!sink.enabled());
    }

    #[test]
    fn profiling_sink_attributes_phases() {
        let sink = TelemetrySink::in_memory(&TelemetrySpec::profiling());
        {
            let _total = sink.span(Phase::EngineTotal);
            {
                let _arrival = sink.span(Phase::Arrival);
                let _rank = sink.span(Phase::PlacementRank);
            }
            let _shard = sink.shard_span(1, Phase::Heapify);
            sink.count("placements", 3);
            sink.observe("rank_secs", 0.001);
        }
        let report = sink.finish().unwrap();
        assert!(report.phases.engine_total > std::time::Duration::ZERO);
        assert!(!report.phases.self_time(Phase::Arrival).is_zero());
        let shard_rows = &report.phases.shards;
        assert_eq!(shard_rows.len(), 1);
        assert_eq!(shard_rows[0].shard, 1);
        assert_eq!(shard_rows[0].phase, Phase::Heapify);
        assert_eq!(report.metrics.counter("placements"), 3);
    }

    #[test]
    fn memory_sinks_capture_traces() {
        let spec = TelemetrySpec::profiling()
            .with_event_log("ignored.jsonl")
            .with_event_kinds(TelemetryEventSet::all())
            .with_chrome_trace("ignored.trace.json");
        let sink = TelemetrySink::in_memory(&spec);
        {
            let _total = sink.span(Phase::EngineTotal);
            assert!(sink.wants(TelemetryEventKind::ScaleOut));
            sink.log_event(
                TelemetryEventKind::ScaleOut,
                60.0,
                &[("app", EventField::U64(7))],
            );
        }
        let report = sink.finish().unwrap();
        assert_eq!(report.event_lines, 1);
        assert_eq!(report.io_errors, 0);
        let lines = sink.event_log_lines().unwrap();
        let parsed = parse_event_line(&lines[0]).unwrap();
        assert_eq!(parsed.kind, TelemetryEventKind::ScaleOut);
        let chrome = sink.chrome_trace_json().unwrap();
        let stats = validate_chrome_trace(&chrome).unwrap();
        assert_eq!(stats.spans, 1);
        // memory-only: nothing written to the bogus paths
        assert!(!std::path::Path::new("ignored.jsonl").exists());
        assert!(!std::path::Path::new("ignored.trace.json").exists());
    }

    #[test]
    fn file_sinks_round_trip_through_disk() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let jsonl = dir.join(format!("deflate-telemetry-test-{pid}.jsonl"));
        let trace = dir.join(format!("deflate-telemetry-test-{pid}.trace.json"));
        let spec = TelemetrySpec::off()
            .with_event_log(&jsonl)
            .with_event_kinds(TelemetryEventSet::all())
            .with_chrome_trace(&trace);
        let sink = TelemetrySink::from_spec(&spec).unwrap();
        {
            let _total = sink.span(Phase::EngineTotal);
            sink.log_event(TelemetryEventKind::Departure, 10.0, &[]);
        }
        let report = sink.finish().unwrap();
        assert_eq!(report.event_lines, 1);
        let text = std::fs::read_to_string(&jsonl).unwrap();
        assert_eq!(text.lines().count(), 1);
        parse_event_line(text.lines().next().unwrap()).unwrap();
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        validate_chrome_trace(&trace_text).unwrap();
        std::fs::remove_file(&jsonl).ok();
        std::fs::remove_file(&trace).ok();
    }
}
