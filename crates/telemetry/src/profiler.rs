//! Span-based engine phase profiler with self-time attribution.
//!
//! The engine's phases nest — a VM arrival handler contains the
//! placement-ranking loop, a capacity-reclaim handler contains transfer
//! booking — so naive inclusive timing double-counts. The profiler keeps
//! an explicit span stack on the coordinator thread and attributes each
//! span its **self time** (elapsed minus time spent in child spans), so
//! the per-phase rows of a [`PhaseReport`] are disjoint and sum to the
//! engine total.
//!
//! The [`Phase::EngineTotal`] umbrella span wraps the whole run: its
//! elapsed time is the engine total and its *self* time is everything no
//! other span claimed, reported as the `other` row. Coverage — the
//! acceptance metric `fig_profile` enforces — is simply
//! `(total − other) / total`.
//!
//! Worker threads don't share the coordinator stack; sharded work is
//! recorded flat, per `(shard, phase)`, via `TelemetrySink::shard_span`.

use std::collections::BTreeMap;
use std::time::Duration;

/// An engine phase a span can be attributed to.
///
/// `fig_profile` prints one row per phase; `docs/OBSERVABILITY.md`
/// documents where each phase begins and ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Umbrella span around the whole engine run. Its self time is the
    /// `other` (untracked) row.
    EngineTotal,
    /// Building initial per-VM records before the event loop.
    RecordInit,
    /// Building the event schedule (arrivals, departures, capacity
    /// signals, ticks) from the workload.
    ScheduleBuild,
    /// Bulk-heapifying the per-shard event queues.
    Heapify,
    /// Coordinator-side merge: popping the globally next event across
    /// shard heads.
    CoordinatorMerge,
    /// Arrival bookkeeping around placement (record updates, routing).
    Arrival,
    /// Ranking candidate servers for one placement decision — the
    /// ROADMAP item 1 bottleneck, attributed separately from
    /// [`Phase::Arrival`].
    PlacementRank,
    /// Re-scoring servers whose state changed since the last placement
    /// — the incremental score index's maintenance cost, nested inside
    /// [`Phase::PlacementRank`] so the two rows stay disjoint.
    PlacementIndex,
    /// VM departure handling.
    Departure,
    /// The deflate → migrate → evict reclaim ladder for one capacity
    /// signal (restore handling included).
    ReclaimLadder,
    /// Booking staged transfers onto the migration scheduler.
    TransferBooking,
    /// Completing (or aborting) an in-flight migration.
    MigrationCompletion,
    /// Sampling cluster utilisation at a tick.
    UtilizationSampling,
    /// Autoscaler decision + actuation handling.
    Autoscale,
    /// Assembling the final `SimResult`.
    ResultAssembly,
}

impl Phase {
    /// Every phase, in report order.
    pub const ALL: [Phase; 15] = [
        Phase::EngineTotal,
        Phase::RecordInit,
        Phase::ScheduleBuild,
        Phase::Heapify,
        Phase::CoordinatorMerge,
        Phase::Arrival,
        Phase::PlacementRank,
        Phase::PlacementIndex,
        Phase::Departure,
        Phase::ReclaimLadder,
        Phase::TransferBooking,
        Phase::MigrationCompletion,
        Phase::UtilizationSampling,
        Phase::Autoscale,
        Phase::ResultAssembly,
    ];

    /// Stable snake_case name (span name in Chrome traces, row label in
    /// `fig_profile`).
    pub fn name(&self) -> &'static str {
        match self {
            Phase::EngineTotal => "engine_total",
            Phase::RecordInit => "record_init",
            Phase::ScheduleBuild => "schedule_build",
            Phase::Heapify => "heapify",
            Phase::CoordinatorMerge => "coordinator_merge",
            Phase::Arrival => "arrival",
            Phase::PlacementRank => "placement_rank",
            Phase::PlacementIndex => "placement_index",
            Phase::Departure => "departure",
            Phase::ReclaimLadder => "reclaim_ladder",
            Phase::TransferBooking => "transfer_booking",
            Phase::MigrationCompletion => "migration_completion",
            Phase::UtilizationSampling => "utilization_sampling",
            Phase::Autoscale => "autoscale",
            Phase::ResultAssembly => "result_assembly",
        }
    }

    fn index(&self) -> usize {
        Phase::ALL
            .iter()
            .position(|p| p == self)
            .expect("phase in ALL")
    }
}

const NUM_PHASES: usize = Phase::ALL.len();

/// Mutable profiler state, owned by the sink behind a mutex.
#[derive(Debug, Default)]
pub(crate) struct ProfilerState {
    /// Coordinator span stack: `(phase, time spent in child spans)`.
    stack: Vec<(Phase, Duration)>,
    /// Exclusive (self) time per phase.
    self_times: [Duration; NUM_PHASES],
    /// Span entry count per phase.
    counts: [u64; NUM_PHASES],
    /// Total elapsed of `EngineTotal` spans (inclusive).
    engine_total: Duration,
    /// Flat per-`(shard, phase)` worker-side timings.
    shard_times: BTreeMap<(usize, Phase), (Duration, u64)>,
}

impl ProfilerState {
    pub(crate) fn enter(&mut self, phase: Phase) {
        self.stack.push((phase, Duration::ZERO));
    }

    pub(crate) fn exit(&mut self, phase: Phase, elapsed: Duration) {
        let (entered, child_accum) = self.stack.pop().unwrap_or((phase, Duration::ZERO));
        debug_assert_eq!(entered, phase, "unbalanced telemetry span exit");
        let self_time = elapsed.saturating_sub(child_accum);
        self.self_times[phase.index()] += self_time;
        self.counts[phase.index()] += 1;
        if phase == Phase::EngineTotal {
            self.engine_total += elapsed;
        }
        if let Some((_, parent_children)) = self.stack.last_mut() {
            *parent_children += elapsed;
        }
    }

    pub(crate) fn record_shard(&mut self, shard: usize, phase: Phase, elapsed: Duration) {
        let slot = self
            .shard_times
            .entry((shard, phase))
            .or_insert((Duration::ZERO, 0));
        slot.0 += elapsed;
        slot.1 += 1;
    }

    pub(crate) fn report(&self) -> PhaseReport {
        let mut phases = Vec::new();
        for phase in Phase::ALL {
            if phase == Phase::EngineTotal {
                continue;
            }
            let idx = phase.index();
            if self.counts[idx] == 0 {
                continue;
            }
            phases.push(PhaseRow {
                phase,
                self_time: self.self_times[idx],
                count: self.counts[idx],
            });
        }
        PhaseReport {
            phases,
            engine_total: self.engine_total,
            other: self.self_times[Phase::EngineTotal.index()],
            shards: self
                .shard_times
                .iter()
                .map(|(&(shard, phase), &(time, count))| ShardRow {
                    shard,
                    phase,
                    time,
                    count,
                })
                .collect(),
        }
    }
}

/// One coordinator-phase row: disjoint self time and span count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRow {
    /// Which phase.
    pub phase: Phase,
    /// Exclusive wall-clock attributed to the phase.
    pub self_time: Duration,
    /// Number of spans entered.
    pub count: u64,
}

/// One worker-thread row: inclusive time one shard spent in a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRow {
    /// Shard (worker) index.
    pub shard: usize,
    /// Which phase.
    pub phase: Phase,
    /// Inclusive wall-clock.
    pub time: Duration,
    /// Number of spans entered.
    pub count: u64,
}

/// The profiler's output: disjoint per-phase self times that sum (with
/// `other`) to `engine_total`, plus the flat per-shard breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseReport {
    /// Coordinator phases in [`Phase::ALL`] order, zero-count rows elided.
    pub phases: Vec<PhaseRow>,
    /// Inclusive elapsed of the engine-total umbrella span(s).
    pub engine_total: Duration,
    /// Self time of the umbrella span: wall-clock no named phase claimed.
    pub other: Duration,
    /// Worker-side `(shard, phase)` rows, sorted by shard then phase.
    pub shards: Vec<ShardRow>,
}

impl PhaseReport {
    /// Fraction of engine total attributed to named phases: `(total −
    /// other) / total`. `None` before any engine-total span closed.
    pub fn coverage(&self) -> Option<f64> {
        let total = self.engine_total.as_secs_f64();
        (total > 0.0).then(|| (total - self.other.as_secs_f64()).max(0.0) / total)
    }

    /// Self time of one phase (zero when it never ran).
    pub fn self_time(&self, phase: Phase) -> Duration {
        self.phases
            .iter()
            .find(|row| row.phase == phase)
            .map(|row| row.self_time)
            .unwrap_or(Duration::ZERO)
    }

    /// True when the report saw no spans at all.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty() && self.engine_total == Duration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn self_time_excludes_children() {
        let mut state = ProfilerState::default();
        // engine_total { arrival { placement_rank } }
        state.enter(Phase::EngineTotal);
        state.enter(Phase::Arrival);
        state.enter(Phase::PlacementRank);
        state.exit(Phase::PlacementRank, ms(30));
        state.exit(Phase::Arrival, ms(50)); // 20ms self
        state.exit(Phase::EngineTotal, ms(100)); // 50ms other

        let report = state.report();
        assert_eq!(report.engine_total, ms(100));
        assert_eq!(report.self_time(Phase::PlacementRank), ms(30));
        assert_eq!(report.self_time(Phase::Arrival), ms(20));
        assert_eq!(report.other, ms(50));
        let sum: Duration = report.phases.iter().map(|r| r.self_time).sum();
        assert_eq!(sum + report.other, report.engine_total);
        assert!((report.coverage().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn shard_rows_are_flat_and_sorted() {
        let mut state = ProfilerState::default();
        state.record_shard(1, Phase::Heapify, ms(5));
        state.record_shard(0, Phase::Heapify, ms(7));
        state.record_shard(0, Phase::Heapify, ms(3));
        let report = state.report();
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.shards[0].shard, 0);
        assert_eq!(report.shards[0].time, ms(10));
        assert_eq!(report.shards[0].count, 2);
        assert_eq!(report.shards[1].shard, 1);
    }

    #[test]
    fn phase_names_are_unique_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for phase in Phase::ALL {
            assert!(seen.insert(phase.name()), "duplicate name {}", phase.name());
        }
        assert_eq!(Phase::PlacementRank.name(), "placement_rank");
        assert_eq!(Phase::PlacementIndex.name(), "placement_index");
    }
}
