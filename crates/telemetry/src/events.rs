//! Structured JSONL run traces: one JSON object per simulation event.
//!
//! Each recorded line carries the event kind (stable snake_case name
//! from [`TelemetryEventKind::name`]), simulation time `t` in seconds,
//! and a handful of kind-specific fields (`server`, `vm`, `app`,
//! `fraction`, …). The sink applies the spec's kind filter and sampling
//! rate *before* encoding, so a disabled kind costs one branch.
//!
//! [`parse_event_line`] is the matching deserializer (over the stub
//! `serde::json` parser) used by the well-formedness tests to round-trip
//! every emitted line.

use deflate_core::telemetry::{TelemetryEventKind, TelemetryEventSet};
use serde::json::{self, Value};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// A field value on a JSONL trace line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventField<'a> {
    /// Unsigned integer (ids, counts).
    U64(u64),
    /// Floating point (fractions, rates, seconds).
    F64(f64),
    /// Short string (policy names, outcomes).
    Str(&'a str),
}

/// Encode one trace line (no trailing newline). Non-finite floats encode
/// as `null` so every line stays parseable JSON.
pub fn encode_event(
    kind: TelemetryEventKind,
    time: f64,
    fields: &[(&str, EventField<'_>)],
) -> String {
    let mut out = String::with_capacity(64 + fields.len() * 16);
    out.push_str("{\"t\":");
    push_f64(&mut out, time);
    out.push_str(",\"kind\":");
    out.push_str(&json::quote(kind.name()));
    for (name, value) in fields {
        out.push(',');
        out.push_str(&json::quote(name));
        out.push(':');
        match value {
            EventField::U64(v) => out.push_str(&v.to_string()),
            EventField::F64(v) => push_f64(&mut out, *v),
            EventField::Str(s) => out.push_str(&json::quote(s)),
        }
    }
    out.push('}');
    out
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&v.to_string());
    } else {
        out.push_str("null");
    }
}

/// One decoded JSONL trace line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEvent {
    /// The event kind (decoded from its stable name).
    pub kind: TelemetryEventKind,
    /// Simulation time in seconds.
    pub time: f64,
    /// Remaining fields, keyed by name.
    pub fields: BTreeMap<String, Value>,
}

/// Decode one trace line, enforcing the line schema: a JSON object with
/// a known `kind` name and a finite numeric `t`.
pub fn parse_event_line(line: &str) -> Result<ParsedEvent, String> {
    let doc = json::parse(line).map_err(|e| e.to_string())?;
    let obj = doc
        .as_object()
        .ok_or_else(|| "trace line is not a JSON object".to_string())?;
    let kind_name = obj
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| "trace line has no string 'kind'".to_string())?;
    let kind = TelemetryEventKind::parse(kind_name)
        .ok_or_else(|| format!("unknown event kind '{kind_name}'"))?;
    let time = obj
        .get("t")
        .and_then(Value::as_f64)
        .ok_or_else(|| "trace line has no numeric 't'".to_string())?;
    if !time.is_finite() {
        return Err("trace line time is not finite".to_string());
    }
    let fields = obj
        .iter()
        .filter(|(k, _)| k.as_str() != "kind" && k.as_str() != "t")
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    Ok(ParsedEvent { kind, time, fields })
}

/// Where recorded lines go.
#[derive(Debug)]
pub(crate) enum EventWriter {
    /// Kept in memory — what tests and `in_memory` sinks use.
    Memory(Vec<String>),
    /// Streamed to disk through a buffered writer.
    File(BufWriter<File>),
}

/// The JSONL sink: kind filter + sampling + writer.
#[derive(Debug)]
pub(crate) struct EventLog {
    writer: EventWriter,
    kinds: TelemetryEventSet,
    sample_every: u64,
    /// Matching events seen (pre-sampling).
    seen: u64,
    /// Lines actually recorded.
    written: u64,
}

impl EventLog {
    pub(crate) fn to_memory(kinds: TelemetryEventSet, sample_every: u64) -> Self {
        EventLog {
            writer: EventWriter::Memory(Vec::new()),
            kinds,
            sample_every: sample_every.max(1),
            seen: 0,
            written: 0,
        }
    }

    pub(crate) fn to_file(
        path: &Path,
        kinds: TelemetryEventSet,
        sample_every: u64,
    ) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(EventLog {
            writer: EventWriter::File(BufWriter::new(file)),
            kinds,
            sample_every: sample_every.max(1),
            seen: 0,
            written: 0,
        })
    }

    /// True when `kind` passes the filter (sampling applies later, in
    /// [`record`](Self::record)).
    pub(crate) fn wants(&self, kind: TelemetryEventKind) -> bool {
        self.kinds.contains(kind)
    }

    /// Count a matching event and, if it lands on the sampling grid,
    /// encode and record it.
    pub(crate) fn record(
        &mut self,
        kind: TelemetryEventKind,
        time: f64,
        fields: &[(&str, EventField<'_>)],
    ) -> std::io::Result<()> {
        self.seen += 1;
        if !(self.seen - 1).is_multiple_of(self.sample_every) {
            return Ok(());
        }
        let line = encode_event(kind, time, fields);
        self.written += 1;
        match &mut self.writer {
            EventWriter::Memory(lines) => {
                lines.push(line);
                Ok(())
            }
            EventWriter::File(w) => {
                w.write_all(line.as_bytes())?;
                w.write_all(b"\n")
            }
        }
    }

    pub(crate) fn written(&self) -> u64 {
        self.written
    }

    pub(crate) fn flush(&mut self) -> std::io::Result<()> {
        match &mut self.writer {
            EventWriter::Memory(_) => Ok(()),
            EventWriter::File(w) => w.flush(),
        }
    }

    /// The recorded lines, for memory-backed logs (`None` for files).
    pub(crate) fn lines(&self) -> Option<&[String]> {
        match &self.writer {
            EventWriter::Memory(lines) => Some(lines),
            EventWriter::File(_) => None,
        }
    }

    /// Owned heap bytes behind the log: the buffered lines of a
    /// memory-backed writer (file-backed logs stream through a fixed-size
    /// `BufWriter` and hold no growing buffer).
    pub(crate) fn accounted_bytes(&self) -> u64 {
        match &self.writer {
            EventWriter::Memory(lines) => {
                deflate_core::mem::vec_capacity_bytes(lines)
                    + lines.iter().map(|l| l.capacity() as u64).sum::<u64>()
            }
            EventWriter::File(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_parse_round_trip() {
        let line = encode_event(
            TelemetryEventKind::CapacityReclaim,
            1800.0,
            &[
                ("server", EventField::U64(42)),
                ("fraction", EventField::F64(0.25)),
                ("outcome", EventField::Str("deflated")),
            ],
        );
        let parsed = parse_event_line(&line).expect("valid line");
        assert_eq!(parsed.kind, TelemetryEventKind::CapacityReclaim);
        assert_eq!(parsed.time, 1800.0);
        assert_eq!(parsed.fields.get("server").unwrap().as_u64(), Some(42));
        assert_eq!(parsed.fields.get("fraction").unwrap().as_f64(), Some(0.25));
        assert_eq!(
            parsed.fields.get("outcome").unwrap().as_str(),
            Some("deflated")
        );
    }

    #[test]
    fn parse_rejects_bad_lines() {
        assert!(parse_event_line("not json").is_err());
        assert!(parse_event_line("[1]").is_err());
        assert!(parse_event_line("{\"t\":1}").is_err());
        assert!(parse_event_line("{\"t\":1,\"kind\":\"nope\"}").is_err());
        assert!(parse_event_line("{\"kind\":\"arrival\"}").is_err());
    }

    #[test]
    fn filter_and_sampling() {
        let kinds = TelemetryEventSet::none().with(TelemetryEventKind::Arrival);
        let mut log = EventLog::to_memory(kinds, 2);
        assert!(log.wants(TelemetryEventKind::Arrival));
        assert!(!log.wants(TelemetryEventKind::Departure));
        for i in 0..5 {
            log.record(TelemetryEventKind::Arrival, i as f64, &[])
                .unwrap();
        }
        // every 2nd matching event, starting with the first
        assert_eq!(log.written(), 3);
        let lines = log.lines().unwrap();
        assert_eq!(lines.len(), 3);
        assert_eq!(parse_event_line(&lines[1]).unwrap().time, 2.0);
    }

    #[test]
    fn non_finite_fields_stay_parseable() {
        let line = encode_event(
            TelemetryEventKind::UtilizationTick,
            0.0,
            &[("bad", EventField::F64(f64::NAN))],
        );
        let parsed = parse_event_line(&line).expect("still valid JSON");
        assert_eq!(parsed.fields.get("bad"), Some(&Value::Null));
    }
}
