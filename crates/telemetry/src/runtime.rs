//! Engine-runtime accounting shared by every `fig_*` binary: the
//! `engine:` footer (runs, events, wall-clock, throughput, peak RSS)
//! and the `/proc/self/status` peak-RSS reader.
//!
//! This used to live in `deflate-bench` (with RSS only in `fig_scale`);
//! it sits here so the sink's [`report`](crate::TelemetrySink::report)
//! and the bench tables format runtime identically.

/// Aggregate engine-runtime accounting across the simulation runs behind
/// one experiment table. Every `fig_*` binary tallies each run and
/// prints [`footer`](Self::footer) under its table.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RuntimeTally {
    /// Simulation runs tallied.
    pub runs: usize,
    /// Total wall-clock seconds across those runs.
    pub wall_clock_secs: f64,
    /// Total events the engine delivered across those runs.
    pub events: u64,
}

/// The process-wide tally behind [`append_process_footer_json`]: every
/// [`RuntimeTally::add_run`] also folds here, so a `fig_*` binary that
/// spreads runs over several per-table tallies still has one aggregate
/// footer for the machine-readable `DEFLATE_FOOTER_JSON` line.
static PROCESS_TALLY: std::sync::Mutex<RuntimeTally> = std::sync::Mutex::new(RuntimeTally {
    runs: 0,
    wall_clock_secs: 0.0,
    events: 0,
});

/// A copy of the process-wide runtime tally (all `add_run` calls made by
/// this process so far).
pub fn process_tally() -> RuntimeTally {
    *PROCESS_TALLY.lock().expect("process tally lock")
}

/// Append the process-wide footer for `fig` as a JSON line to the path
/// in `DEFLATE_FOOTER_JSON` — the one call every `fig_*` binary makes
/// right before exiting. No-op when the variable is unset.
pub fn append_process_footer_json(fig: &str) {
    process_tally().append_footer_json(fig);
}

impl RuntimeTally {
    /// Fold one run into the tally (and into the process-wide tally
    /// behind [`process_tally`]).
    pub fn add_run(&mut self, wall_clock_secs: f64, events: u64) {
        self.runs += 1;
        self.wall_clock_secs += wall_clock_secs;
        self.events += events;
        let mut global = PROCESS_TALLY.lock().expect("process tally lock");
        global.runs += 1;
        global.wall_clock_secs += wall_clock_secs;
        global.events += events;
    }

    /// Aggregate events/s across the tallied runs (0 before any run).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_clock_secs > 0.0 {
            self.events as f64 / self.wall_clock_secs
        } else {
            0.0
        }
    }

    /// Render the footer line with the process's current peak RSS:
    /// `engine: N runs, E events, W wall-clock, R events/s, rss=X MiB`
    /// (`rss=n/a` where procfs is unavailable).
    pub fn footer(&self) -> String {
        self.footer_with_rss(peak_rss_mib())
    }

    /// [`footer`](Self::footer) with an explicit RSS sample — what tests
    /// pin, since live RSS is nondeterministic.
    pub fn footer_with_rss(&self, rss_mib: Option<f64>) -> String {
        let rss = match rss_mib {
            Some(mib) => format!("{mib:.0} MiB"),
            None => "n/a".to_string(),
        };
        format!(
            "engine: {} runs, {} events, {} wall-clock, {:.0} events/s, rss={}",
            self.runs,
            self.events,
            secs(self.wall_clock_secs),
            self.events_per_sec(),
            rss
        )
    }

    /// The footer as one JSON object line — the machine-readable twin of
    /// [`footer`](Self::footer), keyed by the experiment name. `peak_rss_mib`
    /// is `null` where procfs is unavailable.
    pub fn footer_json(&self, fig: &str, rss_mib: Option<f64>) -> String {
        let rss = match rss_mib {
            Some(mib) => format!("{mib:.3}"),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"fig\":\"{}\",\"runs\":{},\"events\":{},",
                "\"wall_clock_secs\":{:.6},\"events_per_sec\":{:.3},",
                "\"peak_rss_mib\":{}}}"
            ),
            fig,
            self.runs,
            self.events,
            self.wall_clock_secs,
            self.events_per_sec(),
            rss
        )
    }

    /// Append the [`footer_json`](Self::footer_json) line to the path in
    /// the `DEFLATE_FOOTER_JSON` environment variable, if set. Every
    /// `fig_*` binary calls this right after printing its human footer;
    /// CI points the variable at `bench.json` and uploads the artifact.
    /// I/O problems degrade to a stderr warning — a metrics side-channel
    /// must never fail the experiment.
    pub fn append_footer_json(&self, fig: &str) {
        let Ok(path) = std::env::var("DEFLATE_FOOTER_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let line = self.footer_json(fig, peak_rss_mib());
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| {
                use std::io::Write;
                writeln!(f, "{line}")
            });
        if let Err(err) = appended {
            eprintln!("warning: DEFLATE_FOOTER_JSON append to {path} failed: {err}");
        }
    }
}

/// Format seconds, switching to milliseconds below one second.
pub fn secs(x: f64) -> String {
    if x < 1.0 {
        format!("{:.1} ms", x * 1000.0)
    } else {
        format!("{x:.2} s")
    }
}

/// The process's peak resident-set size in MiB, from
/// `/proc/self/status`'s `VmHWM` line.
///
/// Degrades gracefully to `None` — rendered as `rss=n/a` — when procfs
/// is missing (non-Linux), the line is absent, or the value is
/// unparseable or zero; it never reports a bogus `0`.
pub fn peak_rss_mib() -> Option<f64> {
    peak_rss_mib_from(&std::fs::read_to_string("/proc/self/status").ok()?)
}

/// Parse the `VmHWM` line out of a `/proc/self/status` document.
/// Split from [`peak_rss_mib`] so the degraded paths are testable.
pub fn peak_rss_mib_from(status: &str) -> Option<f64> {
    status_kib(status, "VmHWM:").map(|kb| kb / 1024.0)
}

/// Reset the kernel's peak-RSS high-water mark (`VmHWM`) to the current
/// RSS by writing `5` to `/proc/self/clear_refs` (see `proc(5)`).
///
/// `fig_memory` calls this after building a workload so the `VmHWM` it
/// compares accounted bytes against covers the *simulation run*, not the
/// trace-generation phase. Returns `false` — and changes nothing — where
/// procfs is unavailable or not writable (non-Linux, locked-down
/// containers); callers must then label the peak as process-wide.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5\n").is_ok()
}

/// The process's *current* resident-set size in kiB, from
/// `/proc/self/status`'s `VmRSS` line — the live counterpart of
/// [`peak_rss_mib`], sampled into the `mem.rss_kib` gauge on the
/// engine's utilization-tick cadence. Same graceful degradation: `None`
/// (gauge simply absent) on non-Linux hosts or unparseable procfs.
pub fn rss_kib() -> Option<f64> {
    rss_kib_from(&std::fs::read_to_string("/proc/self/status").ok()?)
}

/// Parse the `VmRSS` line out of a `/proc/self/status` document.
/// Split from [`rss_kib`] so the degraded paths are testable.
pub fn rss_kib_from(status: &str) -> Option<f64> {
    status_kib(status, "VmRSS:")
}

/// Shared `/proc/self/status` field parser: the kiB value of `prefix`,
/// `None` when absent, unparseable or zero.
fn status_kib(status: &str, prefix: &str) -> Option<f64> {
    let line = status.lines().find(|l| l.starts_with(prefix))?;
    let kb: f64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    (kb > 0.0).then_some(kb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_accumulates() {
        let mut tally = RuntimeTally::default();
        tally.add_run(2.0, 100);
        tally.add_run(2.0, 100);
        assert_eq!(tally.runs, 2);
        assert_eq!(tally.events, 200);
        assert_eq!(tally.events_per_sec(), 50.0);
        assert_eq!(
            tally.footer_with_rss(None),
            "engine: 2 runs, 200 events, 4.00 s wall-clock, 50 events/s, rss=n/a"
        );
        assert_eq!(
            tally.footer_with_rss(Some(184.2)),
            "engine: 2 runs, 200 events, 4.00 s wall-clock, 50 events/s, rss=184 MiB"
        );
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(0.25), "250.0 ms");
        assert_eq!(secs(2.5), "2.50 s");
    }

    #[test]
    fn rss_parser_degrades_gracefully() {
        assert_eq!(peak_rss_mib_from(""), None);
        assert_eq!(peak_rss_mib_from("VmPeak:  123 kB\n"), None);
        assert_eq!(peak_rss_mib_from("VmHWM:\n"), None);
        assert_eq!(peak_rss_mib_from("VmHWM:   junk kB\n"), None);
        // A zero high-water mark is procfs telling us nothing; report n/a
        // rather than a bogus 0.
        assert_eq!(peak_rss_mib_from("VmHWM:   0 kB\n"), None);
        assert_eq!(peak_rss_mib_from("VmHWM:   2048 kB\n"), Some(2.0));
    }

    #[test]
    fn live_rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_mib().expect("VmHWM available on Linux");
            assert!(rss > 1.0);
            let live = rss_kib().expect("VmRSS available on Linux");
            assert!(live > 1024.0);
        }
    }

    #[test]
    fn vm_rss_parser_degrades_gracefully() {
        assert_eq!(rss_kib_from(""), None);
        assert_eq!(rss_kib_from("VmHWM:  4096 kB\n"), None);
        assert_eq!(rss_kib_from("VmRSS:   0 kB\n"), None);
        assert_eq!(rss_kib_from("VmRSS:   junk kB\n"), None);
        assert_eq!(rss_kib_from("VmRSS:   2048 kB\n"), Some(2048.0));
    }

    #[test]
    fn footer_json_shape() {
        let mut tally = RuntimeTally::default();
        tally.add_run(2.0, 100);
        tally.add_run(2.0, 100);
        assert_eq!(
            tally.footer_json("fig_scale", Some(184.25)),
            "{\"fig\":\"fig_scale\",\"runs\":2,\"events\":200,\
             \"wall_clock_secs\":4.000000,\"events_per_sec\":50.000,\
             \"peak_rss_mib\":184.250}"
        );
        assert_eq!(
            tally.footer_json("fig_scale", None),
            "{\"fig\":\"fig_scale\",\"runs\":2,\"events\":200,\
             \"wall_clock_secs\":4.000000,\"events_per_sec\":50.000,\
             \"peak_rss_mib\":null}"
        );
    }

    #[test]
    fn footer_json_appends_to_env_path() {
        // Serialised with any other env-dependent test by cargo's
        // per-process test lock being absent — so use a unique path and
        // set/remove around the call.
        let dir = std::env::temp_dir().join(format!("deflate_footer_{}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        let mut tally = RuntimeTally::default();
        tally.add_run(1.0, 10);
        std::env::set_var("DEFLATE_FOOTER_JSON", &dir);
        tally.append_footer_json("fig_test");
        tally.append_footer_json("fig_test");
        std::env::remove_var("DEFLATE_FOOTER_JSON");
        let body = std::fs::read_to_string(&dir).expect("footer file written");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"fig\":\"fig_test\","));
        let _ = std::fs::remove_file(&dir);
    }
}
