//! Engine-runtime accounting shared by every `fig_*` binary: the
//! `engine:` footer (runs, events, wall-clock, throughput, peak RSS)
//! and the `/proc/self/status` peak-RSS reader.
//!
//! This used to live in `deflate-bench` (with RSS only in `fig_scale`);
//! it sits here so the sink's [`report`](crate::TelemetrySink::report)
//! and the bench tables format runtime identically.

/// Aggregate engine-runtime accounting across the simulation runs behind
/// one experiment table. Every `fig_*` binary tallies each run and
/// prints [`footer`](Self::footer) under its table.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RuntimeTally {
    /// Simulation runs tallied.
    pub runs: usize,
    /// Total wall-clock seconds across those runs.
    pub wall_clock_secs: f64,
    /// Total events the engine delivered across those runs.
    pub events: u64,
}

impl RuntimeTally {
    /// Fold one run into the tally.
    pub fn add_run(&mut self, wall_clock_secs: f64, events: u64) {
        self.runs += 1;
        self.wall_clock_secs += wall_clock_secs;
        self.events += events;
    }

    /// Aggregate events/s across the tallied runs (0 before any run).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_clock_secs > 0.0 {
            self.events as f64 / self.wall_clock_secs
        } else {
            0.0
        }
    }

    /// Render the footer line with the process's current peak RSS:
    /// `engine: N runs, E events, W wall-clock, R events/s, rss=X MiB`
    /// (`rss=n/a` where procfs is unavailable).
    pub fn footer(&self) -> String {
        self.footer_with_rss(peak_rss_mib())
    }

    /// [`footer`](Self::footer) with an explicit RSS sample — what tests
    /// pin, since live RSS is nondeterministic.
    pub fn footer_with_rss(&self, rss_mib: Option<f64>) -> String {
        let rss = match rss_mib {
            Some(mib) => format!("{mib:.0} MiB"),
            None => "n/a".to_string(),
        };
        format!(
            "engine: {} runs, {} events, {} wall-clock, {:.0} events/s, rss={}",
            self.runs,
            self.events,
            secs(self.wall_clock_secs),
            self.events_per_sec(),
            rss
        )
    }
}

/// Format seconds, switching to milliseconds below one second.
pub fn secs(x: f64) -> String {
    if x < 1.0 {
        format!("{:.1} ms", x * 1000.0)
    } else {
        format!("{x:.2} s")
    }
}

/// The process's peak resident-set size in MiB, from
/// `/proc/self/status`'s `VmHWM` line.
///
/// Degrades gracefully to `None` — rendered as `rss=n/a` — when procfs
/// is missing (non-Linux), the line is absent, or the value is
/// unparseable or zero; it never reports a bogus `0`.
pub fn peak_rss_mib() -> Option<f64> {
    peak_rss_mib_from(&std::fs::read_to_string("/proc/self/status").ok()?)
}

/// Parse the `VmHWM` line out of a `/proc/self/status` document.
/// Split from [`peak_rss_mib`] so the degraded paths are testable.
pub fn peak_rss_mib_from(status: &str) -> Option<f64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    (kb > 0.0).then_some(kb / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_accumulates() {
        let mut tally = RuntimeTally::default();
        tally.add_run(2.0, 100);
        tally.add_run(2.0, 100);
        assert_eq!(tally.runs, 2);
        assert_eq!(tally.events, 200);
        assert_eq!(tally.events_per_sec(), 50.0);
        assert_eq!(
            tally.footer_with_rss(None),
            "engine: 2 runs, 200 events, 4.00 s wall-clock, 50 events/s, rss=n/a"
        );
        assert_eq!(
            tally.footer_with_rss(Some(184.2)),
            "engine: 2 runs, 200 events, 4.00 s wall-clock, 50 events/s, rss=184 MiB"
        );
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(0.25), "250.0 ms");
        assert_eq!(secs(2.5), "2.50 s");
    }

    #[test]
    fn rss_parser_degrades_gracefully() {
        assert_eq!(peak_rss_mib_from(""), None);
        assert_eq!(peak_rss_mib_from("VmPeak:  123 kB\n"), None);
        assert_eq!(peak_rss_mib_from("VmHWM:\n"), None);
        assert_eq!(peak_rss_mib_from("VmHWM:   junk kB\n"), None);
        // A zero high-water mark is procfs telling us nothing; report n/a
        // rather than a bogus 0.
        assert_eq!(peak_rss_mib_from("VmHWM:   0 kB\n"), None);
        assert_eq!(peak_rss_mib_from("VmHWM:   2048 kB\n"), Some(2.0));
    }

    #[test]
    fn live_rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_mib().expect("VmHWM available on Linux");
            assert!(rss > 1.0);
        }
    }
}
