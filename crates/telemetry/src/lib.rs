//! # deflate-telemetry
//!
//! Observability for the vmdeflate simulation engine: a deterministic
//! **metrics registry**, a span-based **engine phase profiler**, and
//! **structured run traces** (JSONL event log + Chrome `trace_event`
//! exporter for Perfetto). `docs/OBSERVABILITY.md` is the user guide.
//!
//! The engine threads a [`TelemetrySink`] through its layers; the sink
//! is built from the [`TelemetrySpec`] knob defined in `deflate-core`.
//! Standing contracts (pinned by `tests/telemetry_determinism.rs`):
//!
//! * **Off by default** — the disabled sink costs one branch per call
//!   site and allocates nothing.
//! * **Observation never changes results** — enabling every sink leaves
//!   each `SimResult` bit-identical, at any shard count.
//!
//! Module map:
//!
//! * [`registry`] — counters, gauges, fixed-bucket histograms with
//!   deterministic (name-ordered) snapshots.
//! * [`profiler`] — the [`Phase`] taxonomy and self-time attribution
//!   behind `fig_profile`'s per-phase table.
//! * [`sink`] — the [`TelemetrySink`] handle and RAII span guards.
//! * [`events`] — JSONL event-log encoding and its deserializer.
//! * [`chrome`] — Chrome `trace_event` export and trace validation.
//! * [`runtime`] — the shared `engine:` footer ([`RuntimeTally`]), the
//!   graceful peak-RSS reader ([`peak_rss_mib`]) and the live-RSS
//!   sampler ([`rss_kib`]).
//! * [`memory`] — the deterministic per-subsystem [`MemoryLedger`]
//!   behind the `mem.*` gauges and `fig_memory`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chrome;
pub mod events;
pub mod memory;
pub mod profiler;
pub mod registry;
pub mod runtime;
pub mod sink;

pub use chrome::{validate_chrome_trace, ChromeTraceStats};
pub use deflate_core::telemetry::{TelemetryEventKind, TelemetryEventSet, TelemetrySpec};
pub use events::{encode_event, parse_event_line, EventField, ParsedEvent};
pub use memory::{map_entry_bytes, vec_bytes, vec_capacity_bytes, MemoryLedger};
pub use profiler::{Phase, PhaseReport, PhaseRow, ShardRow};
pub use registry::{Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use runtime::{
    append_process_footer_json, peak_rss_mib, peak_rss_mib_from, process_tally, reset_peak_rss,
    rss_kib, rss_kib_from, secs, RuntimeTally,
};
pub use sink::{ShardSpanGuard, SpanGuard, TelemetryReport, TelemetrySink};
