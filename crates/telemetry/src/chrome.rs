//! Chrome `trace_event` exporter: every profiler span becomes a
//! `B`/`E` (duration begin/end) event pair, so a sharded run opens
//! directly in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.
//!
//! Thread mapping: `tid 0` is the coordinator (event loop), `tid s+1` is
//! worker shard `s`. Timestamps are microseconds since the sink was
//! created. The collection is capped — beyond `ChromeTrace::DEFAULT_CAP`
//! events, new spans are counted as dropped rather than recorded — so a
//! million-VM run cannot exhaust memory.

use serde::json::{self, Value};

/// One `B` or `E` trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ChromeEvent {
    pub name: &'static str,
    /// `b'B'` (begin) or `b'E'` (end).
    pub ph: u8,
    /// Microseconds since the sink epoch.
    pub ts_us: u64,
    /// 0 = coordinator, shard + 1 = worker threads.
    pub tid: u32,
}

/// In-memory collection of trace events, serialised on `finish()`.
#[derive(Debug, Default)]
pub(crate) struct ChromeTrace {
    events: Vec<ChromeEvent>,
    dropped: u64,
    cap: usize,
}

impl ChromeTrace {
    /// Default event cap (~4M events ≈ a few hundred MiB of JSON).
    pub const DEFAULT_CAP: usize = 4_000_000;

    pub(crate) fn new() -> Self {
        ChromeTrace {
            events: Vec::new(),
            dropped: 0,
            cap: Self::DEFAULT_CAP,
        }
    }

    pub(crate) fn push(&mut self, event: ChromeEvent) {
        if self.events.len() < self.cap {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.events.len()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Serialise as a JSON array (the simple `trace_event` container
    /// format both Perfetto and `chrome://tracing` accept).
    pub(crate) fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 80 + 2);
        out.push('[');
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":");
            out.push_str(&json::quote(ev.name));
            out.push_str(",\"ph\":\"");
            out.push(ev.ph as char);
            out.push_str("\",\"ts\":");
            out.push_str(&ev.ts_us.to_string());
            out.push_str(",\"pid\":1,\"tid\":");
            out.push_str(&ev.tid.to_string());
            out.push('}');
        }
        out.push_str("\n]\n");
        out
    }
}

/// Summary statistics from a validated Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Total trace events (each span contributes a `B` and an `E`).
    pub events: usize,
    /// Completed spans (matched `B`/`E` pairs).
    pub spans: usize,
    /// Distinct thread ids seen.
    pub threads: usize,
    /// Deepest nesting across all threads.
    pub max_depth: usize,
}

/// Validate a serialised Chrome trace: it must be a parseable JSON array
/// whose elements are `B`/`E` events with `name`/`ts`/`pid`/`tid`, with
/// non-decreasing timestamps and matched begin/end pairs per thread.
///
/// Returns summary stats on success, a description of the first problem
/// otherwise. The trace well-formedness tests and the `fig_profile` CI
/// step both run this over freshly written traces.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceStats, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .as_array()
        .ok_or_else(|| "trace root is not a JSON array".to_string())?;

    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
    let mut last_ts: std::collections::BTreeMap<u64, f64> = Default::default();
    let mut spans = 0usize;
    let mut max_depth = 0usize;

    for (i, ev) in events.iter().enumerate() {
        let obj = ev
            .as_object()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let name = obj
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} has no string 'name'"))?;
        let ph = obj
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} has no string 'ph'"))?;
        let ts = obj
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i} has no numeric 'ts'"))?;
        obj.get("pid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i} has no integer 'pid'"))?;
        let tid = obj
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i} has no integer 'tid'"))?;

        if let Some(&prev) = last_ts.get(&tid) {
            if ts < prev {
                return Err(format!(
                    "event {i}: timestamp went backwards on tid {tid} ({ts} < {prev})"
                ));
            }
        }
        last_ts.insert(tid, ts);

        let stack = stacks.entry(tid).or_default();
        match ph {
            "B" => {
                stack.push(name.to_string());
                max_depth = max_depth.max(stack.len());
            }
            "E" => match stack.pop() {
                Some(open) if open == name => spans += 1,
                Some(open) => {
                    return Err(format!(
                        "event {i}: end of '{name}' but '{open}' is open on tid {tid}"
                    ));
                }
                None => {
                    return Err(format!(
                        "event {i}: end of '{name}' with no open span on tid {tid}"
                    ));
                }
            },
            other => return Err(format!("event {i}: unsupported phase '{other}'")),
        }
    }

    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("span '{open}' left open on tid {tid}"));
        }
    }

    Ok(ChromeTraceStats {
        events: events.len(),
        spans,
        threads: stacks.len(),
        max_depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, ph: u8, ts_us: u64, tid: u32) -> ChromeEvent {
        ChromeEvent {
            name,
            ph,
            ts_us,
            tid,
        }
    }

    #[test]
    fn round_trips_through_validator() {
        let mut trace = ChromeTrace::new();
        trace.push(ev("engine_total", b'B', 0, 0));
        trace.push(ev("arrival", b'B', 5, 0));
        trace.push(ev("arrival", b'E', 9, 0));
        trace.push(ev("heapify", b'B', 2, 1));
        trace.push(ev("heapify", b'E', 7, 1));
        trace.push(ev("engine_total", b'E', 20, 0));
        let stats = validate_chrome_trace(&trace.to_json()).expect("valid trace");
        assert_eq!(stats.events, 6);
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.max_depth, 2);
    }

    #[test]
    fn rejects_mismatched_and_unclosed_spans() {
        let mut trace = ChromeTrace::new();
        trace.push(ev("a", b'B', 0, 0));
        trace.push(ev("b", b'E', 1, 0));
        assert!(validate_chrome_trace(&trace.to_json())
            .unwrap_err()
            .contains("'a' is open"));

        let mut trace = ChromeTrace::new();
        trace.push(ev("a", b'B', 0, 0));
        assert!(validate_chrome_trace(&trace.to_json())
            .unwrap_err()
            .contains("left open"));

        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"a\":1}").is_err());
    }

    #[test]
    fn cap_counts_dropped_events() {
        let mut trace = ChromeTrace::new();
        trace.cap = 2;
        for _ in 0..5 {
            trace.push(ev("x", b'B', 0, 0));
        }
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped(), 3);
    }
}
