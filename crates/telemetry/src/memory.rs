//! Deterministic per-subsystem memory accounting: the [`MemoryLedger`].
//!
//! Peak RSS tells you *that* the engine used ~410 MiB at 100k VMs; it
//! does not tell you *where*. The ledger answers that: every stateful
//! subsystem implements an `accounted_bytes()` method (a deterministic
//! walk of its own heap footprint — `Vec` capacities, map entries,
//! resident structs), the engine folds them into one ledger per sample,
//! and the ledger publishes `mem.<subsystem>` gauges into the metrics
//! registry. `fig_memory` prints the resulting breakdown against the
//! kernel's VmRSS/VmHWM numbers — the measured before-picture for the
//! streaming-engine work (ROADMAP item 1).
//!
//! Accounted bytes are an *estimate with a contract*: deterministic
//! (identical across runs, shard counts and hosts — no pointers, no
//! allocator introspection) and honest about what they cover (owned heap
//! blocks reachable from the subsystem, not allocator slack or code).
//! The `fig_memory` CI gate checks the estimate explains ≥ 70 % of
//! measured peak RSS, so the ledger can't quietly rot.

use crate::sink::TelemetrySink;
use std::collections::BTreeMap;

/// A per-subsystem byte ledger, keyed by subsystem name. Names become
/// `mem.<name>` gauges when published; keep them short, snake_case and
/// stable (they are part of the metrics-registry surface documented in
/// `docs/OBSERVABILITY.md`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryLedger {
    entries: BTreeMap<&'static str, u64>,
}

impl MemoryLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        MemoryLedger::default()
    }

    /// Add `bytes` to a subsystem's entry (accumulating — a subsystem
    /// spread over several structures records each part).
    pub fn record(&mut self, subsystem: &'static str, bytes: u64) {
        *self.entries.entry(subsystem).or_insert(0) += bytes;
    }

    /// A subsystem's accounted bytes (0 when never recorded).
    pub fn get(&self, subsystem: &str) -> u64 {
        self.entries.get(subsystem).copied().unwrap_or(0)
    }

    /// Sum over every subsystem.
    pub fn total_bytes(&self) -> u64 {
        self.entries.values().sum()
    }

    /// The entries in name order (deterministic iteration).
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.entries.iter().map(|(&name, &bytes)| (name, bytes))
    }

    /// Number of subsystems recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Publish every entry as a `mem.<subsystem>` gauge (bytes), plus
    /// `mem.accounted_total` — a one-branch no-op when the metrics sink
    /// is off. Gauges are last-value-wins, so the registry ends the run
    /// with the most recent sample.
    pub fn publish(&self, sink: &TelemetrySink) {
        if !sink.enabled() {
            return;
        }
        for (name, bytes) in self.entries() {
            sink.gauge_set(&format!("mem.{name}"), bytes as f64);
        }
        sink.gauge_set("mem.accounted_total", self.total_bytes() as f64);
    }
}

pub use deflate_core::mem::{map_entry_bytes, vec_bytes, vec_capacity_bytes, MAP_ENTRY_OVERHEAD};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_and_totals() {
        let mut ledger = MemoryLedger::new();
        assert!(ledger.is_empty());
        ledger.record("event_queue", 1024);
        ledger.record("vm_records", 2048);
        ledger.record("event_queue", 512);
        assert_eq!(ledger.get("event_queue"), 1536);
        assert_eq!(ledger.get("vm_records"), 2048);
        assert_eq!(ledger.get("missing"), 0);
        assert_eq!(ledger.total_bytes(), 3584);
        assert_eq!(ledger.len(), 2);
        // Name-ordered iteration.
        let names: Vec<&str> = ledger.entries().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["event_queue", "vm_records"]);
    }

    #[test]
    fn publish_lands_in_the_registry() {
        let spec = deflate_core::telemetry::TelemetrySpec {
            metrics: true,
            ..Default::default()
        };
        let sink = TelemetrySink::in_memory(&spec);
        let mut ledger = MemoryLedger::new();
        ledger.record("event_queue", 4096);
        ledger.record("telemetry", 128);
        ledger.publish(&sink);
        let metrics = sink.report().metrics;
        assert_eq!(metrics.gauge("mem.event_queue"), Some(4096.0));
        assert_eq!(metrics.gauge("mem.telemetry"), Some(128.0));
        assert_eq!(metrics.gauge("mem.accounted_total"), Some(4224.0));
    }

    #[test]
    fn publish_on_disabled_sink_is_a_no_op() {
        let sink = TelemetrySink::disabled();
        let mut ledger = MemoryLedger::new();
        ledger.record("event_queue", 4096);
        ledger.publish(&sink); // must not panic or allocate sinks
        assert!(sink.report().metrics.is_empty());
    }
}
