//! Hand-rolled metrics registry: counters, gauges and fixed-bucket
//! histograms with deterministic aggregation order.
//!
//! The offline workspace has no `prometheus`/`metrics` crates, and the
//! engine's determinism contract makes an ordering guarantee valuable
//! anyway: all three families are keyed by `BTreeMap`, so a
//! [`MetricsSnapshot`] always lists series in lexicographic name order
//! and two identical runs render byte-identical metric dumps.

use std::collections::BTreeMap;
use std::fmt;

/// Default histogram bucket upper bounds, in seconds — tuned for engine
/// phase durations (100 µs .. 100 s).
pub const DEFAULT_BUCKETS: [f64; 10] = [1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 100.0];

/// A fixed-bucket histogram: counts per upper bound, plus sum and count
/// for mean recovery. Samples above the last bound land in an implicit
/// overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    overflow: u64,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// A histogram with the given ascending upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
            overflow: 0,
            sum: 0.0,
            count: 0,
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
        match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all samples, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// `(upper_bound, count)` pairs, ending with the overflow bucket as
    /// `(f64::INFINITY, n)`.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.bounds
            .iter()
            .copied()
            .zip(self.counts.iter().copied())
            .chain(std::iter::once((f64::INFINITY, self.overflow)))
            .collect()
    }

    /// Owned heap bytes behind the histogram (bound and count buffers).
    pub fn accounted_bytes(&self) -> u64 {
        deflate_core::mem::vec_capacity_bytes(&self.bounds)
            + deflate_core::mem::vec_capacity_bytes(&self.counts)
    }
}

/// The registry itself. Cheap to create; normally owned by the
/// `TelemetrySink` behind a mutex.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the counter `name` (created at zero on first use).
    pub fn count(&mut self, name: &str, n: u64) {
        *self.entry_counter(name) += n;
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if let Some(slot) = self.gauges.get_mut(name) {
            *slot = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Record `value` into the histogram `name`, creating it with
    /// [`DEFAULT_BUCKETS`] on first use.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.observe_with(name, &DEFAULT_BUCKETS, value);
    }

    /// Record `value` into the histogram `name`, creating it with
    /// `bounds` on first use (later calls keep the original bounds).
    pub fn observe_with(&mut self, name: &str, bounds: &[f64], value: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::new(bounds);
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any sample has been recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Owned heap bytes behind the registry: every series' map entry,
    /// name-string capacity and (for histograms) bucket buffers. Feeds the
    /// sink's self-accounting `mem.telemetry` gauge.
    pub fn accounted_bytes(&self) -> u64 {
        use deflate_core::mem::map_entry_bytes;
        use std::mem::size_of;
        let string_heap = |s: &String| s.capacity() as u64;
        self.counters
            .keys()
            .map(|k| map_entry_bytes(size_of::<String>(), size_of::<u64>()) + string_heap(k))
            .sum::<u64>()
            + self
                .gauges
                .keys()
                .map(|k| map_entry_bytes(size_of::<String>(), size_of::<f64>()) + string_heap(k))
                .sum::<u64>()
            + self
                .histograms
                .iter()
                .map(|(k, h)| {
                    map_entry_bytes(size_of::<String>(), size_of::<Histogram>())
                        + string_heap(k)
                        + h.accounted_bytes()
                })
                .sum::<u64>()
    }

    /// Deterministic point-in-time snapshot: every family in
    /// lexicographic name order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            buckets: h.buckets(),
                            sum: h.sum,
                            count: h.count,
                        },
                    )
                })
                .collect(),
        }
    }

    fn entry_counter(&mut self, name: &str) -> &mut u64 {
        if !self.counters.contains_key(name) {
            self.counters.insert(name.to_string(), 0);
        }
        self.counters.get_mut(name).expect("just inserted")
    }
}

/// Frozen copy of one histogram for a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// `(upper_bound, count)` pairs ending with the `+Inf` overflow bucket.
    pub buckets: Vec<(f64, u64)>,
    /// Sum of all samples.
    pub sum: f64,
    /// Number of samples.
    pub count: u64,
}

/// A point-in-time dump of the registry, series sorted by name. The
/// `Display` impl renders one series per line — byte-identical across
/// identical runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter series, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauge series, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Histogram series, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// True when no series has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "counter {name} = {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "gauge {name} = {v}")?;
        }
        for (name, h) in &self.histograms {
            let mean = if h.count > 0 {
                h.sum / h.count as f64
            } else {
                0.0
            };
            writeln!(f, "histogram {name}: count={} mean={mean:.6}", h.count)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.counter("x"), 0);
        reg.count("x", 2);
        reg.count("x", 3);
        assert_eq!(reg.counter("x"), 5);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("g", 1.0);
        reg.gauge_set("g", 2.5);
        assert_eq!(reg.gauge("g"), Some(2.5));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(100.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets(), vec![(1.0, 1), (10.0, 1), (f64::INFINITY, 1)]);
        assert!((h.mean().unwrap() - 105.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_is_name_ordered_and_deterministic() {
        let mut reg = MetricsRegistry::new();
        reg.count("z_last", 1);
        reg.count("a_first", 1);
        reg.gauge_set("mid", 0.0);
        reg.observe("lat", 0.01);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["a_first", "z_last"]);
        assert_eq!(snap.to_string(), reg.snapshot().to_string());
        assert_eq!(snap.counter("z_last"), 1);
        assert_eq!(snap.counter("missing"), 0);
    }
}
