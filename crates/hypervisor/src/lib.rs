//! # deflate-hypervisor
//!
//! Simulated KVM/cgroups hypervisor substrate for the `vmdeflate` workspace.
//!
//! The paper's prototype drives a real hypervisor: KVM VMs run inside cgroups
//! (transparent deflation through `cpu.shares`, `memory.limit_in_bytes` and
//! the blkio / network controllers) and are resized explicitly through
//! QEMU-agent vCPU / memory hotplug (§4, §6). That substrate is unavailable
//! here, so this crate re-implements its *behaviour*: the same operations,
//! the same granularity restrictions and the same safety thresholds, but
//! against in-memory state rather than `/sys/fs/cgroup` and libvirt.
//!
//! * [`cgroups`] — per-VM cgroup controllers (limits, usage, pressure).
//! * [`guest`] — the guest-OS model that arbitrates hotplug requests
//!   (whole-vCPU granularity, RSS safety threshold, partial success).
//! * [`domain`] — a simulated VM combining both paths, with the transparent
//!   / explicit / hybrid deflation mechanisms of §4 (Figure 13).
//! * [`server`] — a physical server hosting domains, with the accounting the
//!   cluster layer needs (committed vs effective allocations, overcommitment,
//!   deflatable headroom).
//! * [`controller`] — the per-server local deflation controller of §6 that
//!   applies policies from `deflate-core` and emits deflation notifications.
//! * [`migration`] — the live-migration cost model: page-transfer time
//!   derived from a domain's hot footprint (RSS + page cache), dirty-page
//!   overhead, and per-server migration-bandwidth budgets.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cgroups;
pub mod controller;
pub mod domain;
pub mod guest;
pub mod migration;
pub mod server;

pub use controller::{AdmissionOutcome, DeflationNotification, LocalController};
pub use domain::{CacheRegrowthModel, DeflationMechanism, DeflationOutcome, Domain};
pub use guest::{GuestOs, HotplugOutcome, MEMORY_BLOCK_MB};
pub use migration::MigrationCostModel;
pub use server::SimServer;

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::cgroups::{CgroupController, CgroupSet};
    pub use crate::controller::{AdmissionOutcome, DeflationNotification, LocalController};
    pub use crate::domain::{CacheRegrowthModel, DeflationMechanism, DeflationOutcome, Domain};
    pub use crate::guest::{GuestOs, HotplugOutcome};
    pub use crate::migration::MigrationCostModel;
    pub use crate::server::SimServer;
}
