//! Live-migration cost model: page-transfer time and per-server bandwidth
//! budgets.
//!
//! The paper's central argument is that deflation beats migration and
//! eviction on transient servers *because migration is not free*: moving a
//! VM means copying its hot memory footprint over the network, and the
//! provider's reclamation deadline does not wait for the copy to finish
//! (§2's live-migration strawman). This module quantifies that cost with
//! the standard pre-copy shape from the live-migration literature:
//!
//! ```text
//! transfer time = floor + (hot footprint × dirty-page overhead) / bandwidth
//! ```
//!
//! * the **hot footprint** is the memory that must actually move — the
//!   guest's resident set plus its page cache, as tracked by
//!   [`GuestOs`](crate::guest::GuestOs) (cold, never-touched pages are not
//!   copied by post-copy/ballooned migration);
//! * the **dirty-page overhead** factor (`>= 1.0`) models the extra
//!   pre-copy rounds needed to re-send pages the guest dirties while the
//!   copy is running — bounded by the dirty rate over the link bandwidth.
//!   By default it is a constant; switching on the **dirty-rate model**
//!   ([`MigrationCostModel::with_dirty_rate`]) derives it from the
//!   domain's recent CPU-utilisation history instead: write-heavy guests
//!   pay the geometric pre-copy series `1/(1 − dirty/link)`, and guests
//!   whose dirty rate exceeds [`PRECOPY_CONVERGENCE_LIMIT`] of the link
//!   never converge — they are charged a final **stop-and-copy** downtime
//!   on top of the page volume;
//! * the **floor** is the fixed per-migration cost (connection setup, final
//!   stop-and-copy round, device state) that even an idle VM pays;
//! * the **per-server bandwidth budget** caps how many transfers a server
//!   can drive concurrently: each transfer consumes one full link worth of
//!   bandwidth on *both* endpoints, so a server with a budget of
//!   `2 × link` can source or sink two migrations at once and queues the
//!   rest.
//!
//! The cluster layer ([`deflate-cluster`]'s manager) combines this model
//! with a **reclamation deadline**: when the provider reclaims capacity, a
//! migration that cannot finish before the deadline is aborted and the VM
//! is evicted — the transient-server race the paper argues deflation
//! side-steps.
//!
//! [`deflate-cluster`]: ../../deflate_cluster/index.html

use crate::domain::Domain;
use serde::{Deserialize, Serialize};

/// Dirty-to-link bandwidth ratio above which pre-copy is declared
/// non-convergent: each round would re-send more than this fraction of the
/// previous one, so the geometric series is cut off and the hypervisor
/// falls back to stop-and-copy (the guest pauses while the remaining dirty
/// set crosses the link).
pub const PRECOPY_CONVERGENCE_LIMIT: f64 = 0.8;

/// Cost model for live-migrating one [`Domain`] between servers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationCostModel {
    /// Effective bandwidth of one migration stream, MiB/s. A migration
    /// copies the VM's hot footprint at this rate; `0.0` makes every
    /// migration impossible (infinite transfer time).
    pub link_bandwidth_mbps: f64,
    /// Pre-copy dirty-page overhead factor (`>= 1.0`): the hot footprint is
    /// multiplied by this to account for re-sent dirty pages.
    pub dirty_page_overhead: f64,
    /// Fixed per-migration cost in seconds (setup + final stop-and-copy
    /// round), paid even by an idle VM — the page-transfer floor.
    pub setup_floor_secs: f64,
    /// Per-server migration-bandwidth budget, MiB/s. Each active transfer
    /// reserves one full `link_bandwidth_mbps` on both endpoints, so a
    /// server runs at most `floor(budget / link)` concurrent transfers and
    /// queues the rest.
    pub per_server_bandwidth_mbps: f64,
    /// Grace period after a capacity reclamation, seconds: migrations off
    /// the shrinking server that cannot complete within this window are
    /// aborted and the VM is evicted. `f64::INFINITY` disables the race.
    pub reclaim_deadline_secs: f64,
    /// Page-dirtying bandwidth of a fully-busy guest, MiB/s. When positive,
    /// the pre-copy overhead is *derived* from the domain's recent CPU
    /// utilisation instead of the constant `dirty_page_overhead`: a guest
    /// at utilisation `u` dirties pages at `u × dirty_rate_mbps`, and each
    /// pre-copy round must re-send what was dirtied during the previous
    /// one. `0.0` (the default) keeps the constant-factor behaviour
    /// bit-identical to the model before dirty-rate awareness existed.
    pub dirty_rate_mbps: f64,
    /// Extra downtime charged when pre-copy cannot converge (the dirty rate
    /// exceeds [`PRECOPY_CONVERGENCE_LIMIT`] of the link): the guest is
    /// paused for a final stop-and-copy round of its dirty working set.
    pub stop_copy_downtime_secs: f64,
}

/// One migration's predicted cost, as estimated by
/// [`MigrationCostModel::transfer_estimate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferEstimate {
    /// Predicted wall-clock transfer time, seconds (infinite when the
    /// effective bandwidth is zero).
    pub secs: f64,
    /// Predicted bytes on the wire, MiB.
    pub volume_mb: f64,
    /// False when pre-copy was predicted not to converge and a
    /// stop-and-copy downtime charge is included in `secs`.
    pub converges: bool,
}

impl MigrationCostModel {
    /// The cost-free legacy model: migrations are instantaneous, budgets
    /// unlimited and deadlines never expire. Reproduces the behaviour of
    /// the simulator before migration costs existed.
    pub fn instant() -> Self {
        MigrationCostModel {
            link_bandwidth_mbps: f64::INFINITY,
            dirty_page_overhead: 1.0,
            setup_floor_secs: 0.0,
            per_server_bandwidth_mbps: f64::INFINITY,
            reclaim_deadline_secs: f64::INFINITY,
            dirty_rate_mbps: 0.0,
            stop_copy_downtime_secs: 0.0,
        }
    }

    /// A datacenter-LAN default: one 10 GbE link (~1.25 GiB/s) per
    /// migration stream, 30 % dirty-page overhead, half a second of fixed
    /// cost, a two-stream per-server budget, and the two-minute reclamation
    /// warning real spot offerings give.
    pub fn lan_default() -> Self {
        MigrationCostModel {
            link_bandwidth_mbps: 1250.0,
            dirty_page_overhead: 1.3,
            setup_floor_secs: 0.5,
            per_server_bandwidth_mbps: 2500.0,
            reclaim_deadline_secs: 120.0,
            dirty_rate_mbps: 0.0,
            stop_copy_downtime_secs: 0.0,
        }
    }

    /// Builder-style override of the per-server bandwidth budget (used by
    /// the bandwidth-sweep experiment).
    pub fn with_budget_mbps(mut self, budget_mbps: f64) -> Self {
        self.per_server_bandwidth_mbps = budget_mbps;
        self
    }

    /// Builder-style override of the reclamation deadline.
    pub fn with_deadline_secs(mut self, deadline_secs: f64) -> Self {
        self.reclaim_deadline_secs = deadline_secs;
        self
    }

    /// Builder-style switch to dirty-rate-aware pre-copy: a fully-busy
    /// guest dirties pages at `dirty_rate_mbps`, and non-converging
    /// transfers pay `stop_copy_downtime_secs` of stop-and-copy downtime.
    /// The constant `dirty_page_overhead` is ignored while this is active.
    pub fn with_dirty_rate(mut self, dirty_rate_mbps: f64, stop_copy_downtime_secs: f64) -> Self {
        self.dirty_rate_mbps = dirty_rate_mbps.max(0.0);
        self.stop_copy_downtime_secs = stop_copy_downtime_secs.max(0.0);
        self
    }

    /// True when this model charges nothing (the [`instant`](Self::instant)
    /// behaviour): migrations then complete inline instead of becoming
    /// in-flight transfers. A finite per-server budget makes transfers
    /// costed even over an infinite link, so it is checked too.
    pub fn is_instant(&self) -> bool {
        self.effective_link_mbps().is_infinite() && self.setup_floor_secs <= 0.0
    }

    /// The hot memory footprint of a domain in MiB: resident set plus page
    /// cache — what a pre-copy migration must actually move.
    pub fn hot_footprint_mb(domain: &Domain) -> f64 {
        (domain.guest.rss_mb() + domain.guest.page_cache_mb()).min(domain.guest.plugged_memory_mb())
    }

    /// Pre-copy overhead factor for a CPU-utilisation estimate, and whether
    /// pre-copy converges at that utilisation.
    ///
    /// Without a dirty-rate model this is the constant
    /// `dirty_page_overhead` (always convergent). With one, a guest at
    /// utilisation `u` dirties pages at `u × dirty_rate_mbps`; each
    /// pre-copy round re-sends what the previous round's copy time let the
    /// guest dirty, so the total volume is the geometric series
    /// `footprint × 1/(1 − r)` with `r = dirty rate / link`. Beyond
    /// [`PRECOPY_CONVERGENCE_LIMIT`] the series is cut off: the volume is
    /// pinned at the limit's factor (`1/(1 − limit)` — the most pre-copy
    /// the hypervisor will attempt before giving up) and the transfer is
    /// flagged non-convergent so the stop-and-copy downtime charge
    /// applies. Pinning (rather than dropping to a one-round factor)
    /// keeps the cost **monotone in utilisation**: a busier guest is
    /// never estimated cheaper than a calmer one.
    fn precopy_overhead(&self, util: f64) -> (f64, bool) {
        if self.dirty_rate_mbps <= 0.0 {
            return (self.dirty_page_overhead.max(1.0), true);
        }
        let link = self.effective_link_mbps();
        if link <= 0.0 || link.is_infinite() {
            // No finite link: the transfer is impossible or instantaneous
            // either way, so dirtying during the copy is moot.
            return (1.0, true);
        }
        let ratio = util.clamp(0.0, 1.0) * self.dirty_rate_mbps / link;
        if ratio <= PRECOPY_CONVERGENCE_LIMIT {
            (1.0 / (1.0 - ratio), true)
        } else {
            (1.0 / (1.0 - PRECOPY_CONVERGENCE_LIMIT), false)
        }
    }

    /// Full cost prediction for migrating this domain, given an estimate of
    /// its recent CPU utilisation (`[0, 1]`). This is the scheduler-facing
    /// entry point: admission control compares `secs` against the
    /// reclamation deadline before granting a bandwidth slot.
    pub fn transfer_estimate(&self, domain: &Domain, util: f64) -> TransferEstimate {
        let (factor, converges) = self.precopy_overhead(util);
        let volume = Self::hot_footprint_mb(domain) * factor;
        let link = self.effective_link_mbps();
        let secs = if link <= 0.0 {
            f64::INFINITY
        } else if link.is_infinite() {
            self.setup_floor_secs.max(0.0)
        } else {
            let downtime = if converges {
                0.0
            } else {
                self.stop_copy_downtime_secs.max(0.0)
            };
            self.setup_floor_secs.max(0.0) + volume / link + downtime
        };
        TransferEstimate {
            secs,
            volume_mb: volume,
            converges,
        }
    }

    /// Bytes on the wire for migrating this domain, MiB (hot footprint
    /// inflated by the pre-copy overhead, read from the domain's recent
    /// utilisation history when a dirty-rate model is active).
    pub fn transfer_volume_mb(&self, domain: &Domain) -> f64 {
        self.transfer_estimate(domain, domain.recent_cpu_utilization())
            .volume_mb
    }

    /// The bandwidth one migration stream actually gets, MiB/s: the link
    /// rate, capped by the per-server budget (a transfer cannot stream
    /// faster than the budget of either endpoint it crosses).
    pub fn effective_link_mbps(&self) -> f64 {
        self.link_bandwidth_mbps.min(self.per_server_bandwidth_mbps)
    }

    /// Transfer time for migrating this domain over one migration stream,
    /// seconds, at the domain's recent CPU utilisation. Infinite when the
    /// effective bandwidth is zero (migration impossible); zero only for
    /// the [`instant`](Self::instant) model.
    pub fn transfer_secs(&self, domain: &Domain) -> f64 {
        self.transfer_estimate(domain, domain.recent_cpu_utilization())
            .secs
    }

    /// Number of migrations a server can source or sink concurrently under
    /// the per-server bandwidth budget. At least one (a budget below one
    /// link still serialises transfers rather than forbidding them);
    /// `usize::MAX` for unlimited budgets.
    pub fn concurrent_slots(&self) -> usize {
        if self.per_server_bandwidth_mbps.is_infinite() {
            return usize::MAX;
        }
        let link = self.effective_link_mbps();
        if link <= 0.0 || link.is_infinite() {
            return 1;
        }
        ((self.per_server_bandwidth_mbps / link).floor() as usize).max(1)
    }
}

impl Default for MigrationCostModel {
    /// Defaults to the cost-free [`instant`](Self::instant) model so
    /// existing call sites keep their semantics unless they opt in.
    fn default() -> Self {
        MigrationCostModel::instant()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deflate_core::resources::ResourceVector;
    use deflate_core::vm::{VmClass, VmId, VmSpec};

    fn domain(memory_mb: f64) -> Domain {
        Domain::launch(VmSpec::deflatable(
            VmId(1),
            VmClass::Interactive,
            ResourceVector::cpu_mem(4000.0, memory_mb),
        ))
    }

    #[test]
    fn instant_model_is_free() {
        let m = MigrationCostModel::instant();
        assert!(m.is_instant());
        let d = domain(8192.0);
        assert_eq!(m.transfer_secs(&d), 0.0);
        assert_eq!(m.concurrent_slots(), usize::MAX);
    }

    #[test]
    fn transfer_time_scales_with_hot_footprint() {
        let m = MigrationCostModel::lan_default();
        let small = domain(2048.0);
        let large = domain(16_384.0);
        // A freshly booted guest keeps RSS + cache at half its memory.
        assert!((MigrationCostModel::hot_footprint_mb(&small) - 1024.0).abs() < 1e-9);
        assert!((MigrationCostModel::hot_footprint_mb(&large) - 8192.0).abs() < 1e-9);
        let t_small = m.transfer_secs(&small);
        let t_large = m.transfer_secs(&large);
        assert!(t_small > m.setup_floor_secs);
        assert!(t_large > t_small);
        // 8192 MiB × 1.3 / 1250 MiB/s + 0.5 s.
        assert!((t_large - (8192.0 * 1.3 / 1250.0 + 0.5)).abs() < 1e-9);
        assert!((m.transfer_volume_mb(&large) - 8192.0 * 1.3).abs() < 1e-9);
    }

    #[test]
    fn finite_budget_over_infinite_link_is_not_instant() {
        let m = MigrationCostModel {
            link_bandwidth_mbps: f64::INFINITY,
            per_server_bandwidth_mbps: 1250.0,
            ..MigrationCostModel::instant()
        };
        // The budget throttles the stream, so transfers take real time and
        // the model must not claim to be instantaneous.
        assert!(!m.is_instant());
        assert_eq!(m.effective_link_mbps(), 1250.0);
        assert!(m.transfer_secs(&domain(8192.0)) > 0.0);
    }

    #[test]
    fn zero_bandwidth_makes_migration_impossible() {
        let m = MigrationCostModel {
            link_bandwidth_mbps: 0.0,
            ..MigrationCostModel::lan_default()
        };
        assert!(m.transfer_secs(&domain(4096.0)).is_infinite());
        assert!(!m.is_instant());
        // Still reports a (serialised) slot rather than dividing by zero.
        assert_eq!(m.concurrent_slots(), 1);
    }

    #[test]
    fn budget_determines_concurrent_slots() {
        let m = MigrationCostModel::lan_default();
        assert_eq!(m.concurrent_slots(), 2);
        assert_eq!(m.with_budget_mbps(1250.0).concurrent_slots(), 1);
        assert_eq!(m.with_budget_mbps(5000.0).concurrent_slots(), 4);
        // A budget below one link serialises but does not forbid — and the
        // single stream is throttled to the budget itself.
        let throttled = m.with_budget_mbps(100.0);
        assert_eq!(throttled.concurrent_slots(), 1);
        assert_eq!(throttled.effective_link_mbps(), 100.0);
        assert!(
            throttled.transfer_secs(&domain(8192.0)) > m.transfer_secs(&domain(8192.0)),
            "a sub-link budget must slow the stream down"
        );
        assert_eq!(
            m.with_budget_mbps(f64::INFINITY).concurrent_slots(),
            usize::MAX
        );
    }

    #[test]
    fn deadline_builder() {
        let m = MigrationCostModel::lan_default().with_deadline_secs(30.0);
        assert_eq!(m.reclaim_deadline_secs, 30.0);
        assert!(MigrationCostModel::instant()
            .reclaim_deadline_secs
            .is_infinite());
    }

    #[test]
    fn dirty_rate_scales_overhead_with_utilization() {
        let m = MigrationCostModel::lan_default()
            .with_budget_mbps(1250.0)
            .with_dirty_rate(800.0, 2.0);
        let mut d = domain(8192.0);
        // Idle guest: one pre-copy round, factor 1.0 — cheaper than the
        // constant 1.3 overhead it replaces.
        let idle = m.transfer_estimate(&d, 0.0);
        assert!(idle.converges);
        assert!((idle.volume_mb - 4096.0).abs() < 1e-9);
        // Half-busy guest: r = 0.5 × 800 / 1250 = 0.32 → factor 1/(1−r).
        let busy = m.transfer_estimate(&d, 0.5);
        assert!(busy.converges);
        assert!((busy.volume_mb - 4096.0 / (1.0 - 0.32)).abs() < 1e-6);
        assert!(busy.secs > idle.secs);
        // The domain-level entry points read the recent history.
        for _ in 0..8 {
            d.observe_cpu_utilization(0.5);
        }
        assert!((m.transfer_secs(&d) - busy.secs).abs() < 1e-9);
        assert!((m.transfer_volume_mb(&d) - busy.volume_mb).abs() < 1e-9);
    }

    #[test]
    fn non_converging_precopy_charges_stop_and_copy() {
        // A 625 MiB/s budget throttles the link; a fully busy guest
        // dirtying 800 MiB/s overruns it (r = 1.28 > limit).
        let m = MigrationCostModel::lan_default()
            .with_budget_mbps(625.0)
            .with_dirty_rate(800.0, 2.0);
        let d = domain(8192.0);
        let est = m.transfer_estimate(&d, 1.0);
        assert!(!est.converges, "r beyond the limit must not converge");
        // The volume is pinned at the convergence-limit factor (5×) and
        // the stop-and-copy downtime is added on top.
        assert!((est.volume_mb - 4096.0 * 5.0).abs() < 1e-9);
        assert!((est.secs - (0.5 + 4096.0 * 5.0 / 625.0 + 2.0)).abs() < 1e-9);
        // Just inside the limit: convergent, no downtime charge.
        let edge = m.transfer_estimate(&d, 0.625);
        assert!(edge.converges);
        // The estimate is monotone in utilisation across the convergence
        // boundary: a busier guest is never cheaper.
        let mut prev = 0.0;
        for step in 0..=20 {
            let secs = m.transfer_estimate(&d, step as f64 / 20.0).secs;
            assert!(
                secs >= prev - 1e-9,
                "cost must not drop as utilisation rises (util {})",
                step as f64 / 20.0
            );
            prev = secs;
        }
    }

    #[test]
    fn zero_dirty_rate_is_bit_identical_to_constant_overhead() {
        let m = MigrationCostModel::lan_default();
        let d = domain(8192.0);
        let est = m.transfer_estimate(&d, 0.9);
        // Utilisation is ignored without a dirty-rate model.
        assert_eq!(est.volume_mb, m.transfer_volume_mb(&d));
        assert_eq!(est.secs, m.transfer_secs(&d));
        assert_eq!(est.volume_mb, 4096.0 * 1.3);
    }

    #[test]
    fn deflate_for_migration_shrinks_the_transfer() {
        let m = MigrationCostModel::lan_default();
        let mut d = domain(8192.0);
        let before = m.transfer_secs(&d);
        // The squeeze drops the page cache: only the RSS remains hot.
        d.deflate_for_migration();
        assert!((MigrationCostModel::hot_footprint_mb(&d) - 2048.0).abs() < 1e-9);
        assert!(m.transfer_secs(&d) < before);
    }

    #[test]
    fn hot_footprint_follows_guest_usage() {
        let m = MigrationCostModel::lan_default();
        let mut d = domain(8192.0);
        let before = m.transfer_secs(&d);
        // The workload grows: more RSS and cache to move.
        d.report_guest_usage(ResourceVector::cpu_mem(1000.0, 6000.0), 2000.0);
        assert!((MigrationCostModel::hot_footprint_mb(&d) - 8000.0).abs() < 1e-9);
        assert!(m.transfer_secs(&d) > before);
    }
}
