//! A simulated physical server hosting a set of [`Domain`]s.
//!
//! The server tracks hardware capacity, the domains resident on it, and the
//! accounting the cluster layer needs: committed vs effective allocations,
//! overcommitment factor, deflatable headroom, and the [`ServerView`] used by
//! placement (§5.2).

use crate::domain::{DeflationMechanism, Domain};
use deflate_core::error::{DeflateError, Result};
use deflate_core::placement::ServerView;
use deflate_core::resources::ResourceVector;
use deflate_core::vm::{ServerId, VmId, VmSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A simulated physical server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimServer {
    /// Server identity.
    pub id: ServerId,
    /// Hardware capacity.
    pub capacity: ResourceVector,
    /// Partition this server belongs to (placement pools, §5.2.1).
    pub partition: Option<u8>,
    domains: BTreeMap<VmId, Domain>,
}

impl SimServer {
    /// Create an empty server.
    pub fn new(id: ServerId, capacity: ResourceVector) -> Self {
        SimServer {
            id,
            capacity,
            partition: None,
            domains: BTreeMap::new(),
        }
    }

    /// Builder-style partition assignment.
    pub fn with_partition(mut self, partition: Option<u8>) -> Self {
        self.partition = partition;
        self
    }

    /// Change the server's hardware capacity (provider-side reclamation or
    /// restitution of transient capacity, §2/§7.4).
    ///
    /// Lowering the capacity below the current effective usage is legal
    /// *transiently*: the caller must immediately restore the capacity
    /// invariant by deflating, migrating or destroying resident domains
    /// (see `LocalController::deflate_into_capacity` and the cluster
    /// manager's reclamation handler).
    pub fn set_capacity(&mut self, capacity: ResourceVector) {
        self.capacity = capacity;
    }

    /// Number of resident domains.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Iterate over resident domains.
    pub fn domains(&self) -> impl Iterator<Item = &Domain> {
        self.domains.values()
    }

    /// Iterate mutably over resident domains.
    pub fn domains_mut(&mut self) -> impl Iterator<Item = &mut Domain> {
        self.domains.values_mut()
    }

    /// Look up a domain.
    pub fn domain(&self, id: VmId) -> Option<&Domain> {
        self.domains.get(&id)
    }

    /// Look up a domain mutably.
    pub fn domain_mut(&mut self, id: VmId) -> Option<&mut Domain> {
        self.domains.get_mut(&id)
    }

    /// Owned heap bytes behind this server: one map node per resident
    /// domain plus each domain's own heap (see `deflate_core::mem` for
    /// the convention). Feeds the engine's `mem.vm_records` gauge.
    pub fn accounted_bytes(&self) -> u64 {
        self.domains
            .iter()
            .map(|(id, d)| {
                deflate_core::mem::map_entry_bytes(
                    std::mem::size_of_val(id),
                    std::mem::size_of::<Domain>(),
                ) + d.accounted_bytes()
            })
            .sum()
    }

    /// Sum of the *effective* (currently granted) allocations of all
    /// resident domains. This is what physically occupies the server and can
    /// never exceed `capacity`.
    pub fn effective_used(&self) -> ResourceVector {
        self.domains
            .values()
            .map(|d| d.effective_allocation())
            .sum()
    }

    /// Sum of the *committed* (maximum, undeflated) allocations. Under
    /// overcommitment this exceeds the capacity.
    pub fn committed(&self) -> ResourceVector {
        self.domains.values().map(|d| d.spec.max_allocation).sum()
    }

    /// Free capacity (capacity minus effective usage).
    pub fn free(&self) -> ResourceVector {
        self.capacity.saturating_sub(&self.effective_used())
    }

    /// Resources still reclaimable from resident deflatable domains
    /// (effective allocation minus each domain's minimum).
    pub fn deflatable_headroom(&self) -> ResourceVector {
        self.domains
            .values()
            .filter(|d| d.spec.deflatable)
            .map(|d| {
                d.effective_allocation()
                    .saturating_sub(&d.spec.min_allocation)
            })
            .sum()
    }

    /// Overcommitment factor: the largest per-dimension ratio of committed
    /// allocation to capacity, floored at 1.0 (§5.2 `overcommitted_j`).
    pub fn overcommitment_factor(&self) -> f64 {
        let committed = self.committed();
        let mut worst: f64 = 1.0;
        for (kind, cap) in self.capacity.iter() {
            if cap > 0.0 {
                worst = worst.max(committed[kind] / cap);
            }
        }
        worst
    }

    /// Snapshot for the placement layer.
    pub fn view(&self) -> ServerView {
        ServerView {
            id: self.id,
            total: self.capacity,
            used: self.effective_used(),
            deflatable: self.deflatable_headroom(),
            overcommitment: self.overcommitment_factor(),
            partition: self.partition,
        }
    }

    /// Launch a new domain at its full allocation. Fails if the domain's
    /// full allocation does not fit in the currently free capacity — callers
    /// that want to admit under pressure must deflate residents first (or use
    /// [`create_domain_deflated`](Self::create_domain_deflated)).
    pub fn create_domain(
        &mut self,
        spec: VmSpec,
        mechanism: DeflationMechanism,
    ) -> Result<&Domain> {
        spec.validate()?;
        if self.domains.contains_key(&spec.id) {
            return Err(DeflateError::InvalidSpec {
                vm: spec.id,
                reason: "a domain with this id already exists on the server".into(),
            });
        }
        if !spec.max_allocation.fits_within(&self.free()) {
            return Err(DeflateError::PlacementFailed { vm: spec.id });
        }
        let id = spec.id;
        self.domains
            .insert(id, Domain::launch_with(spec, mechanism));
        Ok(&self.domains[&id])
    }

    /// Launch a new domain directly in a deflated state (§5.1.1 allows
    /// incoming VMs to "start execution in a deflated mode"). The initial
    /// target is clamped to the spec's bounds and must fit in free capacity.
    pub fn create_domain_deflated(
        &mut self,
        spec: VmSpec,
        mechanism: DeflationMechanism,
        initial_target: ResourceVector,
    ) -> Result<&Domain> {
        spec.validate()?;
        if self.domains.contains_key(&spec.id) {
            return Err(DeflateError::InvalidSpec {
                vm: spec.id,
                reason: "a domain with this id already exists on the server".into(),
            });
        }
        let free = self.free();
        let mut target = initial_target.clamp(&spec.min_allocation, &spec.max_allocation);
        if !target.fits_within(&free) {
            return Err(DeflateError::PlacementFailed { vm: spec.id });
        }
        let id = spec.id;
        let mut domain = Domain::launch_with(spec, mechanism);
        // Coarse-grained mechanisms (explicit hotplug) round targets *up* to
        // whole vCPUs / memory blocks and refuse to go below the guest's
        // safety threshold, so the effective allocation can overshoot the
        // requested target. Lower the target until the domain physically
        // fits in the free capacity, or give up if the mechanism cannot
        // shrink it far enough.
        let mut fits = false;
        for _ in 0..8 {
            domain.deflate_to(target);
            let effective = domain.effective_allocation();
            if effective.fits_within(&free) {
                fits = true;
                break;
            }
            let overshoot = effective.saturating_sub(&free);
            target = target.saturating_sub(&overshoot) - ResourceVector::splat(1.0);
            target = target.max(&ResourceVector::ZERO);
        }
        if !fits {
            return Err(DeflateError::PlacementFailed { vm: id });
        }
        self.domains.insert(id, domain);
        Ok(&self.domains[&id])
    }

    /// Insert a domain restored from an engine checkpoint, bypassing
    /// [`create_domain`](Self::create_domain)'s admission checks: a
    /// restored domain carries live guest state (it must not re-boot
    /// fresh), and a snapshotted server may legitimately sit below its
    /// base capacity mid-reclamation. Replaces any same-id resident.
    pub fn restore_domain(&mut self, domain: Domain) {
        self.domains.insert(domain.spec.id, domain);
    }

    /// Destroy a domain and return it (e.g. for migration accounting).
    pub fn destroy_domain(&mut self, id: VmId) -> Result<Domain> {
        self.domains.remove(&id).ok_or(DeflateError::UnknownVm(id))
    }

    /// Apply new allocation targets to a set of domains (typically a
    /// [`VectorPlan`](deflate_core::policy::VectorPlan) computed by a
    /// deflation policy). Unknown VM ids are reported as errors; known
    /// domains are updated through their configured mechanism.
    pub fn apply_targets(&mut self, targets: &BTreeMap<VmId, ResourceVector>) -> Result<()> {
        for (&id, &target) in targets {
            let domain = self
                .domains
                .get_mut(&id)
                .ok_or(DeflateError::UnknownVm(id))?;
            domain.deflate_to(target);
        }
        Ok(())
    }

    /// Check the physical invariant: effective allocations never exceed
    /// capacity. Returns the violating vector when broken (used by tests and
    /// debug assertions in the cluster simulator).
    pub fn check_capacity_invariant(&self) -> std::result::Result<(), ResourceVector> {
        let used = self.effective_used();
        if used.fits_within(&self.capacity) {
            Ok(())
        } else {
            Err(used)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deflate_core::vm::{Priority, VmClass};

    fn capacity() -> ResourceVector {
        ResourceVector::new(48_000.0, 131_072.0, 2_000.0, 10_000.0)
    }

    fn spec(id: u64, cores: f64, mem: f64) -> VmSpec {
        VmSpec::deflatable(
            VmId(id),
            VmClass::Interactive,
            ResourceVector::new(cores * 1000.0, mem, 100.0, 500.0),
        )
        .with_priority(Priority::new(0.5))
    }

    #[test]
    fn create_and_destroy() {
        let mut s = SimServer::new(ServerId(1), capacity());
        s.create_domain(spec(1, 4.0, 8192.0), DeflationMechanism::Hybrid)
            .unwrap();
        assert_eq!(s.domain_count(), 1);
        assert!(s.domain(VmId(1)).is_some());
        // Duplicate id rejected.
        assert!(s
            .create_domain(spec(1, 1.0, 1024.0), DeflationMechanism::Hybrid)
            .is_err());
        let d = s.destroy_domain(VmId(1)).unwrap();
        assert_eq!(d.spec.id, VmId(1));
        assert!(s.destroy_domain(VmId(1)).is_err());
    }

    #[test]
    fn create_fails_when_capacity_exhausted() {
        let mut s = SimServer::new(ServerId(1), ResourceVector::cpu_mem(8000.0, 16_384.0));
        s.create_domain(
            VmSpec::deflatable(
                VmId(1),
                VmClass::Interactive,
                ResourceVector::cpu_mem(6000.0, 8192.0),
            ),
            DeflationMechanism::Transparent,
        )
        .unwrap();
        let err = s
            .create_domain(
                VmSpec::deflatable(
                    VmId(2),
                    VmClass::Interactive,
                    ResourceVector::cpu_mem(4000.0, 8192.0),
                ),
                DeflationMechanism::Transparent,
            )
            .unwrap_err();
        assert!(matches!(err, DeflateError::PlacementFailed { .. }));
    }

    #[test]
    fn deflated_creation_fits_where_full_does_not() {
        let mut s = SimServer::new(ServerId(1), ResourceVector::cpu_mem(8000.0, 16_384.0));
        s.create_domain(
            VmSpec::deflatable(
                VmId(1),
                VmClass::Interactive,
                ResourceVector::cpu_mem(6000.0, 8192.0),
            ),
            DeflationMechanism::Transparent,
        )
        .unwrap();
        let new_spec = VmSpec::deflatable(
            VmId(2),
            VmClass::Interactive,
            ResourceVector::cpu_mem(4000.0, 8192.0),
        );
        let d = s
            .create_domain_deflated(
                new_spec,
                DeflationMechanism::Transparent,
                ResourceVector::cpu_mem(2000.0, 4096.0),
            )
            .unwrap();
        assert_eq!(d.effective_allocation().cpu(), 2000.0);
        assert!(s.check_capacity_invariant().is_ok());
    }

    #[test]
    fn accounting_vectors() {
        let mut s = SimServer::new(ServerId(1), capacity());
        s.create_domain(spec(1, 8.0, 16_384.0), DeflationMechanism::Hybrid)
            .unwrap();
        s.create_domain(spec(2, 16.0, 32_768.0), DeflationMechanism::Hybrid)
            .unwrap();
        assert_eq!(s.committed().cpu(), 24_000.0);
        assert_eq!(s.effective_used().cpu(), 24_000.0);
        assert_eq!(s.free().cpu(), 24_000.0);
        assert_eq!(s.deflatable_headroom().cpu(), 24_000.0);
        assert_eq!(s.overcommitment_factor(), 1.0);
        let view = s.view();
        assert_eq!(view.id, ServerId(1));
        assert_eq!(view.used.cpu(), 24_000.0);
    }

    #[test]
    fn overcommitment_counts_committed_not_effective() {
        let mut s = SimServer::new(ServerId(1), ResourceVector::cpu_mem(8000.0, 16_384.0));
        s.create_domain(
            VmSpec::deflatable(
                VmId(1),
                VmClass::Interactive,
                ResourceVector::cpu_mem(8000.0, 8192.0),
            ),
            DeflationMechanism::Transparent,
        )
        .unwrap();
        // Deflate the resident VM, then admit another one deflated.
        let mut targets = BTreeMap::new();
        targets.insert(VmId(1), ResourceVector::cpu_mem(4000.0, 8192.0));
        s.apply_targets(&targets).unwrap();
        s.create_domain_deflated(
            VmSpec::deflatable(
                VmId(2),
                VmClass::Interactive,
                ResourceVector::cpu_mem(8000.0, 8192.0),
            ),
            DeflationMechanism::Transparent,
            ResourceVector::cpu_mem(4000.0, 8192.0),
        )
        .unwrap();
        assert!(s.overcommitment_factor() > 1.9);
        assert!(s.check_capacity_invariant().is_ok());
        assert_eq!(s.effective_used().cpu(), 8000.0);
    }

    #[test]
    fn apply_targets_unknown_vm_errors() {
        let mut s = SimServer::new(ServerId(1), capacity());
        let mut targets = BTreeMap::new();
        targets.insert(VmId(99), ResourceVector::ZERO);
        assert!(matches!(
            s.apply_targets(&targets),
            Err(DeflateError::UnknownVm(VmId(99)))
        ));
    }

    #[test]
    fn non_deflatable_domains_add_no_headroom() {
        let mut s = SimServer::new(ServerId(1), capacity());
        s.create_domain(
            VmSpec::on_demand(
                VmId(1),
                VmClass::Unknown,
                ResourceVector::cpu_mem(8000.0, 8192.0),
            ),
            DeflationMechanism::Transparent,
        )
        .unwrap();
        assert!(s.deflatable_headroom().is_zero());
    }
}
