//! The per-server local deflation controller (§6).
//!
//! "We run local deflation controllers that run on each server. These local
//! controllers control the deflation of VMs by responding to resource
//! pressure, by implementing the proportional deflation policies described in
//! section 5." The controller owns a [`SimServer`], applies a server-level
//! [`DeflationPolicy`] when a new VM needs room, reinflates residents when
//! capacity frees up, and emits [`DeflationNotification`]s that an
//! application manager (e.g. the deflation-aware load balancer of §7.3) can
//! subscribe to.

use crate::domain::DeflationMechanism;
use crate::server::SimServer;
use deflate_core::error::{DeflateError, Result};
use deflate_core::policy::{DeflationPolicy, VectorPlanner};
use deflate_core::resources::ResourceVector;
use deflate_core::vm::{ServerId, VmId, VmSpec};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Notification sent to the application manager / load balancer whenever a
/// VM's allocation changes (Figure 1, "Deflate VM Notification").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeflationNotification {
    /// Server where the change happened.
    pub server: ServerId,
    /// Affected VM.
    pub vm: VmId,
    /// Allocation before the change.
    pub old_allocation: ResourceVector,
    /// Allocation after the change.
    pub new_allocation: ResourceVector,
}

impl DeflationNotification {
    /// True when the VM lost resources (deflation), false when it gained
    /// them (reinflation).
    pub fn is_deflation(&self) -> bool {
        self.new_allocation.total() < self.old_allocation.total()
    }
}

/// Outcome of an admission attempt on one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdmissionOutcome {
    /// The VM was admitted without deflating anyone.
    AdmittedWithoutDeflation,
    /// The VM was admitted after deflating resident VMs; the amount reclaimed
    /// per resource is reported.
    AdmittedWithDeflation {
        /// Total resources reclaimed from residents to make room.
        reclaimed: ResourceVector,
    },
    /// The server could not free enough resources; the VM was rejected
    /// (this is the "failure to reclaim sufficient resources" event counted
    /// by Figure 20).
    Rejected {
        /// Unmet demand per resource.
        shortfall: ResourceVector,
    },
}

/// Per-server deflation controller.
pub struct LocalController {
    server: SimServer,
    policy: Arc<dyn DeflationPolicy>,
    mechanism: DeflationMechanism,
    notifications: Vec<DeflationNotification>,
}

impl LocalController {
    /// Create a controller around a server with the given policy and
    /// mechanism for all future deflation operations.
    pub fn new(
        server: SimServer,
        policy: Arc<dyn DeflationPolicy>,
        mechanism: DeflationMechanism,
    ) -> Self {
        LocalController {
            server,
            policy,
            mechanism,
            notifications: Vec::new(),
        }
    }

    /// Read access to the underlying server.
    pub fn server(&self) -> &SimServer {
        &self.server
    }

    /// Mutable access to the underlying server (used by the trace driver to
    /// feed per-VM utilisation into the guests).
    pub fn server_mut(&mut self) -> &mut SimServer {
        &mut self.server
    }

    /// The policy driving this controller.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Drain the accumulated notifications (oldest first).
    pub fn take_notifications(&mut self) -> Vec<DeflationNotification> {
        std::mem::take(&mut self.notifications)
    }

    /// Owned heap bytes behind this controller: the server's domain map
    /// plus the pending-notification buffer (the policy handle is shared
    /// and accounted nowhere — an `Arc` to a stateless strategy).
    pub fn accounted_bytes(&self) -> u64 {
        self.server.accounted_bytes() + deflate_core::mem::vec_capacity_bytes(&self.notifications)
    }

    /// Attempt to admit a new VM, deflating residents if needed (the
    /// three-step placement of §6: the cluster manager already chose this
    /// server; this method performs steps two and three).
    pub fn try_admit(&mut self, spec: VmSpec) -> Result<AdmissionOutcome> {
        spec.validate()?;
        let demand = spec.max_allocation;
        let free = self.server.free();
        if demand.fits_within(&free) {
            self.server.create_domain(spec, self.mechanism)?;
            return Ok(AdmissionOutcome::AdmittedWithoutDeflation);
        }

        // Step 2: compute the deflation required to accommodate the new VM.
        let needed = demand.saturating_sub(&free);
        let snapshot_before: Vec<(VmId, ResourceVector)> = self
            .server
            .domains()
            .map(|d| (d.spec.id, d.effective_allocation()))
            .collect();
        let domains: Vec<_> = self.server.domains().collect();
        let plan = VectorPlanner::plan(self.policy.as_ref(), &domains, needed);
        if !plan.satisfied() {
            // "If this violates any resource constraint, then the server
            // rejects the VM."
            return Ok(AdmissionOutcome::Rejected {
                shortfall: plan.shortfall,
            });
        }
        let targets = plan.targets.clone();
        drop(domains);

        // Step 3: perform the actual deflation and launch the VM.
        self.server.apply_targets(&targets)?;
        self.record_changes(&snapshot_before);
        let reclaimed = plan.reclaimed;
        match self.server.create_domain(spec.clone(), self.mechanism) {
            Ok(_) => Ok(AdmissionOutcome::AdmittedWithDeflation { reclaimed }),
            Err(DeflateError::PlacementFailed { .. }) => {
                // Deflation mechanisms are granular (hotplug rounds up), so
                // the freed amount can fall marginally short of the plan.
                // Admit the VM slightly deflated to fit the space actually
                // available rather than rejecting it.
                let free = self.server.free();
                let initial = demand.min(&free);
                self.server
                    .create_domain_deflated(spec, self.mechanism, initial)?;
                Ok(AdmissionOutcome::AdmittedWithDeflation { reclaimed })
            }
            Err(e) => Err(e),
        }
    }

    /// Handle a VM departure: destroy the domain and redistribute the freed
    /// resources to deflated residents (reinflation, §5.1.3).
    pub fn on_departure(&mut self, vm: VmId) -> Result<()> {
        self.server.destroy_domain(vm)?;
        self.reinflate();
        Ok(())
    }

    /// Handle a provider-side **capacity restitution**: grow the server to
    /// `new_capacity` and reinflate residents into the returned room.
    pub fn restore_capacity(&mut self, new_capacity: ResourceVector) {
        self.server.set_capacity(new_capacity);
        self.reinflate();
    }

    /// Deflate residents until their effective allocations fit the server's
    /// current capacity (or the policy's headroom is exhausted) — the
    /// server-local half of a provider-side **capacity reclamation**, run
    /// after the caller shrinks the server with
    /// [`SimServer::set_capacity`]. Returns the remaining per-resource
    /// overage: zero when deflation alone absorbed the reclamation,
    /// positive when the caller must fall back to migrating or destroying
    /// residents.
    pub fn deflate_into_capacity(&mut self) -> ResourceVector {
        let over = self
            .server
            .effective_used()
            .saturating_sub(&self.server.capacity);
        if over.is_zero() {
            return ResourceVector::ZERO;
        }
        let snapshot_before: Vec<(VmId, ResourceVector)> = self
            .server
            .domains()
            .map(|d| (d.spec.id, d.effective_allocation()))
            .collect();
        let domains: Vec<_> = self.server.domains().collect();
        let plan = VectorPlanner::plan(self.policy.as_ref(), &domains, over);
        let targets = plan.targets.clone();
        drop(domains);
        let _ = self.server.apply_targets(&targets);
        self.record_changes(&snapshot_before);
        self.server
            .effective_used()
            .saturating_sub(&self.server.capacity)
    }

    /// Reinflate resident VMs using whatever capacity is currently free.
    /// Domains *parked* by the autoscaler (deflated instead of terminated)
    /// are skipped — their deflation is deliberate and must stick until
    /// the autoscaler unparks them.
    pub fn reinflate(&mut self) {
        self.reinflate_fraction(1.0);
    }

    /// Reinflate residents into only `fraction` of the currently free
    /// capacity — the spread-out half of the restore-hysteresis policy.
    /// `1.0` is the full greedy hand-back of [`reinflate`](Self::reinflate).
    pub fn reinflate_partial(&mut self, fraction: f64) {
        self.reinflate_fraction(fraction.clamp(0.0, 1.0));
    }

    fn reinflate_fraction(&mut self, fraction: f64) {
        let free = self.server.free() * fraction;
        if free.is_zero() {
            return;
        }
        let snapshot_before: Vec<(VmId, ResourceVector)> = self
            .server
            .domains()
            .map(|d| (d.spec.id, d.effective_allocation()))
            .collect();
        let domains: Vec<_> = self.server.domains().filter(|d| !d.is_parked()).collect();
        let plan = VectorPlanner::plan(self.policy.as_ref(), &domains, -free);
        let targets = plan.targets.clone();
        drop(domains);
        // Ignore the (negative) shortfall: not being able to place all freed
        // resources simply means residents are already fully inflated.
        let _ = self.server.apply_targets(&targets);
        debug_assert!(self.server.check_capacity_invariant().is_ok());
        self.record_changes(&snapshot_before);
    }

    fn record_changes(&mut self, before: &[(VmId, ResourceVector)]) {
        for &(id, old) in before {
            if let Some(domain) = self.server.domain(id) {
                let new = domain.effective_allocation();
                if (new - old).max_component().abs() > 1e-6
                    || (old - new).max_component().abs() > 1e-6
                {
                    self.notifications.push(DeflationNotification {
                        server: self.server.id,
                        vm: id,
                        old_allocation: old,
                        new_allocation: new,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deflate_core::policy::ProportionalDeflation;
    use deflate_core::vm::{Priority, VmClass};

    fn controller() -> LocalController {
        let server = SimServer::new(
            ServerId(1),
            ResourceVector::new(16_000.0, 32_768.0, 1_000.0, 10_000.0),
        );
        LocalController::new(
            server,
            Arc::new(ProportionalDeflation::default()),
            DeflationMechanism::Transparent,
        )
    }

    fn vm(id: u64, cores: f64, mem: f64) -> VmSpec {
        VmSpec::deflatable(
            VmId(id),
            VmClass::Interactive,
            ResourceVector::new(cores * 1000.0, mem, 100.0, 500.0),
        )
        .with_priority(Priority::new(0.5))
    }

    #[test]
    fn admission_without_pressure() {
        let mut c = controller();
        let out = c.try_admit(vm(1, 4.0, 8192.0)).unwrap();
        assert_eq!(out, AdmissionOutcome::AdmittedWithoutDeflation);
        assert_eq!(c.server().domain_count(), 1);
        assert!(c.take_notifications().is_empty());
    }

    #[test]
    fn admission_with_deflation_notifies_residents() {
        let mut c = controller();
        c.try_admit(vm(1, 10.0, 16_384.0)).unwrap();
        c.try_admit(vm(2, 6.0, 8192.0)).unwrap();
        // Server is now full (16 cores committed); a third VM forces
        // deflation of residents.
        let out = c.try_admit(vm(3, 8.0, 8192.0)).unwrap();
        match out {
            AdmissionOutcome::AdmittedWithDeflation { reclaimed } => {
                assert!(reclaimed.cpu() >= 8000.0 - 1e-6);
            }
            other => panic!("expected deflation admission, got {other:?}"),
        }
        assert_eq!(c.server().domain_count(), 3);
        assert!(c.server().check_capacity_invariant().is_ok());
        let notes = c.take_notifications();
        assert!(!notes.is_empty());
        assert!(notes.iter().all(|n| n.is_deflation()));
    }

    #[test]
    fn admission_rejected_when_headroom_insufficient() {
        let mut c = controller();
        // Fill the server with a non-deflatable VM: nothing can be reclaimed.
        let od = VmSpec::on_demand(
            VmId(1),
            VmClass::Unknown,
            ResourceVector::new(16_000.0, 32_768.0, 1_000.0, 10_000.0),
        );
        c.try_admit(od).unwrap();
        let out = c.try_admit(vm(2, 2.0, 2048.0)).unwrap();
        match out {
            AdmissionOutcome::Rejected { shortfall } => {
                assert!(shortfall.cpu() > 0.0);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(c.server().domain_count(), 1);
    }

    #[test]
    fn departure_triggers_reinflation() {
        let mut c = controller();
        c.try_admit(vm(1, 10.0, 16_384.0)).unwrap();
        c.try_admit(vm(2, 6.0, 8192.0)).unwrap();
        c.try_admit(vm(3, 8.0, 8192.0)).unwrap();
        c.take_notifications();
        // VM 3 leaves; the survivors should be reinflated back towards full.
        c.on_departure(VmId(3)).unwrap();
        let d1 = c.server().domain(VmId(1)).unwrap();
        let d2 = c.server().domain(VmId(2)).unwrap();
        assert_eq!(d1.effective_allocation(), d1.spec.max_allocation);
        assert_eq!(d2.effective_allocation(), d2.spec.max_allocation);
        let notes = c.take_notifications();
        assert!(notes.iter().all(|n| !n.is_deflation()));
        assert!(!notes.is_empty());
    }

    #[test]
    fn capacity_reclaim_deflates_and_restore_reinflates() {
        let mut c = controller();
        c.try_admit(vm(1, 10.0, 16_384.0)).unwrap();
        c.try_admit(vm(2, 6.0, 8_192.0)).unwrap();
        let full = ResourceVector::new(16_000.0, 32_768.0, 1_000.0, 10_000.0);
        // Reclaim half the server: residents must be deflated to fit.
        c.server_mut().set_capacity(full * 0.5);
        let remaining = c.deflate_into_capacity();
        assert!(remaining.is_zero(), "unabsorbed overage {remaining}");
        assert!(c.server().check_capacity_invariant().is_ok());
        assert!(c
            .server()
            .domains()
            .any(|d| d.effective_allocation().cpu() < d.spec.max_allocation.cpu()));
        // Restore it: everyone reinflates back to their spec.
        c.restore_capacity(full);
        assert!(c.server().check_capacity_invariant().is_ok());
        for d in c.server().domains() {
            assert_eq!(d.effective_allocation(), d.spec.max_allocation);
        }
        // A reclaim the free space already covers deflates nobody.
        c.server_mut().set_capacity(full);
        assert!(c.deflate_into_capacity().is_zero());
    }

    #[test]
    fn parked_domains_are_skipped_by_reinflation() {
        let mut c = controller();
        c.try_admit(vm(1, 8.0, 8192.0)).unwrap();
        c.try_admit(vm(2, 8.0, 8192.0)).unwrap();
        // Park VM 1 at 10 % of its allocation.
        let d1 = c.server_mut().domain_mut(VmId(1)).unwrap();
        let target = d1.spec.max_allocation * 0.1;
        d1.deflate_to(target);
        d1.set_parked(true);
        // A full reinflation pass must not grow the parked domain.
        c.reinflate();
        let d1 = c.server().domain(VmId(1)).unwrap();
        assert!(d1.effective_allocation().cpu() <= 0.1 * d1.spec.max_allocation.cpu() + 1e-6);
        // Unparking makes the next pass restore it.
        c.server_mut()
            .domain_mut(VmId(1))
            .unwrap()
            .set_parked(false);
        c.reinflate();
        let d1 = c.server().domain(VmId(1)).unwrap();
        assert_eq!(d1.effective_allocation(), d1.spec.max_allocation);
    }

    #[test]
    fn partial_reinflation_returns_only_a_fraction_of_the_room() {
        let mut c = controller();
        c.try_admit(vm(1, 16.0, 16_384.0)).unwrap();
        // Deflate to half, then hand back only a quarter of the free room.
        let d1 = c.server_mut().domain_mut(VmId(1)).unwrap();
        let half = d1.spec.max_allocation * 0.5;
        d1.deflate_to(half);
        c.reinflate_partial(0.25);
        let cpu = c
            .server()
            .domain(VmId(1))
            .unwrap()
            .effective_allocation()
            .cpu();
        // Free room was 8000 millicores; a quarter of it is 2000.
        assert!((cpu - 10_000.0).abs() < 1e-6, "cpu after partial: {cpu}");
        // A full pass finishes the job.
        c.reinflate();
        assert_eq!(
            c.server().domain(VmId(1)).unwrap().effective_allocation(),
            c.server().domain(VmId(1)).unwrap().spec.max_allocation
        );
    }

    #[test]
    fn departure_of_unknown_vm_errors() {
        let mut c = controller();
        assert!(c.on_departure(VmId(42)).is_err());
    }

    #[test]
    fn policy_name_is_exposed() {
        let c = controller();
        assert_eq!(c.policy_name(), "proportional-min-aware");
    }
}
