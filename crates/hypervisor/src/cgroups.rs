//! Simulated Linux cgroup controllers.
//!
//! The paper's prototype runs each KVM VM inside a cgroup and implements
//! *transparent* deflation by adjusting the cgroup knobs through libvirt
//! (§4.2, §6): `cpu.shares` / CPU bandwidth control for CPU, `memory.
//! limit_in_bytes` for memory, and the blkio / net_cls controllers for disk
//! and network bandwidth. This module models exactly those knobs: a
//! [`CgroupSet`] holds one controller per resource kind, each with a limit
//! that can be raised or lowered at runtime and a usage figure that the
//! simulated guest reports.
//!
//! Nothing here talks to a real kernel — the controllers are bookkeeping
//! objects with the same semantics (limits are clamped to the host capacity,
//! lowering a limit below current usage is allowed and simply produces
//! throttling/pressure, captured by [`CgroupController::pressure`]).

use deflate_core::resources::{ResourceKind, ResourceVector};
use serde::{Deserialize, Serialize};

/// One simulated cgroup controller (e.g. the memory controller of one VM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CgroupController {
    /// Which resource this controller limits.
    pub kind: ResourceKind,
    /// Current limit (`cpu.cfs_quota`-equivalent, `memory.limit_in_bytes`,
    /// blkio throttle, …) in the canonical unit of `kind`.
    limit: f64,
    /// Hard ceiling: the limit can never exceed this (host capacity or the
    /// VM's configured maximum).
    ceiling: f64,
    /// Current usage reported by the guest / accounting.
    usage: f64,
}

impl CgroupController {
    /// Create a controller with `limit == ceiling` and zero usage.
    pub fn new(kind: ResourceKind, ceiling: f64) -> Self {
        CgroupController {
            kind,
            limit: ceiling,
            ceiling,
            usage: 0.0,
        }
    }

    /// Current limit.
    #[inline]
    pub fn limit(&self) -> f64 {
        self.limit
    }

    /// Hard ceiling.
    #[inline]
    pub fn ceiling(&self) -> f64 {
        self.ceiling
    }

    /// Current usage.
    #[inline]
    pub fn usage(&self) -> f64 {
        self.usage
    }

    /// Set the limit, clamped into `[0, ceiling]`. Returns the limit that was
    /// actually applied. Lowering the limit below the current usage is legal
    /// — the workload is throttled (CPU/IO) or forced to page (memory), which
    /// shows up as [`pressure`](Self::pressure).
    pub fn set_limit(&mut self, limit: f64) -> f64 {
        self.limit = limit.clamp(0.0, self.ceiling);
        self.limit
    }

    /// Record the usage reported by the guest. Usage is clamped to the
    /// current limit: a cgroup cannot observe more usage than it allows.
    pub fn set_usage(&mut self, usage: f64) {
        self.usage = usage.clamp(0.0, self.limit);
    }

    /// Demand that exceeded the limit the last time usage was reported,
    /// normalised to the limit: `max(0, wanted − limit) / limit`. The caller
    /// passes the *wanted* (unthrottled) usage.
    pub fn pressure(&self, wanted: f64) -> f64 {
        if self.limit <= 0.0 {
            if wanted > 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            ((wanted - self.limit) / self.limit).max(0.0)
        }
    }

    /// Fraction of the ceiling currently granted (1.0 = undeflated).
    pub fn grant_fraction(&self) -> f64 {
        if self.ceiling <= 0.0 {
            1.0
        } else {
            (self.limit / self.ceiling).clamp(0.0, 1.0)
        }
    }
}

/// The full set of per-VM cgroup controllers (cpu, memory, blkio, net).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CgroupSet {
    cpu: CgroupController,
    memory: CgroupController,
    blkio: CgroupController,
    net: CgroupController,
}

impl CgroupSet {
    /// Create a cgroup set whose ceilings are the VM's maximum allocation.
    pub fn new(max_allocation: ResourceVector) -> Self {
        CgroupSet {
            cpu: CgroupController::new(ResourceKind::Cpu, max_allocation.cpu()),
            memory: CgroupController::new(ResourceKind::Memory, max_allocation.memory()),
            blkio: CgroupController::new(ResourceKind::DiskBw, max_allocation.disk_bw()),
            net: CgroupController::new(ResourceKind::NetBw, max_allocation.net_bw()),
        }
    }

    /// Access the controller for a resource kind.
    pub fn controller(&self, kind: ResourceKind) -> &CgroupController {
        match kind {
            ResourceKind::Cpu => &self.cpu,
            ResourceKind::Memory => &self.memory,
            ResourceKind::DiskBw => &self.blkio,
            ResourceKind::NetBw => &self.net,
        }
    }

    /// Mutable access to the controller for a resource kind.
    pub fn controller_mut(&mut self, kind: ResourceKind) -> &mut CgroupController {
        match kind {
            ResourceKind::Cpu => &mut self.cpu,
            ResourceKind::Memory => &mut self.memory,
            ResourceKind::DiskBw => &mut self.blkio,
            ResourceKind::NetBw => &mut self.net,
        }
    }

    /// Current limits as a resource vector.
    pub fn limits(&self) -> ResourceVector {
        ResourceVector::new(
            self.cpu.limit(),
            self.memory.limit(),
            self.blkio.limit(),
            self.net.limit(),
        )
    }

    /// Current usages as a resource vector.
    pub fn usages(&self) -> ResourceVector {
        ResourceVector::new(
            self.cpu.usage(),
            self.memory.usage(),
            self.blkio.usage(),
            self.net.usage(),
        )
    }

    /// Apply a full limit vector at once (each component clamped to its
    /// ceiling). Returns the vector of limits actually applied.
    pub fn set_limits(&mut self, limits: ResourceVector) -> ResourceVector {
        let mut applied = ResourceVector::ZERO;
        for kind in ResourceKind::ALL {
            applied[kind] = self.controller_mut(kind).set_limit(limits[kind]);
        }
        applied
    }

    /// Record a usage vector (each component clamped to its limit).
    pub fn set_usages(&mut self, usage: ResourceVector) {
        for kind in ResourceKind::ALL {
            self.controller_mut(kind).set_usage(usage[kind]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_clamp_to_ceiling_and_zero() {
        let mut c = CgroupController::new(ResourceKind::Cpu, 4000.0);
        assert_eq!(c.set_limit(10_000.0), 4000.0);
        assert_eq!(c.set_limit(-5.0), 0.0);
        assert_eq!(c.set_limit(2500.0), 2500.0);
        assert_eq!(c.limit(), 2500.0);
        assert_eq!(c.ceiling(), 4000.0);
    }

    #[test]
    fn usage_clamped_to_limit() {
        let mut c = CgroupController::new(ResourceKind::Memory, 8192.0);
        c.set_limit(4096.0);
        c.set_usage(6000.0);
        assert_eq!(c.usage(), 4096.0);
        c.set_usage(1000.0);
        assert_eq!(c.usage(), 1000.0);
    }

    #[test]
    fn pressure_measures_unmet_demand() {
        let mut c = CgroupController::new(ResourceKind::Cpu, 4000.0);
        c.set_limit(2000.0);
        assert_eq!(c.pressure(1000.0), 0.0);
        assert!((c.pressure(3000.0) - 0.5).abs() < 1e-12);
        c.set_limit(0.0);
        assert_eq!(c.pressure(10.0), 1.0);
        assert_eq!(c.pressure(0.0), 0.0);
    }

    #[test]
    fn grant_fraction_tracks_deflation() {
        let mut c = CgroupController::new(ResourceKind::DiskBw, 200.0);
        assert_eq!(c.grant_fraction(), 1.0);
        c.set_limit(50.0);
        assert!((c.grant_fraction() - 0.25).abs() < 1e-12);
        let zero = CgroupController::new(ResourceKind::NetBw, 0.0);
        assert_eq!(zero.grant_fraction(), 1.0);
    }

    #[test]
    fn cgroup_set_roundtrip() {
        let max = ResourceVector::new(8000.0, 16_384.0, 200.0, 1000.0);
        let mut set = CgroupSet::new(max);
        assert_eq!(set.limits(), max);
        let applied = set.set_limits(ResourceVector::new(4000.0, 8192.0, 400.0, 500.0));
        assert_eq!(applied, ResourceVector::new(4000.0, 8192.0, 200.0, 500.0));
        set.set_usages(ResourceVector::new(9999.0, 1024.0, 50.0, 100.0));
        assert_eq!(set.usages().cpu(), 4000.0);
        assert_eq!(set.usages().memory(), 1024.0);
        assert_eq!(set.controller(ResourceKind::NetBw).usage(), 100.0);
    }
}
