//! Simulated guest operating system.
//!
//! Explicit deflation (§4.3) is visible to the guest: vCPUs and memory are
//! hot-unplugged through the QEMU guest agent, and the guest OS decides how
//! much of the request it can safely honour. The paper's safety rules are:
//!
//! * CPU hotplug operates on whole vCPUs and "may not always succeed in
//!   removing all the CPUs requested — the guest OS unplugs the CPU only if
//!   it is safe to do so"; at least one vCPU must always remain online.
//! * Memory can be unplugged only down to the guest's resident set size
//!   (RSS): "we presume that it is safe to unplug as long as the VM has more
//!   memory than the current RSS value", and unplugging happens in
//!   coarse-grained blocks (DIMM-sized sections).
//! * NICs and disks cannot be safely unplugged at all; those resources are
//!   only deflated transparently.
//!
//! [`GuestOs`] models exactly this behaviour plus a small amount of memory
//! accounting (RSS vs page cache) so the hybrid mechanism can exploit the
//! fact that the guest drops caches gracefully when it *knows* about the
//! deflation (Figure 14).

use deflate_core::checkpoint::{ByteReader, ByteWriter, CheckpointResult};
use deflate_core::resources::ResourceKind;
use serde::{Deserialize, Serialize};

/// Memory hotplug granularity in MiB (a simulated DIMM section).
pub const MEMORY_BLOCK_MB: f64 = 128.0;

/// Result of a hot-unplug (or hot-plug) request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotplugOutcome {
    /// Amount requested to remove (positive) or add (negative), in the
    /// resource's canonical unit.
    pub requested: f64,
    /// Amount actually removed/added after the guest applied its safety
    /// rules. May be smaller in magnitude than `requested`; the operation is
    /// then reported as partially completed, never as an error (§6: "the hot
    /// unplug operation is allowed to return unfinished").
    pub applied: f64,
}

impl HotplugOutcome {
    /// True when the full request was honoured.
    pub fn complete(&self) -> bool {
        (self.requested - self.applied).abs() < 1e-9
    }
}

/// Simulated guest-OS state for one VM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuestOs {
    /// Number of vCPUs configured at boot (the maximum).
    boot_vcpus: u32,
    /// Number of vCPUs currently online.
    online_vcpus: u32,
    /// Memory configured at boot, MiB (the maximum).
    boot_memory_mb: f64,
    /// Memory currently plugged, MiB.
    plugged_memory_mb: f64,
    /// Resident set size of the workload, MiB — the hotplug safety threshold.
    rss_mb: f64,
    /// Page-cache / buffer memory, MiB. The guest willingly surrenders this
    /// when asked explicitly, which is what gives hybrid deflation its edge.
    page_cache_mb: f64,
    /// The page-cache size the workload *wants*, MiB — the level the cache
    /// regrows towards after being dropped (deflate-then-migrate squeeze,
    /// autoscale parking). Updated by every usage report.
    page_cache_target_mb: f64,
    /// Fraction of busy threads; used to decide whether a vCPU can be safely
    /// unplugged (a fully busy guest refuses to drop below the number of
    /// runnable threads' worth of CPUs).
    cpu_busy_fraction: f64,
}

impl GuestOs {
    /// Boot a guest with the given vCPU count and memory size.
    pub fn boot(vcpus: u32, memory_mb: f64) -> Self {
        let vcpus = vcpus.max(1);
        let memory_mb = memory_mb.max(MEMORY_BLOCK_MB);
        GuestOs {
            boot_vcpus: vcpus,
            online_vcpus: vcpus,
            boot_memory_mb: memory_mb,
            plugged_memory_mb: memory_mb,
            rss_mb: 0.25 * memory_mb,
            page_cache_mb: 0.25 * memory_mb,
            page_cache_target_mb: 0.25 * memory_mb,
            // A freshly booted guest is essentially idle; the busy fraction
            // (and with it the vCPU-unplug floor) rises once the workload
            // reports usage.
            cpu_busy_fraction: 0.0,
        }
    }

    /// Number of vCPUs currently online.
    pub fn online_vcpus(&self) -> u32 {
        self.online_vcpus
    }

    /// vCPUs configured at boot.
    pub fn boot_vcpus(&self) -> u32 {
        self.boot_vcpus
    }

    /// Memory currently plugged, MiB.
    pub fn plugged_memory_mb(&self) -> f64 {
        self.plugged_memory_mb
    }

    /// Memory configured at boot, MiB.
    pub fn boot_memory_mb(&self) -> f64 {
        self.boot_memory_mb
    }

    /// Current resident set size, MiB.
    pub fn rss_mb(&self) -> f64 {
        self.rss_mb
    }

    /// Current page-cache size, MiB.
    pub fn page_cache_mb(&self) -> f64 {
        self.page_cache_mb
    }

    /// Report workload state: the application's RSS, page-cache footprint and
    /// CPU busy fraction. RSS and cache are clamped to plugged memory. The
    /// reported cache also becomes the regrowth target (see
    /// [`regrow_page_cache`](Self::regrow_page_cache)).
    pub fn report_usage(&mut self, rss_mb: f64, page_cache_mb: f64, cpu_busy_fraction: f64) {
        self.rss_mb = rss_mb.clamp(0.0, self.plugged_memory_mb);
        self.page_cache_mb = page_cache_mb
            .max(0.0)
            .min(self.plugged_memory_mb - self.rss_mb);
        self.page_cache_target_mb = self.page_cache_mb;
        self.cpu_busy_fraction = cpu_busy_fraction.clamp(0.0, 1.0);
    }

    /// The hotplug safety threshold for a resource (§4.4: "the key challenge
    /// is to determine the hot unplug safety threshold"). For memory this is
    /// the RSS rounded up to the next block; for CPU it is the number of
    /// vCPUs needed to accommodate the busy threads (at least one). Disk and
    /// network cannot be unplugged, so their threshold is the full boot
    /// allocation.
    pub fn hotplug_threshold(&self, kind: ResourceKind) -> f64 {
        match kind {
            ResourceKind::Cpu => {
                let busy_cores = (self.cpu_busy_fraction * self.boot_vcpus as f64).ceil();
                (busy_cores.max(1.0)) * 1000.0
            }
            ResourceKind::Memory => (self.rss_mb / MEMORY_BLOCK_MB).ceil() * MEMORY_BLOCK_MB,
            ResourceKind::DiskBw | ResourceKind::NetBw => f64::INFINITY,
        }
    }

    /// Hot-unplug vCPUs down to `target_vcpus` (or plug back up if the target
    /// exceeds the online count). The guest refuses to go below one vCPU or
    /// below the number of cores its busy threads need, and never exceeds the
    /// boot count.
    pub fn set_online_vcpus(&mut self, target_vcpus: u32) -> HotplugOutcome {
        let requested = target_vcpus as f64 - self.online_vcpus as f64;
        let busy_floor = (self.cpu_busy_fraction * self.boot_vcpus as f64).ceil() as u32;
        let floor = busy_floor.max(1);
        let target = target_vcpus.clamp(floor.min(self.boot_vcpus), self.boot_vcpus);
        let applied = target as f64 - self.online_vcpus as f64;
        self.online_vcpus = target;
        HotplugOutcome { requested, applied }
    }

    /// Hot-unplug (or plug) memory towards `target_mb`. The target is rounded
    /// up to the block size, floored at the RSS safety threshold, and capped
    /// at the boot size. When memory is removed explicitly the guest first
    /// gives up page cache, shrinking it proportionally.
    pub fn set_plugged_memory(&mut self, target_mb: f64) -> HotplugOutcome {
        let requested = target_mb - self.plugged_memory_mb;
        let threshold = self.hotplug_threshold(ResourceKind::Memory);
        let rounded = (target_mb / MEMORY_BLOCK_MB).ceil() * MEMORY_BLOCK_MB;
        let target = rounded.clamp(threshold.min(self.boot_memory_mb), self.boot_memory_mb);
        let applied = target - self.plugged_memory_mb;
        if applied < 0.0 {
            // Shrink the page cache to fit under the new plugged size.
            let available_for_cache = (target - self.rss_mb).max(0.0);
            self.page_cache_mb = self.page_cache_mb.min(available_for_cache);
        }
        self.plugged_memory_mb = target;
        HotplugOutcome { requested, applied }
    }

    /// Whether an explicit unplug of this resource kind is supported at all.
    pub fn supports_hot_unplug(kind: ResourceKind) -> bool {
        matches!(kind, ResourceKind::Cpu | ResourceKind::Memory)
    }

    /// Ask the guest to surrender its page cache (the deflate-then-migrate
    /// squeeze): clean cache pages are dropped instead of being copied over
    /// the migration link, shrinking the hot footprint down to the RSS.
    /// Returns the MiB released. The cache regrows the next time the
    /// workload reports usage — or gradually over time, when the
    /// cache-regrowth model feeds [`regrow_page_cache`](Self::regrow_page_cache).
    pub fn drop_page_cache(&mut self) -> f64 {
        let dropped = self.page_cache_mb;
        self.page_cache_mb = 0.0;
        dropped
    }

    /// The page-cache size the workload currently wants, MiB (the regrowth
    /// target).
    pub fn page_cache_target_mb(&self) -> f64 {
        self.page_cache_target_mb
    }

    /// Serialize the raw guest state for an engine checkpoint. Every
    /// field is written verbatim: the public mutators all clamp, so a
    /// faithful restore cannot go through them.
    pub fn write_snapshot(&self, w: &mut ByteWriter) {
        w.put_u32(self.boot_vcpus);
        w.put_u32(self.online_vcpus);
        w.put_f64(self.boot_memory_mb);
        w.put_f64(self.plugged_memory_mb);
        w.put_f64(self.rss_mb);
        w.put_f64(self.page_cache_mb);
        w.put_f64(self.page_cache_target_mb);
        w.put_f64(self.cpu_busy_fraction);
    }

    /// Rebuild a guest from [`write_snapshot`](Self::write_snapshot)
    /// bytes, bit-identically.
    pub fn read_snapshot(r: &mut ByteReader<'_>) -> CheckpointResult<Self> {
        Ok(GuestOs {
            boot_vcpus: r.get_u32()?,
            online_vcpus: r.get_u32()?,
            boot_memory_mb: r.get_f64()?,
            plugged_memory_mb: r.get_f64()?,
            rss_mb: r.get_f64()?,
            page_cache_mb: r.get_f64()?,
            page_cache_target_mb: r.get_f64()?,
            cpu_busy_fraction: r.get_f64()?,
        })
    }

    /// Regrow up to `mb` MiB of previously dropped page cache — the
    /// time-based half of the cache-regrowth model. Growth is capped at
    /// the workload's reported cache target and at the memory left under
    /// the plugged size after the RSS; a guest that never dropped its
    /// cache regrows nothing. Returns the MiB actually regrown.
    pub fn regrow_page_cache(&mut self, mb: f64) -> f64 {
        let ceiling = self
            .page_cache_target_mb
            .min((self.plugged_memory_mb - self.rss_mb).max(0.0));
        let grown = (self.page_cache_mb + mb.max(0.0)).min(ceiling);
        let delta = (grown - self.page_cache_mb).max(0.0);
        self.page_cache_mb += delta;
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_state() {
        let g = GuestOs::boot(8, 16_384.0);
        assert_eq!(g.online_vcpus(), 8);
        assert_eq!(g.plugged_memory_mb(), 16_384.0);
        assert!(g.rss_mb() > 0.0);
        assert_eq!(GuestOs::boot(0, 10.0).online_vcpus(), 1);
        assert!(GuestOs::boot(0, 10.0).boot_memory_mb() >= MEMORY_BLOCK_MB);
    }

    #[test]
    fn drop_page_cache_releases_everything_and_regrows_on_report() {
        let mut g = GuestOs::boot(4, 8192.0);
        g.report_usage(2048.0, 1024.0, 0.2);
        assert_eq!(g.drop_page_cache(), 1024.0);
        assert_eq!(g.page_cache_mb(), 0.0);
        assert_eq!(g.rss_mb(), 2048.0, "RSS must survive the squeeze");
        // The next usage report regrows the cache.
        g.report_usage(2048.0, 512.0, 0.2);
        assert_eq!(g.page_cache_mb(), 512.0);
    }

    #[test]
    fn page_cache_regrows_toward_the_reported_target() {
        let mut g = GuestOs::boot(4, 8192.0);
        g.report_usage(2048.0, 1024.0, 0.2);
        assert_eq!(g.page_cache_target_mb(), 1024.0);
        assert_eq!(g.drop_page_cache(), 1024.0);
        // Regrowth is capped at the target.
        assert_eq!(g.regrow_page_cache(300.0), 300.0);
        assert_eq!(g.regrow_page_cache(10_000.0), 724.0);
        assert_eq!(g.page_cache_mb(), 1024.0);
        // A warm cache regrows nothing.
        assert_eq!(g.regrow_page_cache(100.0), 0.0);
        // Regrowth never exceeds plugged memory minus RSS.
        g.report_usage(8000.0, 192.0, 0.2);
        g.drop_page_cache();
        assert!(g.regrow_page_cache(1e9) <= 192.0 + 1e-9);
    }

    #[test]
    fn vcpu_unplug_respects_busy_floor() {
        let mut g = GuestOs::boot(8, 8192.0);
        g.report_usage(1024.0, 512.0, 0.5); // needs ceil(0.5*8)=4 cores
        let out = g.set_online_vcpus(2);
        assert_eq!(g.online_vcpus(), 4);
        assert!(!out.complete());
        assert_eq!(out.applied, -4.0);
        // Replug back up to 6.
        let out = g.set_online_vcpus(6);
        assert!(out.complete());
        assert_eq!(g.online_vcpus(), 6);
        // Can never exceed boot count.
        g.set_online_vcpus(100);
        assert_eq!(g.online_vcpus(), 8);
    }

    #[test]
    fn vcpu_unplug_never_below_one() {
        let mut g = GuestOs::boot(4, 4096.0);
        g.report_usage(100.0, 0.0, 0.0);
        g.set_online_vcpus(0);
        assert_eq!(g.online_vcpus(), 1);
    }

    #[test]
    fn memory_unplug_floored_at_rss_block() {
        let mut g = GuestOs::boot(4, 8192.0);
        g.report_usage(3000.0, 2000.0, 0.3);
        let out = g.set_plugged_memory(1024.0);
        // RSS 3000 rounds up to 3072 (24 blocks of 128).
        assert_eq!(g.plugged_memory_mb(), 3072.0);
        assert!(!out.complete());
        // Page cache was shrunk to fit.
        assert!(g.page_cache_mb() <= g.plugged_memory_mb() - g.rss_mb() + 1e-9);
    }

    #[test]
    fn memory_target_rounded_to_blocks() {
        let mut g = GuestOs::boot(4, 8192.0);
        g.report_usage(512.0, 0.0, 0.1);
        g.set_plugged_memory(1000.0);
        assert_eq!(g.plugged_memory_mb(), 1024.0);
        // Replug fully.
        let out = g.set_plugged_memory(8192.0);
        assert!(out.complete());
        assert_eq!(g.plugged_memory_mb(), 8192.0);
        // Cannot exceed boot size.
        g.set_plugged_memory(1e9);
        assert_eq!(g.plugged_memory_mb(), 8192.0);
    }

    #[test]
    fn thresholds_per_resource() {
        let mut g = GuestOs::boot(8, 8192.0);
        g.report_usage(1000.0, 500.0, 0.25);
        assert_eq!(g.hotplug_threshold(ResourceKind::Cpu), 2000.0);
        assert_eq!(g.hotplug_threshold(ResourceKind::Memory), 1024.0);
        assert!(g.hotplug_threshold(ResourceKind::DiskBw).is_infinite());
        assert!(g.hotplug_threshold(ResourceKind::NetBw).is_infinite());
    }

    #[test]
    fn unplug_support_matrix() {
        assert!(GuestOs::supports_hot_unplug(ResourceKind::Cpu));
        assert!(GuestOs::supports_hot_unplug(ResourceKind::Memory));
        assert!(!GuestOs::supports_hot_unplug(ResourceKind::DiskBw));
        assert!(!GuestOs::supports_hot_unplug(ResourceKind::NetBw));
    }

    #[test]
    fn usage_report_clamps_to_plugged_memory() {
        let mut g = GuestOs::boot(4, 2048.0);
        g.report_usage(4096.0, 4096.0, 2.0);
        assert_eq!(g.rss_mb(), 2048.0);
        assert_eq!(g.page_cache_mb(), 0.0);
    }
}
