//! A simulated VM ("domain" in libvirt terminology) and the three deflation
//! mechanisms of §4: transparent, explicit (hotplug) and hybrid.
//!
//! A [`Domain`] combines the simulated [`GuestOs`] (which arbitrates hotplug
//! requests) with a [`CgroupSet`] (which implements hypervisor-level
//! multiplexing). The *effective* allocation of a resource is the tighter of
//! the two paths:
//!
//! * CPU: `min(online_vcpus × 1000 millicores, cpu cgroup limit)`
//! * memory: `min(plugged memory, memory cgroup limit)`
//! * disk / network: cgroup limit only (no hotplug path, §4.3).
//!
//! [`Domain::deflate_to`] applies a target allocation through the selected
//! [`DeflationMechanism`]; the hybrid mechanism follows the pseudo-code of
//! Figure 13: hotplug down to `max(hotplug_threshold, round_up(target))`,
//! then let cgroup multiplexing cover the remaining distance to the target.

use crate::cgroups::CgroupSet;
use crate::guest::{GuestOs, HotplugOutcome, MEMORY_BLOCK_MB};
use deflate_core::checkpoint::{ByteReader, ByteWriter, CheckpointError, CheckpointResult};
use deflate_core::resources::{ResourceKind, ResourceVector};
use deflate_core::vm::VmSpec;
use serde::{Deserialize, Serialize};

/// Which §4 mechanism a deflation request should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeflationMechanism {
    /// Hypervisor-level multiplexing only (cgroup limits); invisible to the
    /// guest (§4.2).
    Transparent,
    /// Hotplug only; visible to the guest, whole-unit granular, bounded by
    /// the safety threshold (§4.3).
    Explicit,
    /// Hotplug down to the safety threshold, multiplexing for the rest
    /// (§4.4, Figure 13).
    Hybrid,
}

impl DeflationMechanism {
    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            DeflationMechanism::Transparent => "transparent",
            DeflationMechanism::Explicit => "explicit",
            DeflationMechanism::Hybrid => "hybrid",
        }
    }
}

/// Outcome of a [`Domain::deflate_to`] call for a single resource.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeflationOutcome {
    /// Resource dimension.
    pub kind: ResourceKind,
    /// Allocation requested by the policy.
    pub requested: f64,
    /// Effective allocation after applying the mechanism.
    pub effective: f64,
    /// Portion of the change realised through hotplug (0 for transparent).
    pub via_hotplug: f64,
    /// Portion realised through cgroup multiplexing.
    pub via_multiplexing: f64,
}

/// Number of CPU-utilisation samples a domain remembers for migration cost
/// estimation (the "recent history" window).
pub const CPU_UTIL_HISTORY_LEN: usize = 8;

/// Time-based page-cache regrowth model.
///
/// A squeezed guest (deflate-then-migrate, autoscale parking) surrenders
/// its page cache, and historically the cache only returned with the next
/// explicit usage report — making *repeated* squeezes free: the second
/// deflate-then-migrate of the same VM copied nothing but the RSS again.
/// With a positive regrowth rate the cache refills over simulated time
/// (the guest re-reads its working set from disk), so a VM squeezed at
/// `t` and migrated again at `t + Δ` has `rate × Δ` MiB of cache back on
/// its hot footprint — repeated squeezes are no longer free. The default
/// rate of `0` reproduces the historical report-only behaviour
/// bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheRegrowthModel {
    /// Page-cache refill bandwidth, MiB per simulated second. `0.0`
    /// disables time-based regrowth (the historical behaviour).
    pub rate_mbps: f64,
}

impl Default for CacheRegrowthModel {
    fn default() -> Self {
        CacheRegrowthModel::disabled()
    }
}

impl CacheRegrowthModel {
    /// No time-based regrowth — caches refill only on usage reports, the
    /// behaviour before the model existed.
    pub fn disabled() -> Self {
        CacheRegrowthModel { rate_mbps: 0.0 }
    }

    /// Regrow at `rate_mbps` MiB of cache per simulated second (a few
    /// hundred MiB/s is a reasonable sequential re-read rate).
    pub fn with_rate(rate_mbps: f64) -> Self {
        CacheRegrowthModel {
            rate_mbps: rate_mbps.max(0.0),
        }
    }

    /// True when the model actually regrows caches over time.
    pub fn is_enabled(&self) -> bool {
        self.rate_mbps > 0.0
    }
}

/// A simulated VM under hypervisor control.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Domain {
    /// Static VM specification.
    pub spec: VmSpec,
    /// Simulated guest OS (hotplug state, RSS, caches).
    pub guest: GuestOs,
    /// Simulated cgroup controllers (multiplexing state).
    pub cgroups: CgroupSet,
    /// Mechanism used for subsequent deflation requests.
    pub mechanism: DeflationMechanism,
    /// Recent CPU-utilisation samples (fractions of the full allocation,
    /// newest last, at most [`CPU_UTIL_HISTORY_LEN`]). The migration cost
    /// model reads this to estimate the domain's page-dirtying rate:
    /// write-heavy guests re-dirty pages during pre-copy and pay extra
    /// rounds, idle guests converge in one.
    cpu_util_history: Vec<f64>,
    /// True while the autoscaler has parked this domain (deflated instead
    /// of terminated on a scale-in). Parked domains are skipped by the
    /// server-level reinflation pass, so the park *sticks* until the
    /// autoscaler explicitly unparks the replica — otherwise the first
    /// departure on the server would silently undo the scale-in.
    parked: bool,
    /// Simulation time of the last cache-regrowth advance, or `-∞` before
    /// the first advance (the first call only stamps the clock — a domain
    /// starts with a warm cache, so there is nothing to regrow before its
    /// first squeeze anyway). `-∞` rather than `NaN` so the derived
    /// `PartialEq` keeps fresh domains equal.
    cache_advance_secs: f64,
}

impl Domain {
    /// Launch a domain at its full allocation using the hybrid mechanism.
    pub fn launch(spec: VmSpec) -> Self {
        Self::launch_with(spec, DeflationMechanism::Hybrid)
    }

    /// Launch a domain with an explicit mechanism choice.
    pub fn launch_with(spec: VmSpec, mechanism: DeflationMechanism) -> Self {
        let vcpus = (spec.max_allocation.cpu() / 1000.0).ceil().max(1.0) as u32;
        let guest = GuestOs::boot(vcpus, spec.max_allocation.memory().max(MEMORY_BLOCK_MB));
        let cgroups = CgroupSet::new(spec.max_allocation);
        Domain {
            spec,
            guest,
            cgroups,
            mechanism,
            cpu_util_history: Vec::new(),
            parked: false,
            cache_advance_secs: f64::NEG_INFINITY,
        }
    }

    /// True while the autoscaler has parked this domain (deflated instead
    /// of terminated). Parked domains are excluded from server-level
    /// reinflation.
    pub fn is_parked(&self) -> bool {
        self.parked
    }

    /// Mark the domain parked / unparked (autoscale scale-in and
    /// scale-out). Parking only sets the flag; the caller deflates the
    /// domain to the park target and, on unpark, reinflates the server.
    pub fn set_parked(&mut self, parked: bool) {
        self.parked = parked;
    }

    /// Advance the time-based cache-regrowth clock to `now_secs`, refilling
    /// the guest's dropped page cache at the model's rate for the elapsed
    /// interval. The first call only stamps the clock (the cache starts
    /// warm); a disabled model is a no-op and keeps the domain bit-identical
    /// to the pre-model behaviour.
    pub fn advance_cache_regrowth(&mut self, now_secs: f64, model: CacheRegrowthModel) {
        if !model.is_enabled() {
            return;
        }
        if self.cache_advance_secs.is_infinite() {
            self.cache_advance_secs = now_secs;
            return;
        }
        let dt = now_secs - self.cache_advance_secs;
        if dt > 0.0 {
            self.guest.regrow_page_cache(model.rate_mbps * dt);
            self.cache_advance_secs = now_secs;
        }
    }

    /// Record one CPU-utilisation sample (fraction of the full allocation,
    /// clamped to `[0, 1]`) into the bounded recent history.
    pub fn observe_cpu_utilization(&mut self, sample: f64) {
        if self.cpu_util_history.len() >= CPU_UTIL_HISTORY_LEN {
            self.cpu_util_history.remove(0);
        }
        self.cpu_util_history.push(sample.clamp(0.0, 1.0));
    }

    /// Mean of the recent CPU-utilisation history, `0.0` when no sample has
    /// been observed yet (a freshly booted guest is idle). Feeds the
    /// dirty-rate term of the migration cost model.
    pub fn recent_cpu_utilization(&self) -> f64 {
        if self.cpu_util_history.is_empty() {
            return 0.0;
        }
        self.cpu_util_history.iter().sum::<f64>() / self.cpu_util_history.len() as f64
    }

    /// The deflate-then-migrate squeeze: surrender the guest's page cache
    /// before a live migration so only the RSS has to cross the link.
    /// Returns the MiB shaved off the hot footprint.
    pub fn deflate_for_migration(&mut self) -> f64 {
        self.guest.drop_page_cache()
    }

    /// Land a live-migrated guest on this (destination) domain: its memory
    /// state — RSS, page cache (possibly squeezed), hotplug state — and
    /// its recent utilisation history move with it; only host-side state
    /// (cgroup limits) belongs to the new server. Without this, a
    /// migrated VM would re-boot with a warm default cache and the
    /// deflate-then-migrate squeeze would silently un-happen in transit.
    /// The parked flag travels too (defence in depth — the cluster layer
    /// does not select parked domains for migration in the first place).
    pub fn migrate_guest_state_from(&mut self, source: &Domain) {
        self.guest = source.guest.clone();
        self.cpu_util_history = source.cpu_util_history.clone();
        self.cache_advance_secs = source.cache_advance_secs;
        self.parked = source.parked;
    }

    /// Serialize the full domain state for an engine checkpoint: spec,
    /// mechanism, raw guest state, cgroup usages + limits (ceilings are
    /// rebuilt from the spec), utilisation history, the parked flag and
    /// the cache-regrowth clock.
    pub fn write_snapshot(&self, w: &mut ByteWriter) {
        w.put_vm_spec(&self.spec);
        w.put_u8(match self.mechanism {
            DeflationMechanism::Transparent => 0,
            DeflationMechanism::Explicit => 1,
            DeflationMechanism::Hybrid => 2,
        });
        self.guest.write_snapshot(w);
        // Usages before limits, mirroring the restore order: `set_usage`
        // clamps to the *current* limit, and a usage recorded before a
        // later limit cut may legitimately exceed the saved limit.
        w.put_resources(&self.cgroups.usages());
        w.put_resources(&self.cgroups.limits());
        w.put_f64_slice(&self.cpu_util_history);
        w.put_bool(self.parked);
        w.put_f64(self.cache_advance_secs);
    }

    /// Rebuild a domain from [`write_snapshot`](Self::write_snapshot)
    /// bytes, bit-identically.
    pub fn read_snapshot(r: &mut ByteReader<'_>) -> CheckpointResult<Self> {
        let spec = r.get_vm_spec()?;
        let mechanism = match r.get_u8()? {
            0 => DeflationMechanism::Transparent,
            1 => DeflationMechanism::Explicit,
            2 => DeflationMechanism::Hybrid,
            other => {
                return Err(CheckpointError::Corrupt(format!(
                    "unknown DeflationMechanism discriminant {other}"
                )))
            }
        };
        let guest = GuestOs::read_snapshot(r)?;
        let usages = r.get_resources()?;
        let limits = r.get_resources()?;
        // Fresh set: limits start at the ceilings, so restoring usages
        // first leaves them unclamped; applying the saved limits after
        // does not touch usages.
        let mut cgroups = CgroupSet::new(spec.max_allocation);
        cgroups.set_usages(usages);
        cgroups.set_limits(limits);
        let cpu_util_history = r.get_f64_vec()?;
        if cpu_util_history.len() > CPU_UTIL_HISTORY_LEN {
            return Err(CheckpointError::Corrupt(format!(
                "cpu utilisation history of {} samples exceeds the {} cap",
                cpu_util_history.len(),
                CPU_UTIL_HISTORY_LEN
            )));
        }
        let parked = r.get_bool()?;
        let cache_advance_secs = r.get_f64()?;
        Ok(Domain {
            spec,
            guest,
            cgroups,
            mechanism,
            cpu_util_history,
            parked,
            cache_advance_secs,
        })
    }

    /// The allocation currently granted on each dimension, i.e. the tighter
    /// of the hotplug state and the cgroup limit.
    pub fn effective_allocation(&self) -> ResourceVector {
        let cpu_hotplug = self.guest.online_vcpus() as f64 * 1000.0;
        let mem_hotplug = self.guest.plugged_memory_mb();
        let limits = self.cgroups.limits();
        ResourceVector::new(
            limits
                .cpu()
                .min(cpu_hotplug)
                .min(self.spec.max_allocation.cpu()),
            limits
                .memory()
                .min(mem_hotplug)
                .min(self.spec.max_allocation.memory()),
            limits.disk_bw(),
            limits.net_bw(),
        )
    }

    /// Deflation fraction of one resource relative to the maximum allocation.
    pub fn deflation_fraction(&self, kind: ResourceKind) -> f64 {
        let max = self.spec.max_allocation[kind];
        if max <= 0.0 {
            0.0
        } else {
            (1.0 - self.effective_allocation()[kind] / max).clamp(0.0, 1.0)
        }
    }

    /// Report the guest workload so hotplug thresholds stay current.
    pub fn report_guest_usage(&mut self, usage: ResourceVector, page_cache_mb: f64) {
        let busy = if self.spec.max_allocation.cpu() > 0.0 {
            usage.cpu() / self.spec.max_allocation.cpu()
        } else {
            0.0
        };
        self.guest.report_usage(usage.memory(), page_cache_mb, busy);
        self.cgroups.set_usages(usage);
        self.observe_cpu_utilization(busy);
    }

    /// Apply a target allocation vector through this domain's mechanism.
    ///
    /// Returns one [`DeflationOutcome`] per resource kind. The effective
    /// allocation after the call:
    ///
    /// * transparent — exactly the clamped target (multiplexing is
    ///   fine-grained and unrestricted);
    /// * explicit — the target rounded to hotplug granularity and floored at
    ///   the guest's safety threshold (so it may exceed the target);
    /// * hybrid — exactly the clamped target, with as much as safely possible
    ///   realised via hotplug and the remainder via multiplexing.
    pub fn deflate_to(&mut self, target: ResourceVector) -> Vec<DeflationOutcome> {
        let clamped = target.clamp(&ResourceVector::ZERO, &self.spec.max_allocation);
        ResourceKind::ALL
            .iter()
            .map(|&kind| self.deflate_resource(kind, clamped[kind]))
            .collect()
    }

    fn deflate_resource(&mut self, kind: ResourceKind, target: f64) -> DeflationOutcome {
        let before = self.effective_allocation()[kind];
        match (self.mechanism, kind) {
            (DeflationMechanism::Transparent, _)
            | (_, ResourceKind::DiskBw)
            | (_, ResourceKind::NetBw) => {
                // Pure multiplexing path. Make sure any previous hotplug
                // state does not cap the allocation tighter than the target.
                self.undo_hotplug_below(kind, target);
                self.cgroups.controller_mut(kind).set_limit(target);
                let effective = self.effective_allocation()[kind];
                DeflationOutcome {
                    kind,
                    requested: target,
                    effective,
                    via_hotplug: 0.0,
                    via_multiplexing: before - effective,
                }
            }
            (DeflationMechanism::Explicit, _) => {
                let outcome = self.hotplug_towards(kind, target);
                // The cgroup limit follows the hotplug result (not the
                // target): explicit deflation cannot go below the safety
                // threshold or split hotplug units.
                let hotplugged = self.hotplug_level(kind);
                self.cgroups.controller_mut(kind).set_limit(hotplugged);
                let effective = self.effective_allocation()[kind];
                DeflationOutcome {
                    kind,
                    requested: target,
                    effective,
                    via_hotplug: -outcome.applied_in_units(kind),
                    via_multiplexing: 0.0,
                }
            }
            (DeflationMechanism::Hybrid, _) => {
                // Figure 13: hotplug_val = max(hp_threshold, round_up(target)).
                let threshold = self.guest.hotplug_threshold(kind);
                let hotplug_val = round_up_to_unit(kind, target).max(threshold);
                let outcome = self.hotplug_towards(kind, hotplug_val);
                // Multiplexing covers the rest of the way to the target.
                self.cgroups.controller_mut(kind).set_limit(target);
                let effective = self.effective_allocation()[kind];
                let via_hotplug = -outcome.applied_in_units(kind);
                DeflationOutcome {
                    kind,
                    requested: target,
                    effective,
                    via_hotplug,
                    via_multiplexing: (before - effective) - via_hotplug,
                }
            }
        }
    }

    /// Current hotplug-granted level of a resource (infinite for resources
    /// without a hotplug path so they never constrain the minimum).
    fn hotplug_level(&self, kind: ResourceKind) -> f64 {
        match kind {
            ResourceKind::Cpu => self.guest.online_vcpus() as f64 * 1000.0,
            ResourceKind::Memory => self.guest.plugged_memory_mb(),
            ResourceKind::DiskBw => self.spec.max_allocation.disk_bw(),
            ResourceKind::NetBw => self.spec.max_allocation.net_bw(),
        }
    }

    /// Drive the hotplug state towards `target` (in canonical units).
    fn hotplug_towards(&mut self, kind: ResourceKind, target: f64) -> HotplugOutcome {
        match kind {
            ResourceKind::Cpu => {
                let vcpus = (target / 1000.0).ceil().max(1.0) as u32;
                self.guest.set_online_vcpus(vcpus)
            }
            ResourceKind::Memory => self.guest.set_plugged_memory(target),
            _ => HotplugOutcome {
                requested: 0.0,
                applied: 0.0,
            },
        }
    }

    /// When switching to a transparent target above the current hotplug
    /// level, plug resources back in first so the hotplug state never caps
    /// the effective allocation below the requested target.
    fn undo_hotplug_below(&mut self, kind: ResourceKind, target: f64) {
        if self.hotplug_level(kind) < target {
            self.hotplug_towards(kind, target);
        }
    }

    /// Owned heap bytes behind this domain (the bounded CPU-utilisation
    /// history; guest and cgroup state are inline scalars). Excludes
    /// `size_of::<Domain>()` itself, which the containing server's map
    /// accounting covers — see `deflate_core::mem` for the convention.
    pub fn accounted_bytes(&self) -> u64 {
        deflate_core::mem::vec_capacity_bytes(&self.cpu_util_history)
    }

    /// Performance overhead factor caused by *transparent* memory deflation
    /// below what the guest believes it owns.
    ///
    /// When the cgroup memory limit drops below the guest's plugged memory,
    /// the guest keeps using its page cache and heap as if the memory were
    /// there, and the hypervisor must swap — the paper measures this as the
    /// ~10 % response-time gap between transparent and hybrid deflation in
    /// Figure 14. The returned factor is `>= 1.0` and multiplies response
    /// times in the application simulators.
    pub fn memory_pressure_overhead(&self) -> f64 {
        let limit = self.cgroups.controller(ResourceKind::Memory).limit();
        let believed = self.guest.plugged_memory_mb();
        if believed <= 0.0 || limit >= believed {
            return 1.0;
        }
        // Pressure is proportional to how much of the guest's believed
        // footprint (RSS + cache it refuses to drop) no longer fits.
        let hot = self.guest.rss_mb() + self.guest.page_cache_mb();
        let overflow = (hot.min(believed) - limit).max(0.0);
        1.0 + 0.35 * (overflow / believed)
    }
}

impl deflate_core::policy::AllocationView for Domain {
    fn spec(&self) -> &VmSpec {
        &self.spec
    }
    fn current_allocation(&self) -> ResourceVector {
        self.effective_allocation()
    }
}

/// Round a target up to the hotplug granularity of the resource: whole vCPUs
/// for CPU, [`MEMORY_BLOCK_MB`] blocks for memory, identity otherwise.
pub fn round_up_to_unit(kind: ResourceKind, value: f64) -> f64 {
    match kind {
        ResourceKind::Cpu => (value / 1000.0).ceil() * 1000.0,
        ResourceKind::Memory => (value / MEMORY_BLOCK_MB).ceil() * MEMORY_BLOCK_MB,
        ResourceKind::DiskBw | ResourceKind::NetBw => value,
    }
}

impl HotplugOutcome {
    /// Applied change converted to the canonical unit of the resource (vCPU
    /// counts → millicores; memory is already in MiB).
    fn applied_in_units(&self, kind: ResourceKind) -> f64 {
        match kind {
            ResourceKind::Cpu => self.applied * 1000.0,
            _ => self.applied,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deflate_core::vm::{VmClass, VmId};

    fn spec() -> VmSpec {
        VmSpec::deflatable(
            VmId(1),
            VmClass::Interactive,
            ResourceVector::new(8000.0, 16_384.0, 200.0, 1000.0),
        )
    }

    #[test]
    fn launch_grants_full_allocation() {
        let d = Domain::launch(spec());
        assert_eq!(d.effective_allocation(), spec().max_allocation);
        assert_eq!(d.guest.online_vcpus(), 8);
        assert_eq!(d.deflation_fraction(ResourceKind::Cpu), 0.0);
        assert!(!d.is_parked());
    }

    #[test]
    fn cache_regrowth_refills_a_squeezed_guest_over_time() {
        let model = CacheRegrowthModel::with_rate(10.0);
        let mut d = Domain::launch(spec());
        d.report_guest_usage(ResourceVector::new(2000.0, 4096.0, 50.0, 100.0), 2048.0);
        // First advance only stamps the clock.
        d.advance_cache_regrowth(100.0, model);
        assert_eq!(d.guest.page_cache_mb(), 2048.0);
        d.deflate_for_migration();
        assert_eq!(d.guest.page_cache_mb(), 0.0);
        // 50 s later, 500 MiB of cache is back on the footprint.
        d.advance_cache_regrowth(150.0, model);
        assert!((d.guest.page_cache_mb() - 500.0).abs() < 1e-9);
        // A second squeeze is therefore no longer free.
        assert!((d.deflate_for_migration() - 500.0).abs() < 1e-9);
        // The disabled model never regrows (the historical behaviour).
        let mut frozen = Domain::launch(spec());
        frozen.report_guest_usage(ResourceVector::new(2000.0, 4096.0, 50.0, 100.0), 2048.0);
        frozen.advance_cache_regrowth(100.0, CacheRegrowthModel::disabled());
        frozen.deflate_for_migration();
        frozen.advance_cache_regrowth(1e9, CacheRegrowthModel::disabled());
        assert_eq!(frozen.guest.page_cache_mb(), 0.0);
    }

    #[test]
    fn cpu_utilization_history_is_bounded_and_averaged() {
        let mut d = Domain::launch(spec());
        assert_eq!(d.recent_cpu_utilization(), 0.0, "fresh guests are idle");
        d.observe_cpu_utilization(0.5);
        d.observe_cpu_utilization(1.5); // clamped to 1.0
        assert!((d.recent_cpu_utilization() - 0.75).abs() < 1e-9);
        // The window is bounded: old samples fall out.
        for _ in 0..CPU_UTIL_HISTORY_LEN {
            d.observe_cpu_utilization(0.2);
        }
        assert!((d.recent_cpu_utilization() - 0.2).abs() < 1e-9);
        // Guest-usage reports feed the same history (busy = 2000/8000).
        let mut fed = Domain::launch(spec());
        fed.report_guest_usage(ResourceVector::new(2000.0, 4000.0, 0.0, 0.0), 1000.0);
        assert!((fed.recent_cpu_utilization() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn deflate_for_migration_drops_cache_only() {
        let mut d = Domain::launch(spec());
        let cache = d.guest.page_cache_mb();
        assert!(cache > 0.0);
        assert_eq!(d.deflate_for_migration(), cache);
        assert_eq!(d.guest.page_cache_mb(), 0.0);
        // Allocations are untouched — the squeeze is guest-internal.
        assert_eq!(d.effective_allocation(), spec().max_allocation);
    }

    #[test]
    fn transparent_deflation_is_fine_grained() {
        let mut d = Domain::launch_with(spec(), DeflationMechanism::Transparent);
        d.deflate_to(ResourceVector::new(2500.0, 6000.0, 50.0, 100.0));
        let eff = d.effective_allocation();
        assert_eq!(eff, ResourceVector::new(2500.0, 6000.0, 50.0, 100.0));
        // The guest still sees all its vCPUs and memory.
        assert_eq!(d.guest.online_vcpus(), 8);
        assert_eq!(d.guest.plugged_memory_mb(), 16_384.0);
        assert!((d.deflation_fraction(ResourceKind::Cpu) - 0.6875).abs() < 1e-9);
    }

    #[test]
    fn explicit_deflation_is_coarse_and_respects_threshold() {
        let mut d = Domain::launch_with(spec(), DeflationMechanism::Explicit);
        d.report_guest_usage(ResourceVector::new(1000.0, 5000.0, 10.0, 10.0), 1000.0);
        let outcomes = d.deflate_to(ResourceVector::new(2500.0, 4000.0, 50.0, 100.0));
        let eff = d.effective_allocation();
        // CPU rounds up to 3 whole vCPUs.
        assert_eq!(eff.cpu(), 3000.0);
        // Memory cannot go below RSS (5000 → 5120 rounded to blocks).
        assert_eq!(eff.memory(), 5120.0);
        // Disk / net still deflate transparently even in explicit mode.
        assert_eq!(eff.disk_bw(), 50.0);
        assert_eq!(eff.net_bw(), 100.0);
        let cpu_outcome = outcomes
            .iter()
            .find(|o| o.kind == ResourceKind::Cpu)
            .unwrap();
        assert!(cpu_outcome.via_hotplug > 0.0);
        assert_eq!(cpu_outcome.via_multiplexing, 0.0);
    }

    #[test]
    fn hybrid_reaches_exact_target_and_uses_hotplug_first() {
        let mut d = Domain::launch_with(spec(), DeflationMechanism::Hybrid);
        d.report_guest_usage(ResourceVector::new(1000.0, 5000.0, 10.0, 10.0), 1000.0);
        let outcomes = d.deflate_to(ResourceVector::new(2500.0, 4000.0, 50.0, 100.0));
        let eff = d.effective_allocation();
        // Hybrid reaches the fine-grained target exactly.
        assert_eq!(eff.cpu(), 2500.0);
        assert_eq!(eff.memory(), 4000.0);
        // But the guest also saw part of it via hotplug: 3 vCPUs online.
        assert_eq!(d.guest.online_vcpus(), 3);
        // Memory hotplug stopped at the RSS threshold (5120).
        assert_eq!(d.guest.plugged_memory_mb(), 5120.0);
        let mem = outcomes
            .iter()
            .find(|o| o.kind == ResourceKind::Memory)
            .unwrap();
        assert!(mem.via_hotplug > 0.0);
        assert!(mem.via_multiplexing > 0.0);
        assert!((mem.via_hotplug + mem.via_multiplexing - (16_384.0 - 4000.0)).abs() < 1e-6);
    }

    #[test]
    fn reinflation_restores_allocation() {
        let mut d = Domain::launch(spec());
        d.report_guest_usage(ResourceVector::new(500.0, 2000.0, 0.0, 0.0), 500.0);
        d.deflate_to(ResourceVector::new(2000.0, 4096.0, 100.0, 500.0));
        assert!(d.deflation_fraction(ResourceKind::Cpu) > 0.0);
        d.deflate_to(spec().max_allocation);
        assert_eq!(d.effective_allocation(), spec().max_allocation);
        assert_eq!(d.guest.online_vcpus(), 8);
        assert_eq!(d.guest.plugged_memory_mb(), 16_384.0);
    }

    #[test]
    fn transparent_after_explicit_replugs_if_needed() {
        let mut d = Domain::launch_with(spec(), DeflationMechanism::Explicit);
        d.report_guest_usage(ResourceVector::new(500.0, 2000.0, 0.0, 0.0), 100.0);
        d.deflate_to(ResourceVector::new(2000.0, 2048.0, 200.0, 1000.0));
        assert_eq!(d.guest.online_vcpus(), 2);
        // Switch to transparent and ask for more CPU than is plugged.
        d.mechanism = DeflationMechanism::Transparent;
        d.deflate_to(ResourceVector::new(6000.0, 8192.0, 200.0, 1000.0));
        assert_eq!(d.effective_allocation().cpu(), 6000.0);
        assert!(d.guest.online_vcpus() >= 6);
    }

    #[test]
    fn memory_pressure_overhead_only_under_transparent_squeeze() {
        let mut transparent = Domain::launch_with(spec(), DeflationMechanism::Transparent);
        transparent.report_guest_usage(ResourceVector::new(0.0, 8000.0, 0.0, 0.0), 4000.0);
        transparent.deflate_to(ResourceVector::new(8000.0, 6000.0, 200.0, 1000.0));
        assert!(transparent.memory_pressure_overhead() > 1.0);

        let mut hybrid = Domain::launch_with(spec(), DeflationMechanism::Hybrid);
        hybrid.report_guest_usage(ResourceVector::new(0.0, 8000.0, 0.0, 0.0), 4000.0);
        hybrid.deflate_to(ResourceVector::new(8000.0, 9000.0, 200.0, 1000.0));
        // The hybrid guest knows about the deflation (memory was unplugged
        // down to ~RSS), so the hypervisor-level squeeze is much smaller.
        assert!(hybrid.memory_pressure_overhead() < transparent.memory_pressure_overhead());
        // No deflation → no overhead.
        let fresh = Domain::launch(spec());
        assert_eq!(fresh.memory_pressure_overhead(), 1.0);
    }

    #[test]
    fn round_up_units() {
        assert_eq!(round_up_to_unit(ResourceKind::Cpu, 2300.0), 3000.0);
        assert_eq!(round_up_to_unit(ResourceKind::Memory, 1000.0), 1024.0);
        assert_eq!(round_up_to_unit(ResourceKind::DiskBw, 33.3), 33.3);
        assert_eq!(DeflationMechanism::Hybrid.name(), "hybrid");
    }

    #[test]
    fn snapshot_round_trips_a_mutated_domain_bit_exactly() {
        let mut d = Domain::launch_with(spec(), DeflationMechanism::Hybrid);
        d.report_guest_usage(ResourceVector::new(2000.0, 6000.0, 50.0, 100.0), 1500.0);
        d.deflate_to(ResourceVector::new(2500.0, 4000.0, 50.0, 100.0));
        d.observe_cpu_utilization(0.7);
        d.set_parked(true);
        d.advance_cache_regrowth(123.0, CacheRegrowthModel::with_rate(5.0));
        let mut w = deflate_core::checkpoint::ByteWriter::new();
        d.write_snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = deflate_core::checkpoint::ByteReader::new(&bytes);
        let restored = Domain::read_snapshot(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored, d);
        // And the snapshot of the restored domain is byte-identical.
        let mut w2 = deflate_core::checkpoint::ByteWriter::new();
        restored.write_snapshot(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn targets_clamped_to_spec_bounds() {
        let mut d = Domain::launch(spec());
        d.deflate_to(ResourceVector::splat(1e12));
        assert_eq!(d.effective_allocation(), spec().max_allocation);
        d.deflate_to(ResourceVector::splat(-100.0));
        assert!(d.effective_allocation().is_non_negative());
    }
}
