//! Event-driven processor-sharing queue.
//!
//! The interactive applications the paper deflates (Wikipedia's LAMP stack,
//! memcached, the microservice social network) are CPU-bound request servers.
//! Their behaviour under CPU deflation is captured well by a
//! **processor-sharing (PS) queue**: all in-flight requests share the
//! server's capacity equally, so shrinking the capacity stretches every
//! in-flight request proportionally — exactly what happens when the
//! hypervisor remaps vCPUs onto fewer physical cores (§4.2, "these vCPUs run
//! slower").
//!
//! [`PsQueue`] is an exact event-driven PS simulation using the standard
//! virtual-time construction: virtual time advances at rate `capacity / n`
//! while `n` requests are active, and a request departs when its attained
//! virtual service equals its demand. Arrivals and departures are both
//! `O(log n)`, so simulating hundreds of thousands of requests (Figure 16
//! runs 800 req/s) is cheap.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Totally ordered wrapper around a finite `f64`, used as a BTreeMap key.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// A completed request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// Caller-assigned request identifier.
    pub id: u64,
    /// Arrival (wall-clock) time, seconds.
    pub arrival: f64,
    /// Departure (wall-clock) time, seconds.
    pub departure: f64,
    /// Service demand in capacity-seconds.
    pub demand: f64,
}

impl Completion {
    /// Response time (departure − arrival).
    pub fn response_time(&self) -> f64 {
        self.departure - self.arrival
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct ActiveRequest {
    id: u64,
    arrival: f64,
    demand: f64,
}

/// An event-driven processor-sharing queue with dynamically adjustable
/// capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsQueue {
    /// Service capacity in demand-units per second.
    capacity: f64,
    /// Current wall-clock time.
    now: f64,
    /// Virtual (per-request attained service) time.
    vtime: f64,
    /// Active requests keyed by their virtual finish time.
    active: BTreeMap<(OrdF64, u64), ActiveRequest>,
}

impl PsQueue {
    /// Create a queue with the given capacity (demand units per second).
    pub fn new(capacity: f64) -> Self {
        PsQueue {
            capacity: capacity.max(0.0),
            now: 0.0,
            vtime: 0.0,
            active: BTreeMap::new(),
        }
    }

    /// Current wall-clock time of the queue.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of in-flight requests.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Current capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Change the service capacity (deflation / reinflation). Completions up
    /// to `time` are processed with the *old* capacity first.
    pub fn set_capacity(&mut self, time: f64, capacity: f64) -> Vec<Completion> {
        let done = self.advance_to(time);
        self.capacity = capacity.max(0.0);
        done
    }

    /// Admit a request with the given service demand at `time`. Completions
    /// up to `time` are processed first and returned.
    pub fn arrive(&mut self, time: f64, id: u64, demand: f64) -> Vec<Completion> {
        let done = self.advance_to(time);
        let demand = demand.max(1e-12);
        let finish_v = self.vtime + demand;
        self.active.insert(
            (OrdF64(finish_v), id),
            ActiveRequest {
                id,
                arrival: time,
                demand,
            },
        );
        done
    }

    /// Advance the simulation clock to `time`, returning every request that
    /// completes on the way (in departure order).
    pub fn advance_to(&mut self, time: f64) -> Vec<Completion> {
        let mut completions = Vec::new();
        if time <= self.now {
            return completions;
        }
        while !self.active.is_empty() && self.capacity > 0.0 {
            let (&(OrdF64(finish_v), id), req) = self.active.iter().next().unwrap();
            let req = *req;
            let n = self.active.len() as f64;
            let dt_to_finish = (finish_v - self.vtime) * n / self.capacity;
            let finish_wall = self.now + dt_to_finish;
            if finish_wall <= time {
                // The head request departs before (or at) the target time.
                self.now = finish_wall;
                self.vtime = finish_v;
                self.active.remove(&(OrdF64(finish_v), id));
                completions.push(Completion {
                    id: req.id,
                    arrival: req.arrival,
                    departure: finish_wall,
                    demand: req.demand,
                });
            } else {
                // Advance virtual time partially and stop.
                let dv = (time - self.now) * self.capacity / n;
                self.vtime += dv;
                self.now = time;
                return completions;
            }
        }
        self.now = time;
        completions
    }

    /// Run the queue until every active request has completed (capacity must
    /// be positive) or return the stragglers as incomplete if it is zero.
    /// Returns `(completions, unfinished_ids)`.
    pub fn drain(&mut self, deadline: f64) -> (Vec<Completion>, Vec<u64>) {
        let completions = self.advance_to(deadline);
        let unfinished = self.active.values().map(|r| r.id).collect();
        (completions, unfinished)
    }

    /// Offered load (total demand of active requests divided by capacity), a
    /// cheap overload indicator.
    pub fn backlog_seconds(&self) -> f64 {
        if self.capacity <= 0.0 {
            return f64::INFINITY;
        }
        let remaining: f64 = self
            .active
            .keys()
            .map(|(OrdF64(finish), _)| (finish - self.vtime).max(0.0))
            .sum();
        remaining / self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_request_runs_at_full_speed() {
        let mut q = PsQueue::new(2.0);
        q.arrive(0.0, 1, 4.0);
        let done = q.advance_to(10.0);
        assert_eq!(done.len(), 1);
        assert!((done[0].response_time() - 2.0).abs() < 1e-9);
        assert_eq!(q.active_count(), 0);
    }

    #[test]
    fn two_requests_share_capacity() {
        let mut q = PsQueue::new(1.0);
        q.arrive(0.0, 1, 1.0);
        q.arrive(0.0, 2, 1.0);
        let done = q.advance_to(10.0);
        assert_eq!(done.len(), 2);
        // Each sees half the capacity: both finish at t = 2.
        for c in &done {
            assert!((c.departure - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn later_arrival_slows_down_earlier_one() {
        let mut q = PsQueue::new(1.0);
        q.arrive(0.0, 1, 1.0);
        q.arrive(0.5, 2, 1.0);
        let done = q.advance_to(10.0);
        assert_eq!(done.len(), 2);
        let first = done.iter().find(|c| c.id == 1).unwrap();
        let second = done.iter().find(|c| c.id == 2).unwrap();
        // Request 1: 0.5s alone (0.5 work) + shares until it finishes the
        // remaining 0.5 work at rate 0.5 → finishes at 1.5.
        assert!((first.departure - 1.5).abs() < 1e-9);
        // Request 2: 0.5 work done by 1.5, then runs alone → finishes at 2.0.
        assert!((second.departure - 2.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_change_mid_flight() {
        let mut q = PsQueue::new(2.0);
        q.arrive(0.0, 1, 4.0);
        // After 1 s, half the work is done; capacity drops to 0.5.
        q.set_capacity(1.0, 0.5);
        let done = q.advance_to(100.0);
        assert_eq!(done.len(), 1);
        // Remaining 2.0 units at 0.5/s = 4 s → departs at t = 5.
        assert!((done[0].departure - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_freezes_progress() {
        let mut q = PsQueue::new(0.0);
        q.arrive(0.0, 1, 1.0);
        let (done, unfinished) = q.drain(100.0);
        assert!(done.is_empty());
        assert_eq!(unfinished, vec![1]);
        assert!(q.backlog_seconds().is_infinite());
    }

    #[test]
    fn departures_preserve_order_of_finish() {
        let mut q = PsQueue::new(1.0);
        q.arrive(0.0, 1, 3.0);
        q.arrive(0.0, 2, 1.0);
        let done = q.advance_to(100.0);
        assert_eq!(done[0].id, 2);
        assert_eq!(done[1].id, 1);
        assert!(done[0].departure <= done[1].departure);
    }

    #[test]
    fn backlog_tracks_remaining_work() {
        let mut q = PsQueue::new(2.0);
        q.arrive(0.0, 1, 4.0);
        q.arrive(0.0, 2, 2.0);
        assert!((q.backlog_seconds() - 3.0).abs() < 1e-9);
        q.advance_to(1.0);
        assert!(q.backlog_seconds() < 3.0);
    }

    #[test]
    fn mean_response_time_matches_mm1_ps_theory() {
        // M/M/1-PS mean response time = S / (1 - rho). Use rho = 0.5.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let mut q = PsQueue::new(1.0);
        let lambda = 0.5f64;
        let mean_s = 1.0f64;
        let mut t = 0.0;
        let mut stats = Vec::new();
        for id in 0..40_000u64 {
            t += -(1.0 - rng.gen::<f64>()).ln() / lambda;
            let demand = -(1.0 - rng.gen::<f64>()).ln() * mean_s;
            for c in q.arrive(t, id, demand) {
                stats.push(c.response_time());
            }
        }
        let (done, _) = q.drain(t + 1e6);
        stats.extend(done.iter().map(|c| c.response_time()));
        let mean: f64 = stats.iter().sum::<f64>() / stats.len() as f64;
        let expected = mean_s / (1.0 - lambda * mean_s);
        assert!(
            (mean - expected).abs() / expected < 0.08,
            "simulated {mean} vs theory {expected}"
        );
    }
}
