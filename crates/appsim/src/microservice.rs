//! Microservice-based social-network application (DeathStarBench, §7.1.1 /
//! §7.2, Figure 18).
//!
//! The paper evaluates the DeathStarBench social-network application: 30
//! microservices (3 frontend, 15 logic, 12 backend) running in Docker
//! containers, each capped at 2 CPU cores with a 0.05-core minimum. The
//! deflation experiment deflates 22 of the 30 services (all frontend and
//! logic services plus the four memcached backends) and drives the
//! application at 500 req/s.
//!
//! The model here is a service-graph queueing model: each microservice is an
//! M/G/1-PS station with its own capacity, each request visits a fixed set of
//! stations (1 frontend, several logic services, several backend services),
//! and the end-to-end response time is the sum of per-visit sojourn times.
//! Per-visit times are sampled from exponential distributions whose mean is
//! the PS sojourn time `S / (1 − ρ)`, which reproduces the paper's
//! observation that degradation is *abrupt*: once any deflated station's
//! utilisation approaches 1, its sojourn time (and therefore the tail of the
//! end-to-end distribution) explodes.

use crate::latency::LatencyStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Functional class of a microservice (Figure 15's three logical tiers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceClass {
    /// Nginx front-ends and media front-ends.
    Frontend,
    /// Composition / business-logic services.
    Logic,
    /// Memcached caches (deflatable backends).
    Cache,
    /// MongoDB / storage services (never deflated in the experiment).
    Storage,
}

/// One microservice in the application graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Microservice {
    /// Service name (as in the DeathStarBench social-network graph).
    pub name: String,
    /// Functional class.
    pub class: ServiceClass,
    /// Maximum CPU allocation in cores (the paper uses 2.0).
    pub max_cores: f64,
    /// Minimum CPU allocation in cores (the paper uses 0.05).
    pub min_cores: f64,
    /// Mean CPU demand per visit, in core-seconds.
    pub demand_per_visit: f64,
    /// Mean number of visits this service receives per end-to-end request.
    pub visits_per_request: f64,
    /// Whether this service is in the deflated set (22 of 30).
    pub deflatable: bool,
}

impl Microservice {
    /// Effective capacity in cores at a given deflation fraction.
    pub fn capacity_at(&self, deflation: f64) -> f64 {
        if self.deflatable {
            (self.max_cores * (1.0 - deflation.clamp(0.0, 1.0))).max(self.min_cores)
        } else {
            self.max_cores
        }
    }

    /// Utilisation at a given request rate and deflation fraction.
    pub fn utilization_at(&self, rate_per_sec: f64, deflation: f64) -> f64 {
        let lambda = rate_per_sec * self.visits_per_request;
        lambda * self.demand_per_visit / self.capacity_at(deflation)
    }

    /// Mean per-visit sojourn time (PS approximation), capped when the
    /// station is saturated. Utilisation is clipped just below 1.0 so a
    /// saturated station produces very large but finite sojourn times (the
    /// observable behaviour of an overloaded service behind connection
    /// limits), with `saturation_cap` as the hard ceiling.
    pub fn sojourn_time(&self, rate_per_sec: f64, deflation: f64, saturation_cap: f64) -> f64 {
        let service_time = self.demand_per_visit / self.capacity_at(deflation);
        let rho = self.utilization_at(rate_per_sec, deflation).min(0.99);
        (service_time / (1.0 - rho)).min(saturation_cap)
    }
}

/// The full social-network application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocialNetworkApp {
    services: Vec<Microservice>,
    /// Request rate driving the application (500 req/s in the paper).
    pub rate_per_sec: f64,
    /// Cap on any single station's sojourn time, seconds (models client
    /// timeouts / connection limits when a station saturates). Requests whose
    /// end-to-end time exceeds this value are counted as dropped.
    pub saturation_cap_secs: f64,
    /// Fixed per-visit network / serialisation latency in seconds, which
    /// deflation does not affect (container-to-container RPC overhead).
    pub network_latency_per_visit: f64,
}

impl SocialNetworkApp {
    /// Build the paper's 30-service social-network graph: 3 frontend, 15
    /// logic and 12 backend services (4 memcached + 8 storage), with 22 of
    /// them deflatable.
    pub fn paper_configuration(rate_per_sec: f64) -> Self {
        let mut services = Vec::with_capacity(30);
        let frontends = ["nginx-web", "nginx-media", "frontend-api"];
        for name in frontends {
            services.push(Microservice {
                name: name.to_string(),
                class: ServiceClass::Frontend,
                max_cores: 2.0,
                min_cores: 0.05,
                // Each request passes through exactly one of the three
                // front-ends (visits 1/3 each).
                demand_per_visit: 0.0042,
                visits_per_request: 1.0 / 3.0,
                deflatable: true,
            });
        }
        let logic_names = [
            "compose-post",
            "home-timeline",
            "user-timeline",
            "social-graph",
            "post-storage-logic",
            "user-service",
            "url-shorten",
            "user-mention",
            "text-service",
            "media-service",
            "unique-id",
            "write-home-timeline",
            "read-post",
            "follow-service",
            "search-service",
        ];
        for name in logic_names {
            services.push(Microservice {
                name: name.to_string(),
                class: ServiceClass::Logic,
                max_cores: 2.0,
                min_cores: 0.05,
                // Each request touches 5 of the 15 logic services on
                // average (visits 1/3 each).
                demand_per_visit: 0.0042,
                visits_per_request: 1.0 / 3.0,
                deflatable: true,
            });
        }
        for i in 0..4 {
            services.push(Microservice {
                name: format!("memcached-{i}"),
                class: ServiceClass::Cache,
                max_cores: 2.0,
                min_cores: 0.05,
                // Every request performs one lookup per cache on average.
                demand_per_visit: 0.0011,
                visits_per_request: 1.0,
                deflatable: true,
            });
        }
        for i in 0..8 {
            services.push(Microservice {
                name: format!("mongodb-{i}"),
                class: ServiceClass::Storage,
                max_cores: 2.0,
                min_cores: 0.05,
                // Two storage reads/writes per request spread over 8 shards.
                demand_per_visit: 0.0030,
                visits_per_request: 2.0 / 8.0,
                deflatable: false,
            });
        }
        debug_assert_eq!(services.len(), 30);
        SocialNetworkApp {
            services,
            rate_per_sec,
            saturation_cap_secs: 60.0,
            network_latency_per_visit: 0.0016,
        }
    }

    /// The services in the graph.
    pub fn services(&self) -> &[Microservice] {
        &self.services
    }

    /// Number of deflatable services (22 in the paper configuration).
    pub fn deflatable_count(&self) -> usize {
        self.services.iter().filter(|s| s.deflatable).count()
    }

    /// The highest station utilisation at a given deflation level — the
    /// quantity that determines where the response-time knee is.
    pub fn bottleneck_utilization(&self, deflation: f64) -> f64 {
        self.services
            .iter()
            .map(|s| s.utilization_at(self.rate_per_sec, deflation))
            .fold(0.0, f64::max)
    }

    /// Simulate `num_requests` end-to-end requests at the given deflation
    /// level and return their latency distribution.
    ///
    /// Per-visit times are sampled exponentially around the PS mean sojourn
    /// time of each station, and a request's response time is the sum over
    /// its visits (the call chain is predominantly sequential in the
    /// social-network benchmark: nginx → logic fan-out → caches/storage).
    pub fn run(&self, deflation: f64, num_requests: usize, seed: u64) -> LatencyStats {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = LatencyStats::new();
        // Pre-compute mean sojourn times.
        let sojourns: Vec<(f64, f64)> = self
            .services
            .iter()
            .map(|s| {
                (
                    s.visits_per_request,
                    s.sojourn_time(self.rate_per_sec, deflation, self.saturation_cap_secs),
                )
            })
            .collect();
        for _ in 0..num_requests {
            let mut total = 0.0;
            for &(visits, mean_sojourn) in &sojourns {
                // The number of visits per request is fractional on average;
                // sample it as a Bernoulli/Poisson-like count.
                let whole = visits.floor() as usize;
                let frac = visits - whole as f64;
                let count = whole + usize::from(rng.gen_bool(frac.clamp(0.0, 1.0)));
                for _ in 0..count {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    total += -u.ln() * mean_sojourn + self.network_latency_per_visit;
                }
            }
            if total > self.saturation_cap_secs {
                stats.record_dropped();
            } else {
                stats.record_served(total);
            }
        }
        stats
    }

    /// Sweep several deflation levels (the x-axis of Figure 18).
    pub fn deflation_sweep(
        &self,
        levels: &[f64],
        num_requests: usize,
        seed: u64,
    ) -> Vec<(f64, LatencyStats)> {
        levels
            .iter()
            .map(|&d| {
                (
                    d,
                    self.run(d, num_requests, seed.wrapping_add((d * 100.0) as u64)),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_matches_described_topology() {
        let app = SocialNetworkApp::paper_configuration(500.0);
        assert_eq!(app.services().len(), 30);
        assert_eq!(app.deflatable_count(), 22);
        let frontends = app
            .services()
            .iter()
            .filter(|s| s.class == ServiceClass::Frontend)
            .count();
        let logic = app
            .services()
            .iter()
            .filter(|s| s.class == ServiceClass::Logic)
            .count();
        let backend = app
            .services()
            .iter()
            .filter(|s| matches!(s.class, ServiceClass::Cache | ServiceClass::Storage))
            .count();
        assert_eq!((frontends, logic, backend), (3, 15, 12));
        // Storage services are not deflated.
        assert!(app
            .services()
            .iter()
            .filter(|s| s.class == ServiceClass::Storage)
            .all(|s| !s.deflatable));
    }

    #[test]
    fn capacity_respects_min_and_max() {
        let app = SocialNetworkApp::paper_configuration(500.0);
        let svc = &app.services()[0];
        assert_eq!(svc.capacity_at(0.0), 2.0);
        assert!((svc.capacity_at(0.5) - 1.0).abs() < 1e-12);
        assert_eq!(svc.capacity_at(1.0), 0.05);
        let storage = app
            .services()
            .iter()
            .find(|s| s.class == ServiceClass::Storage)
            .unwrap();
        assert_eq!(storage.capacity_at(0.9), 2.0);
    }

    #[test]
    fn undeflated_stations_are_unsaturated() {
        let app = SocialNetworkApp::paper_configuration(500.0);
        let rho = app.bottleneck_utilization(0.0);
        assert!(rho < 0.6, "undeflated bottleneck utilisation {rho}");
        // By 65 % deflation some station should be near or past saturation,
        // which is what produces the abrupt degradation of Figure 18.
        assert!(app.bottleneck_utilization(0.68) > 0.9);
    }

    #[test]
    fn response_times_flat_until_50_percent_then_abrupt() {
        let app = SocialNetworkApp::paper_configuration(500.0);
        let sweep = app.deflation_sweep(&[0.0, 0.3, 0.5, 0.65], 4000, 7);
        let medians: Vec<f64> = sweep.iter().map(|(_, s)| s.median()).collect();
        // ≤ 50 % deflation: median within ~2.5× of baseline.
        assert!(medians[1] < 2.5 * medians[0], "30%: {medians:?}");
        assert!(medians[2] < 3.5 * medians[0], "50%: {medians:?}");
        // 65 %: at least an order of magnitude worse than baseline.
        assert!(
            medians[3] > 8.0 * medians[0],
            "65% should degrade abruptly: {medians:?}"
        );
        // Tail grows faster than the median.
        let (_, at65) = &sweep[3];
        assert!(at65.p99() >= at65.median());
    }

    #[test]
    fn deterministic_given_seed() {
        let app = SocialNetworkApp::paper_configuration(500.0);
        let a = app.run(0.5, 500, 3);
        let b = app.run(0.5, 500, 3);
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.served(), b.served());
    }

    #[test]
    fn extreme_deflation_drops_requests() {
        let app = SocialNetworkApp::paper_configuration(500.0);
        let stats = app.run(0.97, 2000, 11);
        assert!(stats.served_fraction() < 1.0);
    }
}
