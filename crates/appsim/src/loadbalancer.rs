//! Deflation-aware web load balancing (§6 "Deflation-aware Web Cluster",
//! §7.3, Figure 19).
//!
//! The paper modifies HAProxy's Weighted Round Robin algorithm so that each
//! backend's weight tracks its current deflation level: a replica deflated to
//! 20 % of its vCPUs receives roughly 20 % of the requests it would otherwise
//! get, shifting load towards undeflated replicas and cutting tail latency by
//! 15–40 % at high deflation levels.
//!
//! This module implements:
//!
//! * [`SmoothWrr`] — the smooth weighted-round-robin scheduler HAProxy/nginx
//!   use (deterministic, preserves proportions over short windows);
//! * [`LbPolicy`] — vanilla (static equal weights) vs deflation-aware
//!   (weights proportional to each replica's effective capacity);
//! * [`WebCluster`] — a cluster of Wikipedia-style replicas, each modelled as
//!   a processor-sharing queue, driven by one open-loop workload through the
//!   load balancer.

use crate::latency::LatencyStats;
use crate::queueing::PsQueue;
use crate::workload::{RequestGenerator, WorkloadConfig};
use serde::{Deserialize, Serialize};

/// Smooth weighted round robin (the algorithm used by nginx and HAProxy).
///
/// Each backend has an effective weight; on every pick the scheduler adds the
/// weight to a running counter, picks the backend with the largest counter
/// and subtracts the total weight from it. The resulting sequence interleaves
/// backends in proportion to their weights without bursts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmoothWrr {
    weights: Vec<f64>,
    current: Vec<f64>,
}

impl SmoothWrr {
    /// Create a scheduler with the given weights (non-positive weights are
    /// treated as a tiny epsilon so a backend is never fully starved unless
    /// every weight is zero).
    pub fn new(weights: Vec<f64>) -> Self {
        let current = vec![0.0; weights.len()];
        SmoothWrr { weights, current }
    }

    /// Update the weights in place (e.g. after a deflation notification).
    pub fn set_weights(&mut self, weights: Vec<f64>) {
        assert_eq!(weights.len(), self.current.len(), "backend count changed");
        self.weights = weights;
    }

    /// Current weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Pick the next backend index. Returns `None` when there are no
    /// backends or all weights are zero.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<usize> {
        if self.weights.is_empty() {
            return None;
        }
        let total: f64 = self.weights.iter().map(|w| w.max(0.0)).sum();
        if total <= 0.0 {
            return None;
        }
        let mut best = 0usize;
        for i in 0..self.weights.len() {
            self.current[i] += self.weights[i].max(0.0);
            if self.current[i] > self.current[best] {
                best = i;
            }
        }
        self.current[best] -= total;
        Some(best)
    }
}

/// Load-balancing policy for the web cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LbPolicy {
    /// Vanilla HAProxy: equal static weights regardless of deflation.
    Vanilla,
    /// Deflation-aware: weights proportional to each replica's *effective*
    /// core count, updated from deflation notifications.
    DeflationAware,
}

impl LbPolicy {
    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            LbPolicy::Vanilla => "vanilla",
            LbPolicy::DeflationAware => "deflation-aware",
        }
    }

    /// The weight vector this policy assigns given the replicas' effective
    /// core counts.
    pub fn weights(&self, effective_cores: &[f64]) -> Vec<f64> {
        match self {
            LbPolicy::Vanilla => vec![1.0; effective_cores.len()],
            LbPolicy::DeflationAware => effective_cores.to_vec(),
        }
    }
}

/// Configuration of the replicated web-cluster experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebClusterConfig {
    /// Undeflated core count of each replica.
    pub replica_cores: Vec<f64>,
    /// Whether each replica is deflatable (the paper deflates two of three).
    pub deflatable: Vec<bool>,
    /// Open-loop workload offered to the cluster as a whole.
    pub workload: WorkloadConfig,
    /// Deflation-independent response-time component per core-second of
    /// demand (page transfer), as in the multi-tier model.
    pub transfer_factor: f64,
    /// Request timeout in seconds.
    pub timeout_secs: f64,
}

impl WebClusterConfig {
    /// The paper's Figure 19 setup: three 10-core Wikipedia replicas, two of
    /// them deflatable, 200 req/s.
    pub fn figure19(duration_secs: f64, seed: u64) -> Self {
        WebClusterConfig {
            replica_cores: vec![10.0, 10.0, 10.0],
            deflatable: vec![true, true, false],
            workload: WorkloadConfig {
                rate_per_sec: 200.0,
                // Heavier pages than the single-VM Wikipedia experiment: the
                // replicas run at ~45 % CPU utilisation undeflated (the
                // paper's Figure 19 baseline sits around a 1 s mean response
                // time), so deflating two of the three replicas past ~40 %
                // visibly overloads them under deflation-unaware balancing.
                demand: crate::workload::DemandDistribution::Uniform {
                    lo: 0.033,
                    hi: 0.100,
                },
                duration_secs,
                seed,
            },
            transfer_factor: 10.0,
            timeout_secs: 15.0,
        }
    }

    /// Effective core count of each replica when the deflatable ones are
    /// deflated by `deflation`.
    pub fn effective_cores(&self, deflation: f64) -> Vec<f64> {
        self.replica_cores
            .iter()
            .zip(self.deflatable.iter())
            .map(|(&cores, &deflatable)| {
                if deflatable {
                    (cores * (1.0 - deflation.clamp(0.0, 1.0))).max(0.05)
                } else {
                    cores
                }
            })
            .collect()
    }
}

/// The replicated web cluster simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct WebCluster;

impl WebCluster {
    /// Run the cluster with the deflatable replicas deflated by `deflation`,
    /// balancing requests with the given policy.
    pub fn run(config: &WebClusterConfig, policy: LbPolicy, deflation: f64) -> LatencyStats {
        let effective = config.effective_cores(deflation);
        let mut queues: Vec<PsQueue> = effective
            .iter()
            .map(|&cores| PsQueue::new(cores.max(1e-6)))
            .collect();
        let mut wrr = SmoothWrr::new(policy.weights(&effective));
        let mut stats = LatencyStats::new();
        let mut demands: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();

        let finish = |stats: &mut LatencyStats,
                      demands: &mut std::collections::HashMap<u64, f64>,
                      completion: crate::queueing::Completion| {
            let demand = demands.remove(&completion.id).unwrap_or(completion.demand);
            let response = completion.response_time() + demand * config.transfer_factor;
            if response <= config.timeout_secs {
                stats.record_served(response);
            } else {
                stats.record_dropped();
            }
        };

        for request in RequestGenerator::new(config.workload) {
            let Some(backend) = wrr.next() else { break };
            demands.insert(request.id, request.demand);
            for done in queues[backend].arrive(request.arrival, request.id, request.demand) {
                finish(&mut stats, &mut demands, done);
            }
        }
        let deadline = config.workload.duration_secs + config.timeout_secs;
        for queue in &mut queues {
            let (completions, unfinished) = queue.drain(deadline);
            for done in completions {
                finish(&mut stats, &mut demands, done);
            }
            for _ in unfinished {
                stats.record_dropped();
            }
        }
        stats
    }

    /// Sweep deflation levels for both load-balancing policies, producing the
    /// `(deflation, vanilla, deflation-aware)` stats rows of Figure 19.
    pub fn policy_comparison(
        config: &WebClusterConfig,
        levels: &[f64],
    ) -> Vec<(f64, LatencyStats, LatencyStats)> {
        levels
            .iter()
            .map(|&d| {
                (
                    d,
                    Self::run(config, LbPolicy::Vanilla, d),
                    Self::run(config, LbPolicy::DeflationAware, d),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_wrr_respects_proportions() {
        let mut wrr = SmoothWrr::new(vec![1.0, 3.0]);
        let mut counts = [0usize; 2];
        for _ in 0..400 {
            counts[wrr.next().unwrap()] += 1;
        }
        assert_eq!(counts[0], 100);
        assert_eq!(counts[1], 300);
    }

    #[test]
    fn smooth_wrr_interleaves_rather_than_bursts() {
        let mut wrr = SmoothWrr::new(vec![1.0, 1.0]);
        let picks: Vec<usize> = (0..6).map(|_| wrr.next().unwrap()).collect();
        // Strict alternation for equal weights.
        assert_ne!(picks[0], picks[1]);
        assert_ne!(picks[1], picks[2]);
    }

    #[test]
    fn smooth_wrr_edge_cases() {
        assert_eq!(SmoothWrr::new(vec![]).next(), None);
        assert_eq!(SmoothWrr::new(vec![0.0, 0.0]).next(), None);
        let mut wrr = SmoothWrr::new(vec![1.0, 0.0]);
        for _ in 0..10 {
            assert_eq!(wrr.next(), Some(0));
        }
        wrr.set_weights(vec![0.0, 1.0]);
        assert_eq!(wrr.next(), Some(1));
    }

    #[test]
    fn policy_weights() {
        let cores = [2.0, 2.0, 10.0];
        assert_eq!(LbPolicy::Vanilla.weights(&cores), vec![1.0, 1.0, 1.0]);
        assert_eq!(
            LbPolicy::DeflationAware.weights(&cores),
            vec![2.0, 2.0, 10.0]
        );
        assert_eq!(LbPolicy::Vanilla.name(), "vanilla");
        assert_eq!(LbPolicy::DeflationAware.name(), "deflation-aware");
    }

    #[test]
    fn effective_cores_only_deflates_deflatable_replicas() {
        let cfg = WebClusterConfig::figure19(10.0, 1);
        let cores = cfg.effective_cores(0.8);
        assert!((cores[0] - 2.0).abs() < 1e-9);
        assert!((cores[1] - 2.0).abs() < 1e-9);
        assert_eq!(cores[2], 10.0);
    }

    fn quick_config() -> WebClusterConfig {
        let mut cfg = WebClusterConfig::figure19(30.0, 5);
        cfg.workload.duration_secs = 30.0;
        cfg
    }

    #[test]
    fn undeflated_cluster_has_low_latency_for_both_policies() {
        let cfg = quick_config();
        let vanilla = WebCluster::run(&cfg, LbPolicy::Vanilla, 0.0);
        let aware = WebCluster::run(&cfg, LbPolicy::DeflationAware, 0.0);
        assert!(vanilla.served_fraction() > 0.999);
        assert!(aware.served_fraction() > 0.999);
        assert!((vanilla.mean() - aware.mean()).abs() < 0.1);
        assert!(vanilla.mean() < 1.0);
    }

    #[test]
    fn deflation_aware_lb_cuts_tail_latency_at_high_deflation() {
        let cfg = quick_config();
        let rows = WebCluster::policy_comparison(&cfg, &[0.6, 0.8]);
        for (d, vanilla, aware) in rows {
            assert!(
                aware.p90() < vanilla.p90(),
                "deflation-aware p90 ({}) should beat vanilla ({}) at {d}",
                aware.p90(),
                vanilla.p90()
            );
            assert!(aware.mean() <= vanilla.mean() + 0.05);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = quick_config();
        let a = WebCluster::run(&cfg, LbPolicy::DeflationAware, 0.5);
        let b = WebCluster::run(&cfg, LbPolicy::DeflationAware, 0.5);
        assert_eq!(a.mean(), b.mean());
    }
}
