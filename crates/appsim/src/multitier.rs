//! Multi-tier interactive web application model (the German-Wikipedia
//! replica of §7.1.1 / §7.2, Figures 16 and 17).
//!
//! The paper's testbed runs MediaWiki + MySQL + Apache + Memcached inside one
//! 30-core / 16 GB VM and drives it with 800 req/s drawn from the 500 largest
//! pages, with a 15-second timeout. Under *CPU deflation* the whole stack
//! shares fewer effective cores, so the model is:
//!
//! * a [`PsQueue`] whose capacity is the VM's effective core count — CPU time
//!   spent rendering a page (PHP + DB + cache lookups), which stretches as
//!   the VM is deflated; plus
//! * a per-request *transfer time* proportional to the page size (network
//!   and disk streaming of 0.5–2.2 MB), which deflation does not affect —
//!   this is why the undeflated mean response time (~0.3 s) is dominated by
//!   the page size rather than CPU queueing.
//!
//! Requests whose total response time exceeds the timeout are counted as
//! dropped ("we set the request time out period to 15 seconds, and consider
//! that requests that take longer are dropped").

use crate::latency::LatencyStats;
use crate::queueing::PsQueue;
use crate::workload::{RequestGenerator, WorkloadConfig};
use serde::{Deserialize, Serialize};

/// Configuration of the multi-tier application experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiTierConfig {
    /// Number of vCPU cores of the undeflated VM (the paper uses 30).
    pub cores: f64,
    /// Request timeout in seconds (requests above this are dropped).
    pub timeout_secs: f64,
    /// Transfer-time factor: seconds of deflation-independent response time
    /// per core-second of CPU demand (page size is proportional to CPU
    /// rendering cost, so this models the 0.5–2.2 MB transfer).
    pub transfer_factor: f64,
    /// Open-loop workload.
    pub workload: WorkloadConfig,
}

impl MultiTierConfig {
    /// The paper's Wikipedia setup: 30 cores, 15 s timeout, 800 req/s.
    pub fn wikipedia(duration_secs: f64, seed: u64) -> Self {
        MultiTierConfig {
            cores: 30.0,
            timeout_secs: 15.0,
            transfer_factor: 28.0,
            workload: WorkloadConfig::wikipedia(duration_secs, seed),
        }
    }

    /// Same application but with a different VM size (used by the
    /// load-balancing experiment, which runs 10-core replicas).
    pub fn with_cores(mut self, cores: f64) -> Self {
        self.cores = cores;
        self
    }

    /// Replace the workload (rate / duration / seed).
    pub fn with_workload(mut self, workload: WorkloadConfig) -> Self {
        self.workload = workload;
        self
    }
}

/// The multi-tier application simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiTierApp;

impl MultiTierApp {
    /// Run the experiment with the VM's CPU deflated by `cpu_deflation`
    /// (0.0 = undeflated, 0.5 = half the cores, …).
    pub fn run(config: &MultiTierConfig, cpu_deflation: f64) -> LatencyStats {
        let capacity = (config.cores * (1.0 - cpu_deflation.clamp(0.0, 1.0))).max(0.01);
        Self::run_with_capacity(config, capacity)
    }

    /// Run the experiment with an explicit effective core count (used when
    /// the capacity comes from a simulated hypervisor domain rather than a
    /// deflation fraction).
    pub fn run_with_capacity(config: &MultiTierConfig, capacity_cores: f64) -> LatencyStats {
        let mut queue = PsQueue::new(capacity_cores.max(1e-6));
        let mut stats = LatencyStats::new();
        let mut pending: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();

        let record =
            |stats: &mut LatencyStats, cpu_time: f64, demand: f64, config: &MultiTierConfig| {
                let response = cpu_time + demand * config.transfer_factor;
                if response <= config.timeout_secs {
                    stats.record_served(response);
                } else {
                    stats.record_dropped();
                }
            };

        for request in RequestGenerator::new(config.workload) {
            pending.insert(request.id, request.demand);
            for done in queue.arrive(request.arrival, request.id, request.demand) {
                let demand = pending.remove(&done.id).unwrap_or(done.demand);
                record(&mut stats, done.response_time(), demand, config);
            }
        }
        // Let in-flight requests finish, but no longer than the timeout past
        // the end of the workload — anything still unfinished is dropped.
        let deadline = config.workload.duration_secs + config.timeout_secs;
        let (completions, unfinished) = queue.drain(deadline);
        for done in completions {
            let demand = pending.remove(&done.id).unwrap_or(done.demand);
            record(&mut stats, done.response_time(), demand, config);
        }
        for _ in unfinished {
            stats.record_dropped();
        }
        stats
    }

    /// Sweep a list of CPU deflation levels (the x-axis of Figures 16/17).
    pub fn deflation_sweep(
        config: &MultiTierConfig,
        deflation_levels: &[f64],
    ) -> Vec<(f64, LatencyStats)> {
        deflation_levels
            .iter()
            .map(|&d| (d, Self::run(config, d)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> MultiTierConfig {
        // Shorter run and lower rate for fast unit tests; same shape.
        let mut cfg = MultiTierConfig::wikipedia(20.0, 42);
        cfg.workload.rate_per_sec = 200.0;
        cfg.workload.duration_secs = 20.0;
        cfg.cores = 7.5; // keep the same offered-load ratio as 800 req/s on 30
        cfg
    }

    #[test]
    fn undeflated_response_time_is_sub_second() {
        let stats = MultiTierApp::run(&quick_config(), 0.0);
        assert!(stats.served() > 1000);
        assert!(stats.served_fraction() > 0.999);
        let mean = stats.mean();
        assert!(
            (0.15..0.6).contains(&mean),
            "undeflated mean response time {mean}"
        );
    }

    #[test]
    fn moderate_deflation_has_small_impact() {
        let cfg = quick_config();
        let base = MultiTierApp::run(&cfg, 0.0).mean();
        let at_50 = MultiTierApp::run(&cfg, 0.5).mean();
        assert!(
            at_50 < 2.0 * base,
            "50% deflation mean {at_50} vs base {base}"
        );
        let served = MultiTierApp::run(&cfg, 0.5).served_fraction();
        assert!(served > 0.99);
    }

    #[test]
    fn deep_deflation_degrades_and_drops_requests() {
        let cfg = quick_config();
        let at_90 = MultiTierApp::run(&cfg, 0.9);
        let base = MultiTierApp::run(&cfg, 0.0);
        assert!(at_90.mean() > 2.0 * base.mean());
        assert!(at_90.served_fraction() < 0.95);
    }

    #[test]
    fn response_time_monotonically_increases_with_deflation() {
        let cfg = quick_config();
        let sweep = MultiTierApp::deflation_sweep(&cfg, &[0.0, 0.3, 0.6, 0.8]);
        let means: Vec<f64> = sweep.iter().map(|(_, s)| s.mean()).collect();
        for w in means.windows(2) {
            assert!(
                w[1] >= w[0] - 0.05,
                "mean response time should not improve with deflation: {means:?}"
            );
        }
    }

    #[test]
    fn run_with_capacity_matches_equivalent_deflation() {
        let cfg = quick_config();
        let a = MultiTierApp::run(&cfg, 0.5);
        let b = MultiTierApp::run_with_capacity(&cfg, cfg.cores * 0.5);
        assert_eq!(a.served(), b.served());
        assert!((a.mean() - b.mean()).abs() < 1e-9);
    }

    #[test]
    fn config_builders() {
        let cfg = MultiTierConfig::wikipedia(10.0, 1)
            .with_cores(10.0)
            .with_workload(WorkloadConfig::wikipedia(5.0, 2));
        assert_eq!(cfg.cores, 10.0);
        assert_eq!(cfg.workload.duration_secs, 5.0);
    }
}
