//! Response-time statistics collection.
//!
//! The web-application experiments report latency distributions: Figure 16 is
//! a violin plot of Wikipedia response times, Figure 18 reports median / 90th
//! / 99th percentiles for the social-network application, Figure 19 reports
//! mean and 90th percentile under different load balancers, and Figure 17
//! reports the fraction of requests served before the timeout.
//! [`LatencyStats`] accumulates per-request outcomes and produces those
//! summary numbers.

use deflate_core::checkpoint::{ByteReader, ByteWriter, CheckpointResult};
use serde::{Deserialize, Serialize};

/// Outcome of one simulated request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RequestOutcome {
    /// The request completed with the given response time in seconds.
    Served {
        /// Response time (seconds).
        response_time: f64,
    },
    /// The request exceeded its timeout (or never completed before the end
    /// of the experiment) and is counted as dropped.
    Dropped,
}

/// Accumulator for request outcomes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    response_times: Vec<f64>,
    dropped: usize,
}

impl LatencyStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one outcome.
    pub fn record(&mut self, outcome: RequestOutcome) {
        match outcome {
            RequestOutcome::Served { response_time } => {
                self.response_times.push(response_time.max(0.0));
            }
            RequestOutcome::Dropped => self.dropped += 1,
        }
    }

    /// Record a served request directly.
    pub fn record_served(&mut self, response_time: f64) {
        self.record(RequestOutcome::Served { response_time });
    }

    /// Record a dropped request directly.
    pub fn record_dropped(&mut self) {
        self.record(RequestOutcome::Dropped);
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.response_times.extend_from_slice(&other.response_times);
        self.dropped += other.dropped;
    }

    /// Number of served requests.
    pub fn served(&self) -> usize {
        self.response_times.len()
    }

    /// Number of dropped requests.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Total requests observed.
    pub fn total(&self) -> usize {
        self.served() + self.dropped()
    }

    /// Fraction of requests served (Figure 17's metric). Returns 1.0 when no
    /// requests were observed.
    pub fn served_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            self.served() as f64 / total as f64
        }
    }

    /// Mean response time of served requests (0 when none were served).
    pub fn mean(&self) -> f64 {
        if self.response_times.is_empty() {
            0.0
        } else {
            self.response_times.iter().sum::<f64>() / self.response_times.len() as f64
        }
    }

    /// The `p`-th percentile response time of served requests.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.response_times.is_empty() {
            return 0.0;
        }
        let mut sorted = self.response_times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let p = p.clamp(0.0, 100.0) / 100.0;
        let rank = p * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = rank - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// Median response time.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 90th-percentile response time.
    pub fn p90(&self) -> f64 {
        self.percentile(90.0)
    }

    /// 99th-percentile response time.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// All served response times (for violin-style distribution output).
    pub fn response_times(&self) -> &[f64] {
        &self.response_times
    }

    /// Owned heap bytes behind the accumulator: the response-time sample
    /// buffer's capacity. Feeds the engine's per-subsystem memory ledger.
    pub fn accounted_bytes(&self) -> u64 {
        deflate_core::mem::vec_capacity_bytes(&self.response_times)
    }

    /// Serialize the accumulator for an engine checkpoint: every served
    /// response time (in arrival order — the order drives nothing, but
    /// keeping it makes the restored accumulator bit-identical) plus the
    /// dropped count.
    pub fn write_snapshot(&self, w: &mut ByteWriter) {
        w.put_f64_slice(&self.response_times);
        w.put_usize(self.dropped);
    }

    /// Rebuild an accumulator from [`write_snapshot`](Self::write_snapshot)
    /// bytes.
    pub fn read_snapshot(r: &mut ByteReader<'_>) -> CheckpointResult<Self> {
        Ok(LatencyStats {
            response_times: r.get_f64_vec()?,
            dropped: r.get_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = LatencyStats::new();
        assert_eq!(s.total(), 0);
        assert_eq!(s.served_fraction(), 1.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.p99(), 0.0);
    }

    #[test]
    fn records_and_summarises() {
        let mut s = LatencyStats::new();
        for rt in [0.1, 0.2, 0.3, 0.4, 1.0] {
            s.record_served(rt);
        }
        s.record_dropped();
        assert_eq!(s.served(), 5);
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.total(), 6);
        assert!((s.served_fraction() - 5.0 / 6.0).abs() < 1e-12);
        assert!((s.mean() - 0.4).abs() < 1e-12);
        assert!((s.median() - 0.3).abs() < 1e-12);
        assert!(s.p90() > s.median());
        assert!(s.p99() <= 1.0 + 1e-12);
    }

    #[test]
    fn negative_response_times_clamped() {
        let mut s = LatencyStats::new();
        s.record_served(-3.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyStats::new();
        a.record_served(0.5);
        let mut b = LatencyStats::new();
        b.record_served(1.5);
        b.record_dropped();
        a.merge(&b);
        assert_eq!(a.served(), 2);
        assert_eq!(a.dropped(), 1);
        assert!((a.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_sample() {
        let mut s = LatencyStats::new();
        s.record_served(0.7);
        assert_eq!(s.percentile(10.0), 0.7);
        assert_eq!(s.percentile(99.0), 0.7);
    }
}
