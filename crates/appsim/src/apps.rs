//! Benchmark-application performance profiles (Figures 3 and 14).
//!
//! Figure 3 plots the normalized performance of three applications — SpecJBB,
//! kernel compilation (Kcompile) and Memcached — when *all* their resources
//! (CPU, memory, I/O) are deflated in the same proportion. The applications
//! differ in how much slack they have (SpecJBB has essentially none) and how
//! gracefully they degrade.
//!
//! Figure 14 plots SpecJBB 2015's mean response time under *memory-only*
//! deflation with the transparent vs the hybrid mechanism: both are largely
//! unaffected up to ~40 % deflation, and hybrid is about 10 % better because
//! the guest gets to release unused (cache / heap-headroom) memory instead of
//! being swapped by the hypervisor.

use deflate_core::perfmodel::PerfModel;
use deflate_core::resources::ResourceVector;
use deflate_core::vm::{VmClass, VmId, VmSpec};
use deflate_hypervisor::domain::{DeflationMechanism, Domain};
use serde::{Deserialize, Serialize};

/// A named application with its deflation-response profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApplicationProfile {
    /// Application name.
    pub name: &'static str,
    /// Performance-response model under uniform deflation of all resources.
    pub model: PerfModel,
}

impl ApplicationProfile {
    /// SpecJBB 2015: a JVM business-logic benchmark that sizes its heap and
    /// thread pool to the full machine, so it has no slack at all and
    /// degrades from the very first percent of deflation (Figure 3).
    pub fn specjbb() -> Self {
        ApplicationProfile {
            name: "SpecJBB",
            model: PerfModel::new(0.0, 0.72, 0.35, 1.05),
        }
    }

    /// Linux kernel compilation: moderately parallel batch job with some
    /// slack and a roughly linear degradation region.
    pub fn kcompile() -> Self {
        ApplicationProfile {
            name: "Kcompile",
            model: PerfModel::new(0.18, 0.85, 0.40, 1.0),
        }
    }

    /// Memcached: a memory-resident key-value cache that is heavily
    /// over-provisioned in CPU and tolerates substantial deflation before its
    /// hit path slows down (Figure 3 shows the widest slack region).
    pub fn memcached() -> Self {
        ApplicationProfile {
            name: "Memcached",
            model: PerfModel::new(0.38, 0.9, 0.45, 0.9),
        }
    }

    /// The three applications of Figure 3, in plot order.
    pub fn figure3_applications() -> [ApplicationProfile; 3] {
        [Self::specjbb(), Self::kcompile(), Self::memcached()]
    }

    /// Normalized performance at a uniform deflation level.
    pub fn performance(&self, deflation: f64) -> f64 {
        self.model.performance(deflation)
    }

    /// Generate the (deflation, normalized performance) series of Figure 3.
    pub fn deflation_curve(&self, levels: &[f64]) -> Vec<(f64, f64)> {
        levels.iter().map(|&d| (d, self.performance(d))).collect()
    }
}

/// SpecJBB 2015 memory-deflation experiment (Figure 14): mean response time,
/// normalized to the undeflated configuration, under transparent vs hybrid
/// memory deflation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpecJbbMemoryExperiment {
    /// VM memory size in MiB (the experiment uses a 16 GiB VM).
    pub memory_mb: f64,
    /// Resident set (live heap + JVM) as a fraction of the VM memory.
    pub rss_fraction: f64,
    /// Page-cache / heap-headroom as a fraction of the VM memory — memory
    /// the guest would willingly give back if asked explicitly.
    pub reclaimable_fraction: f64,
}

impl Default for SpecJbbMemoryExperiment {
    fn default() -> Self {
        SpecJbbMemoryExperiment {
            memory_mb: 16_384.0,
            rss_fraction: 0.55,
            reclaimable_fraction: 0.25,
        }
    }
}

impl SpecJbbMemoryExperiment {
    /// Normalized mean response time at `memory_deflation` using the given
    /// mechanism. `1.0` means unchanged from the undeflated baseline; values
    /// below `1.0` mean the run got *faster* (the paper observes hybrid
    /// deflation improving performance by ~10 % because unplugging idle
    /// memory shrinks the JVM's GC scan set).
    pub fn normalized_response_time(
        &self,
        mechanism: DeflationMechanism,
        memory_deflation: f64,
    ) -> f64 {
        let deflation = memory_deflation.clamp(0.0, 1.0);
        let spec = VmSpec::deflatable(
            VmId(0),
            VmClass::Interactive,
            ResourceVector::new(8_000.0, self.memory_mb, 200.0, 1_000.0),
        );
        let mut domain = Domain::launch_with(spec, mechanism);
        let rss = self.rss_fraction * self.memory_mb;
        let cache = self.reclaimable_fraction * self.memory_mb;
        domain.report_guest_usage(ResourceVector::new(4_000.0, rss, 0.0, 0.0), cache);

        let target_memory = (1.0 - deflation) * self.memory_mb;
        let target = ResourceVector::new(8_000.0, target_memory, 200.0, 1_000.0);
        domain.deflate_to(target);
        let effective = domain.effective_allocation().memory();

        // Response-time model:
        //  * squeezing below the working set (RSS) forces the JVM to touch
        //    swapped pages — a steep penalty;
        //  * a transparent squeeze below what the guest *believes* it owns
        //    causes hypervisor-level swapping of cache/heap-headroom pages —
        //    a moderate penalty (the transparent-vs-hybrid gap of Fig 14);
        //  * explicitly unplugged idle memory shrinks the heap the JVM must
        //    manage, a small improvement (hybrid dips below 1.0).
        let working_set_overflow = ((rss - effective) / self.memory_mb).max(0.0);
        let believed = domain.guest.plugged_memory_mb();
        let transparent_squeeze = ((believed - effective.max(rss)) / self.memory_mb)
            .max(0.0)
            .min(((rss + cache - effective).max(0.0)) / self.memory_mb);
        let unplugged_idle = ((self.memory_mb - believed) / self.memory_mb).max(0.0);

        1.0 + 6.0 * working_set_overflow + 1.2 * transparent_squeeze - 0.4 * unplugged_idle
    }

    /// Sweep both mechanisms over a list of memory-deflation levels,
    /// returning `(deflation, transparent, hybrid)` rows — the series of
    /// Figure 14.
    pub fn sweep(&self, levels: &[f64]) -> Vec<(f64, f64, f64)> {
        levels
            .iter()
            .map(|&d| {
                (
                    d,
                    self.normalized_response_time(DeflationMechanism::Transparent, d),
                    self.normalized_response_time(DeflationMechanism::Hybrid, d),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_profiles_have_the_described_shapes() {
        let specjbb = ApplicationProfile::specjbb();
        let kcompile = ApplicationProfile::kcompile();
        let memcached = ApplicationProfile::memcached();
        // SpecJBB has no slack: any deflation hurts.
        assert!(specjbb.performance(0.05) < 1.0);
        // Memcached has the widest slack region.
        assert_eq!(memcached.performance(0.3), 1.0);
        assert!(kcompile.performance(0.3) < 1.0 || kcompile.model.slack >= 0.3);
        // All three collapse at extreme deflation.
        for app in ApplicationProfile::figure3_applications() {
            assert!(app.performance(0.98) < 0.3, "{} did not collapse", app.name);
            // Monotone non-increasing.
            let curve = app.deflation_curve(&[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]);
            for w in curve.windows(2) {
                assert!(w[1].1 <= w[0].1 + 1e-12);
            }
        }
        // Ordering at 50% deflation: memcached ≥ kcompile ≥ specjbb.
        assert!(memcached.performance(0.5) >= kcompile.performance(0.5));
        assert!(kcompile.performance(0.5) >= specjbb.performance(0.5));
    }

    #[test]
    fn figure14_flat_until_40_percent() {
        let exp = SpecJbbMemoryExperiment::default();
        for d in [0.0, 0.1, 0.2, 0.3, 0.4] {
            let hybrid = exp.normalized_response_time(DeflationMechanism::Hybrid, d);
            assert!(
                hybrid < 1.1,
                "hybrid RT at {d} should be near 1.0, was {hybrid}"
            );
            let transparent = exp.normalized_response_time(DeflationMechanism::Transparent, d);
            assert!(
                transparent < 1.35,
                "transparent RT at {d} should be modest, was {transparent}"
            );
        }
    }

    #[test]
    fn figure14_hybrid_beats_transparent_at_moderate_deflation() {
        let exp = SpecJbbMemoryExperiment::default();
        let rows = exp.sweep(&[0.25, 0.3, 0.35, 0.4, 0.45]);
        for (d, transparent, hybrid) in rows {
            assert!(
                hybrid <= transparent + 1e-9,
                "hybrid ({hybrid}) should not be worse than transparent ({transparent}) at {d}"
            );
        }
        // Around 30–40 % deflation hybrid is roughly 10 % better.
        let t = exp.normalized_response_time(DeflationMechanism::Transparent, 0.4);
        let h = exp.normalized_response_time(DeflationMechanism::Hybrid, 0.4);
        assert!(
            t - h > 0.05,
            "expected a visible hybrid advantage: {t} vs {h}"
        );
    }

    #[test]
    fn figure14_deep_deflation_hurts_both() {
        let exp = SpecJbbMemoryExperiment::default();
        let t = exp.normalized_response_time(DeflationMechanism::Transparent, 0.7);
        let h = exp.normalized_response_time(DeflationMechanism::Hybrid, 0.7);
        assert!(t > 1.3);
        assert!(h > 1.3);
    }

    #[test]
    fn baseline_is_exactly_one() {
        let exp = SpecJbbMemoryExperiment::default();
        for mech in [
            DeflationMechanism::Transparent,
            DeflationMechanism::Hybrid,
            DeflationMechanism::Explicit,
        ] {
            let rt = exp.normalized_response_time(mech, 0.0);
            assert!((rt - 1.0).abs() < 1e-9, "baseline RT for {mech:?} was {rt}");
        }
    }
}
