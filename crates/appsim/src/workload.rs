//! Open-loop request workload generators.
//!
//! The paper drives its web experiments with open-loop generators: the
//! Wikipedia replica receives "a mean load of 800 requests/s selected
//! randomly from the 500 largest pages (page sizes ranging from 0.5–2.2 MB)"
//! with a 15-second timeout (§7.2), and the social network is driven by a
//! wrk2-based generator at 500 req/s. [`RequestGenerator`] produces the
//! corresponding arrival process: Poisson arrivals at a configurable mean
//! rate, with per-request service demands drawn from a configurable
//! distribution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One generated request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Monotonically increasing request identifier.
    pub id: u64,
    /// Arrival time in seconds since the start of the run.
    pub arrival: f64,
    /// Service demand in capacity-seconds at an undeflated reference server.
    pub demand: f64,
}

/// Service-demand distributions for generated requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DemandDistribution {
    /// Every request needs exactly this many capacity-seconds.
    Constant(f64),
    /// Exponentially distributed with the given mean.
    Exponential {
        /// Mean demand.
        mean: f64,
    },
    /// Uniformly distributed in `[lo, hi]` — models the paper's Wikipedia
    /// workload where the top-500 page sizes span 0.5–2.2 MB and rendering
    /// cost scales with page size.
    Uniform {
        /// Smallest demand.
        lo: f64,
        /// Largest demand.
        hi: f64,
    },
}

impl DemandDistribution {
    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        match self {
            DemandDistribution::Constant(c) => *c,
            DemandDistribution::Exponential { mean } => *mean,
            DemandDistribution::Uniform { lo, hi } => 0.5 * (lo + hi),
        }
    }

    fn sample(&self, rng: &mut StdRng) -> f64 {
        match self {
            DemandDistribution::Constant(c) => *c,
            DemandDistribution::Exponential { mean } => -(1.0 - rng.gen::<f64>()).ln() * mean,
            DemandDistribution::Uniform { lo, hi } => rng.gen_range(*lo..*hi),
        }
    }
}

/// Configuration of an open-loop workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Mean arrival rate, requests per second.
    pub rate_per_sec: f64,
    /// Per-request service demand distribution (capacity-seconds at an
    /// undeflated reference server).
    pub demand: DemandDistribution,
    /// Duration of the generated workload, seconds.
    pub duration_secs: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The Wikipedia workload of §7.2: 800 req/s, page-size-proportional
    /// demands calibrated so that an undeflated 30-core VM sees a mean
    /// response time of roughly 0.3 s and the knee of the response-time
    /// curve falls around 70–80 % CPU deflation (Figure 16).
    pub fn wikipedia(duration_secs: f64, seed: u64) -> Self {
        WorkloadConfig {
            rate_per_sec: 800.0,
            // CPU demands in core-seconds (page rendering with warm
            // memcached): 4–16 core-milliseconds per page, proportional to
            // the 0.5–2.2 MB page size. The transfer-time component of the
            // response time is added by the application model, not here.
            demand: DemandDistribution::Uniform {
                lo: 0.004,
                hi: 0.016,
            },
            duration_secs,
            seed,
        }
    }

    /// The social-network workload of §7.2: 500 req/s.
    pub fn social_network(duration_secs: f64, seed: u64) -> Self {
        WorkloadConfig {
            rate_per_sec: 500.0,
            demand: DemandDistribution::Exponential { mean: 0.004 },
            duration_secs,
            seed,
        }
    }

    /// Offered load in capacity-seconds per second (must be below the
    /// server's capacity for stability).
    pub fn offered_load(&self) -> f64 {
        self.rate_per_sec * self.demand.mean()
    }
}

/// Poisson open-loop request generator.
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    config: WorkloadConfig,
    rng: StdRng,
    next_id: u64,
    next_arrival: f64,
}

impl RequestGenerator {
    /// Create a generator for the given workload.
    pub fn new(config: WorkloadConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let first = if config.rate_per_sec > 0.0 {
            -(1.0 - rng.gen::<f64>()).ln() / config.rate_per_sec
        } else {
            f64::INFINITY
        };
        RequestGenerator {
            config,
            rng,
            next_id: 0,
            next_arrival: first,
        }
    }

    /// The workload configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Generate the entire request sequence up front.
    pub fn generate_all(config: WorkloadConfig) -> Vec<Request> {
        RequestGenerator::new(config).collect()
    }
}

impl Iterator for RequestGenerator {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.next_arrival > self.config.duration_secs {
            return None;
        }
        let req = Request {
            id: self.next_id,
            arrival: self.next_arrival,
            demand: self.config.demand.sample(&mut self.rng).max(1e-9),
        };
        self.next_id += 1;
        let gap = -(1.0 - self.rng.gen::<f64>()).ln() / self.config.rate_per_sec.max(1e-12);
        self.next_arrival += gap;
        Some(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_poisson_arrivals_at_the_requested_rate() {
        let cfg = WorkloadConfig {
            rate_per_sec: 200.0,
            demand: DemandDistribution::Constant(0.01),
            duration_secs: 50.0,
            seed: 1,
        };
        let reqs = RequestGenerator::generate_all(cfg);
        let rate = reqs.len() as f64 / cfg.duration_secs;
        assert!((rate - 200.0).abs() < 10.0, "rate was {rate}");
        // Arrivals are sorted and within the horizon.
        for w in reqs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        assert!(reqs.last().unwrap().arrival <= cfg.duration_secs);
        // Ids are unique and dense.
        assert_eq!(reqs.last().unwrap().id as usize, reqs.len() - 1);
    }

    #[test]
    fn demand_distributions_have_expected_means() {
        for (dist, expected) in [
            (DemandDistribution::Constant(0.5), 0.5),
            (DemandDistribution::Exponential { mean: 0.2 }, 0.2),
            (DemandDistribution::Uniform { lo: 0.1, hi: 0.3 }, 0.2),
        ] {
            assert!((dist.mean() - expected).abs() < 1e-12);
            let cfg = WorkloadConfig {
                rate_per_sec: 500.0,
                demand: dist,
                duration_secs: 40.0,
                seed: 2,
            };
            let reqs = RequestGenerator::generate_all(cfg);
            let mean: f64 = reqs.iter().map(|r| r.demand).sum::<f64>() / reqs.len() as f64;
            assert!(
                (mean - expected).abs() / expected < 0.05,
                "sample mean {mean} vs {expected}"
            );
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = WorkloadConfig::wikipedia(5.0, 9);
        assert_eq!(
            RequestGenerator::generate_all(cfg),
            RequestGenerator::generate_all(cfg)
        );
    }

    #[test]
    fn presets_match_paper_parameters() {
        let wiki = WorkloadConfig::wikipedia(10.0, 0);
        assert_eq!(wiki.rate_per_sec, 800.0);
        // Offered CPU load must be far below 30 cores (slack when
        // undeflated) but high enough that deflating past ~75 % saturates
        // the VM (Figure 16's knee).
        assert!(wiki.offered_load() > 5.0 && wiki.offered_load() < 12.0);
        let social = WorkloadConfig::social_network(10.0, 0);
        assert_eq!(social.rate_per_sec, 500.0);
    }

    #[test]
    fn zero_rate_produces_no_requests() {
        let cfg = WorkloadConfig {
            rate_per_sec: 0.0,
            demand: DemandDistribution::Constant(1.0),
            duration_secs: 10.0,
            seed: 3,
        };
        assert!(RequestGenerator::generate_all(cfg).is_empty());
    }
}
