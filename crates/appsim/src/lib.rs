//! # deflate-appsim
//!
//! Request-level application simulators for the deflation experiments of §7.
//!
//! The paper's testbed runs real applications (a German-Wikipedia LAMP
//! replica, the DeathStarBench social network, SpecJBB, kernel compilation,
//! Memcached) behind a real HAProxy. This crate replaces them with simulation
//! models that preserve the behaviour deflation interacts with — CPU
//! queueing, service saturation, page-transfer floors, working-set memory
//! pressure and weighted-round-robin load balancing:
//!
//! * [`queueing`] — an exact event-driven processor-sharing queue.
//! * [`workload`] — open-loop Poisson request generators (800 req/s
//!   Wikipedia, 500 req/s social network).
//! * [`latency`] — response-time statistics (mean / median / p90 / p99 /
//!   served fraction).
//! * [`multitier`] — the Wikipedia multi-tier application (Figures 16, 17).
//! * [`microservice`] — the 30-service social network (Figure 18).
//! * [`apps`] — SpecJBB / Kcompile / Memcached profiles (Figure 3) and the
//!   SpecJBB memory-deflation experiment (Figure 14).
//! * [`loadbalancer`] — vanilla vs deflation-aware weighted round robin
//!   (Figure 19).
//!
//! # Example
//!
//! The processor-sharing queue is the primitive everything else builds
//! on: deflating a VM shrinks the queue's capacity, which stretches the
//! response times of whatever is in service. Two concurrent one-second
//! requests on one core each see exactly two seconds of wall clock:
//!
//! ```
//! use deflate_appsim::queueing::PsQueue;
//!
//! let mut queue = PsQueue::new(1.0); // one core's worth of capacity
//! queue.arrive(0.0, 1, 1.0); // two requests, one capacity-second each
//! queue.arrive(0.0, 2, 1.0);
//! let (completed, dropped) = queue.drain(10.0);
//! assert!(dropped.is_empty());
//! assert_eq!(completed.len(), 2);
//! // Processor sharing: each request got half the core, so both take 2 s.
//! assert!(completed
//!     .iter()
//!     .all(|c| (c.response_time() - 2.0).abs() < 1e-9));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apps;
pub mod latency;
pub mod loadbalancer;
pub mod microservice;
pub mod multitier;
pub mod queueing;
pub mod workload;

pub use apps::{ApplicationProfile, SpecJbbMemoryExperiment};
pub use latency::{LatencyStats, RequestOutcome};
pub use loadbalancer::{LbPolicy, SmoothWrr, WebCluster, WebClusterConfig};
pub use microservice::{Microservice, ServiceClass, SocialNetworkApp};
pub use multitier::{MultiTierApp, MultiTierConfig};
pub use queueing::{Completion, PsQueue};
pub use workload::{DemandDistribution, Request, RequestGenerator, WorkloadConfig};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::apps::{ApplicationProfile, SpecJbbMemoryExperiment};
    pub use crate::latency::{LatencyStats, RequestOutcome};
    pub use crate::loadbalancer::{LbPolicy, SmoothWrr, WebCluster, WebClusterConfig};
    pub use crate::microservice::{Microservice, ServiceClass, SocialNetworkApp};
    pub use crate::multitier::{MultiTierApp, MultiTierConfig};
    pub use crate::queueing::{Completion, PsQueue};
    pub use crate::workload::{DemandDistribution, Request, RequestGenerator, WorkloadConfig};
}
