//! # deflate-cluster
//!
//! Cluster manager, per-server deflation controllers and the trace-driven
//! discrete-event cluster simulator of §6–§7.4.
//!
//! * [`spec`] — converting trace VMs into cluster workload items, cluster
//!   sizing and overcommitment helpers.
//! * [`manager`] — the centralized cluster manager: deflation-aware
//!   placement, the three-step admission protocol, the preemption and
//!   migration-only baselines, and the transient-capacity reclamation
//!   handler (deflate → migrate → evict).
//! * [`sim`] — the trace-driven simulation loop, built on the typed event
//!   engine of `deflate-transient` (arrivals, departures, capacity
//!   reclaim/restore, utilisation ticks).
//! * [`metrics`] — per-VM records and the cluster-level metrics of §7.4:
//!   reclamation-failure probability (Figure 20), throughput loss
//!   (Figure 21) and revenue (Figure 22), plus migration and
//!   transient-capacity accounting.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod manager;
pub mod metrics;
pub mod sim;
pub mod spec;

pub use manager::{
    AdmissionCounters, CapacityChangeOutcome, ClusterConfig, ClusterManager, MigrationRecord,
    PlacementKind, PlacementResult, ReclamationMode, TransientCounters,
};
pub use metrics::{MigrationEvent, SimResult, VmOutcome, VmRecord};
pub use sim::ClusterSimulation;
pub use spec::{MinAllocationRule, WorkloadVm};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::manager::{
        AdmissionCounters, CapacityChangeOutcome, ClusterConfig, ClusterManager, MigrationRecord,
        PlacementKind, PlacementResult, ReclamationMode, TransientCounters,
    };
    pub use crate::metrics::{MigrationEvent, SimResult, VmOutcome, VmRecord};
    pub use crate::sim::ClusterSimulation;
    pub use crate::spec::{
        min_cluster_size, overcommitment_of, paper_server_capacity, servers_for_overcommitment,
        servers_for_transient_overcommitment, workload_from_azure, MinAllocationRule, WorkloadVm,
    };
}
