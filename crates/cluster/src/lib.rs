//! # deflate-cluster
//!
//! Cluster manager, per-server deflation controllers and the trace-driven
//! discrete-event cluster simulator of §6–§7.4.
//!
//! * [`spec`] — converting trace VMs into cluster workload items, cluster
//!   sizing and overcommitment helpers.
//! * [`manager`] — the centralized cluster manager: deflation-aware
//!   placement, the three-step admission protocol, the preemption and
//!   migration-only baselines, and the transient-capacity reclamation
//!   handler (deflate → deflate-then-migrate → migrate → evict).
//! * [`placement`] — the incremental placement index: cached
//!   [`ServerView`](deflate_core::placement::ServerView)s with dirty
//!   tracking, so each ranking pass re-derives only the servers whose
//!   state changed since the last one, and the sequential-or-parallel
//!   ranking pass itself (the
//!   [`PlacementEngine`](deflate_core::placement::PlacementEngine) knob).
//! * [`scheduler`] — the global transfer scheduler: grants
//!   migration-bandwidth slots to queued transfers in policy order (FIFO /
//!   smallest-first / deadline-aware EDF with admission control).
//! * [`sim`] — the trace-driven simulation loop, built on the typed event
//!   engine of `deflate-transient` (arrivals, departures, capacity
//!   reclaim/restore, utilisation ticks).
//! * [`metrics`] — per-VM records and the cluster-level metrics of §7.4:
//!   reclamation-failure probability (Figure 20), throughput loss
//!   (Figure 21) and revenue (Figure 22), plus migration and
//!   transient-capacity accounting.
//!
//! # The reclaim decision ladder
//!
//! When the provider reclaims part of a server's capacity the manager
//! climbs a ladder, stopping at the first rung that restores the
//! capacity invariant:
//!
//! 1. **deflate** residents in place via the configured policy;
//! 2. **deflate-then-migrate** (optional, via
//!    [`TransferPolicy`](deflate_core::policy::TransferPolicy)): each
//!    migration candidate surrenders its page cache before the copy is
//!    estimated, shrinking the transfer under the deadline;
//! 3. **migrate** residents away — *costed*: each transfer takes
//!    page-copy time under the crate's
//!    [`MigrationCostModel`](deflate_hypervisor::migration::MigrationCostModel),
//!    queues behind per-server bandwidth budgets in the order decided by
//!    the [`TransferScheduler`] (FIFO /
//!    smallest-first / deadline-aware EDF with admission control), and is
//!    aborted (the VM evicted) if the reclamation deadline expires
//!    mid-transfer;
//! 4. **evict** whatever remains, counted as reclamation failures.
//!
//! The baselines cut the ladder short: preemption jumps straight to rung
//! 4, migration-only skips rungs 1–2.
//!
//! # Example
//!
//! A trace-driven simulation on transient servers with a capacity
//! schedule and costed live migration:
//!
//! ```
//! use deflate_cluster::prelude::*;
//! use deflate_core::policy::ProportionalDeflation;
//! use deflate_traces::azure::{AzureTraceConfig, AzureTraceGenerator};
//! use deflate_transient::signal::{CapacityProfile, CapacitySchedule, TransientConfig};
//! use std::sync::Arc;
//!
//! // A small deterministic Azure-style workload…
//! let traces = AzureTraceGenerator::generate(&AzureTraceConfig {
//!     num_vms: 40,
//!     duration_hours: 4.0,
//!     seed: 7,
//!     ..Default::default()
//! });
//! let workload = workload_from_azure(&traces, MinAllocationRule::None);
//! let servers = min_cluster_size(&workload, paper_server_capacity());
//!
//! // …on transient servers that periodically lose half their capacity…
//! let schedule = CapacitySchedule::generate(&TransientConfig {
//!     num_servers: servers,
//!     transient_fraction: 1.0,
//!     duration_secs: 4.0 * 3600.0,
//!     profile: CapacityProfile::square_wave_default(),
//!     seed: 7,
//! });
//!
//! // …absorbed by deflation, with costed live migration as the fallback.
//! let result = ClusterSimulation::new(
//!     ClusterConfig::paper_default(servers),
//!     ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default())),
//! )
//! .with_capacity_schedule(schedule)
//! .with_migration_cost(MigrationCostModel::lan_default())
//! .with_migrate_back(true)
//! .run(&workload);
//!
//! assert_eq!(result.records.len(), workload.len());
//! assert!(result.failure_probability() <= 1.0);
//! // Any completed migration was charged page-transfer time.
//! assert!(result.migrations.iter().all(|m| m.duration_secs > 0.0));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod audit;
pub mod bisect;
pub mod manager;
pub mod metrics;
pub mod placement;
pub mod scheduler;
pub mod sim;
pub mod spec;

pub use audit::{AuditViolation, Auditor};
pub use bisect::{bisect_divergence, first_divergent_field, DivergenceReport, SnapshotDiff};
pub use manager::{
    AdmissionCounters, CapacityChangeOutcome, ClusterConfig, ClusterManager, MigrationRecord,
    PendingMigration, PlacementKind, PlacementResult, ReclamationMode, TransientCounters,
};
pub use metrics::{MigrationEvent, SimResult, VmOutcome, VmRecord};
pub use placement::PlacementIndex;
pub use scheduler::{SchedulerStats, TransferScheduler};
pub use sim::ClusterSimulation;
pub use spec::{MinAllocationRule, WorkloadVm};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::audit::{AuditViolation, Auditor};
    pub use crate::bisect::{
        bisect_divergence, first_divergent_field, DivergenceReport, SnapshotDiff,
    };
    pub use crate::manager::{
        AdmissionCounters, CapacityChangeOutcome, ClusterConfig, ClusterManager, MigrationRecord,
        PendingMigration, PlacementKind, PlacementResult, ReclamationMode, TransientCounters,
    };
    pub use crate::metrics::{MigrationEvent, SimResult, VmOutcome, VmRecord};
    pub use crate::scheduler::{SchedulerStats, TransferScheduler};
    pub use crate::sim::ClusterSimulation;
    pub use crate::spec::{
        min_cluster_size, overcommitment_of, paper_server_capacity, servers_for_overcommitment,
        servers_for_transient_overcommitment, workload_from_azure, MinAllocationRule, WorkloadVm,
    };
    pub use deflate_core::audit::AuditSpec;
    pub use deflate_core::policy::{TransferOrdering, TransferPolicy};
    pub use deflate_hypervisor::migration::MigrationCostModel;
}
