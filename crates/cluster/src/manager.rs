//! The centralized cluster manager (§6).
//!
//! The cluster manager owns one [`LocalController`] per server, implements
//! the deflation-aware placement of §5.2 (fitness-based, optionally
//! partitioned by priority) and the three-step admission protocol of §6:
//!
//! 1. the manager picks the "best" server for the incoming VM based on the
//!    VM's size and all servers' utilisation;
//! 2. that server computes the deflation required to accommodate the VM and
//!    rejects it if any resource constraint would be violated;
//! 3. the deflation is performed and the VM is launched.
//!
//! If the chosen server rejects the VM the manager retries on the remaining
//! feasible servers; only when every server has rejected it is the VM
//! reported as a reclamation failure (the event counted by Figure 20).
//!
//! The manager can also run in **preemption mode**, the baseline current
//! clouds implement: instead of deflating resident low-priority VMs it kills
//! them (lowest priority first) until the new VM fits.
//!
//! # Migration cost
//!
//! Migrations are priced with a [`MigrationCostModel`]: moving a VM takes
//! `floor + hot footprint × overhead / bandwidth` seconds, each server can
//! drive only as many concurrent transfers as its migration-bandwidth
//! budget allows (excess transfers queue), and a transfer that cannot
//! finish before the source's reclamation deadline is **aborted** and the
//! VM evicted — the transient-server race of §2. While a transfer is in
//! flight the VM is accounted on *both* ends: its domain keeps running on
//! the source (which may transiently exceed its reclaimed capacity) and
//! its reservation occupies the destination. The default model is
//! [`MigrationCostModel::instant`], which reproduces the historical
//! free-migration behaviour; simulations opt into costed migration with
//! [`ClusterManager::with_migration_cost`].
//!
//! # Transfer scheduling
//!
//! *Which* queued transfer gets the next bandwidth slot is decided by the
//! global [`TransferScheduler`] (see [`crate::scheduler`]), configured via
//! [`ClusterManager::with_transfer_policy`]. The default FIFO policy books
//! slots in request order, bit-identical to the greedy booking that
//! predated the scheduler; `SmallestFirst` and deadline-aware `Edf`
//! reorder each capacity event's batch, and EDF additionally *rejects*
//! transfers that provably cannot finish before their source's reclamation
//! deadline (counted in [`TransientCounters::migration_rejections`] — the
//! VM falls through to the eviction rung instead of wasting link time on a
//! doomed copy). With `deflate_then_migrate` set, the reclaim ladder
//! deliberately deflates migration candidates first — the guest surrenders
//! its page cache, shrinking the hot footprint and the copy time under the
//! deadline.

use crate::audit::AuditFinding;
use crate::placement::PlacementIndex;
use crate::scheduler::{SchedulerStats, TransferDecision, TransferRequest, TransferScheduler};
use deflate_autoscale::ElasticCluster;
use deflate_core::checkpoint::{ByteReader, ByteWriter, CheckpointError, CheckpointResult};
use deflate_core::error::{DeflateError, Result};
use deflate_core::placement::{
    BestFit, CosineFitness, FirstFit, PartitionScheme, PartitionedPlacement, PlacementDecision,
    PlacementEngine, PlacementPolicy, ServerView, WorstFit,
};
use deflate_core::policy::{DeflationPolicy, RestorePolicy, TransferPolicy};
use deflate_core::resources::{ResourceKind, ResourceVector};
use deflate_core::shard::ShardConfig;
use deflate_core::vm::{ServerId, VmId, VmSpec};
use deflate_hypervisor::controller::{AdmissionOutcome, LocalController};
use deflate_hypervisor::domain::{CacheRegrowthModel, DeflationMechanism, Domain};
use deflate_hypervisor::migration::MigrationCostModel;
use deflate_hypervisor::server::SimServer;
use deflate_telemetry::{MemoryLedger, Phase, TelemetrySink};
use deflate_transient::pool::{run_tasks, Task, WorkerPool};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Which placement heuristic the manager uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementKind {
    /// Cosine-similarity fitness (§5.2), the paper's default.
    CosineFitness,
    /// First-fit bin packing.
    FirstFit,
    /// Best-fit bin packing.
    BestFit,
    /// Worst-fit (most available) packing.
    WorstFit,
}

impl PlacementKind {
    fn build(&self, scheme: PartitionScheme) -> Box<dyn PlacementPolicy> {
        match self {
            PlacementKind::CosineFitness => Box::new(PartitionedPlacement::new(
                scheme,
                CosineFitness::load_balancing(),
            )),
            PlacementKind::FirstFit => Box::new(PartitionedPlacement::new(scheme, FirstFit)),
            PlacementKind::BestFit => Box::new(PartitionedPlacement::new(scheme, BestFit)),
            PlacementKind::WorstFit => Box::new(PartitionedPlacement::new(scheme, WorstFit)),
        }
    }

    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementKind::CosineFitness => "cosine-fitness",
            PlacementKind::FirstFit => "first-fit",
            PlacementKind::BestFit => "best-fit",
            PlacementKind::WorstFit => "worst-fit",
        }
    }
}

/// How resources are reclaimed from low-priority VMs under pressure.
#[derive(Clone)]
pub enum ReclamationMode {
    /// Deflate resident VMs using the given server-level policy.
    Deflation(Arc<dyn DeflationPolicy>),
    /// Preempt (kill) resident low-priority VMs — the transient-server
    /// baseline the paper compares against in Figure 20.
    Preemption,
    /// Never deflate or preempt for arrivals; absorb provider-side capacity
    /// reclamation by live-migrating resident VMs at full size. The
    /// migration-only baseline of the transient-capacity experiments.
    MigrationOnly,
}

impl ReclamationMode {
    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            ReclamationMode::Deflation(p) => p.name(),
            ReclamationMode::Preemption => "preemption",
            ReclamationMode::MigrationOnly => "migration-only",
        }
    }
}

impl std::fmt::Debug for ReclamationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReclamationMode({})", self.name())
    }
}

/// Static cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of physical servers.
    pub num_servers: usize,
    /// Per-server hardware capacity.
    pub server_capacity: ResourceVector,
    /// Placement heuristic.
    pub placement: PlacementKind,
    /// Cluster partitioning scheme (§5.2.1).
    pub partitions: PartitionScheme,
    /// Deflation mechanism used by the per-server controllers.
    pub mechanism: DeflationMechanism,
}

impl ClusterConfig {
    /// The paper's simulated cluster: `num_servers` servers of 48 CPUs /
    /// 128 GB, cosine-fitness placement, no partitions, transparent
    /// mechanisms (mechanism choice is irrelevant at cluster granularity).
    pub fn paper_default(num_servers: usize) -> Self {
        ClusterConfig {
            num_servers,
            server_capacity: crate::spec::paper_server_capacity(),
            placement: PlacementKind::CosineFitness,
            partitions: PartitionScheme::None,
            mechanism: DeflationMechanism::Transparent,
        }
    }
}

/// Result of asking the cluster to place one VM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlacementResult {
    /// Placed without disturbing anyone.
    Placed {
        /// Chosen server.
        server: ServerId,
    },
    /// Placed after deflating resident VMs.
    PlacedWithDeflation {
        /// Chosen server.
        server: ServerId,
        /// Resources reclaimed from residents.
        reclaimed: ResourceVector,
    },
    /// Placed after preempting resident VMs (preemption mode only).
    PlacedWithPreemption {
        /// Chosen server.
        server: ServerId,
        /// VMs that were killed to make room.
        preempted: Vec<VmId>,
    },
    /// No server could make room: a reclamation failure (Figure 20's event).
    Rejected,
}

impl PlacementResult {
    /// True when the VM ended up running somewhere.
    pub fn is_placed(&self) -> bool {
        !matches!(self, PlacementResult::Rejected)
    }
}

/// Aggregate admission counters maintained by the manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionCounters {
    /// VMs admitted without any reclamation.
    pub admitted_free: usize,
    /// VMs admitted after deflating residents.
    pub admitted_with_deflation: usize,
    /// VMs admitted after preempting residents.
    pub admitted_with_preemption: usize,
    /// VMs rejected because no server could reclaim enough resources.
    pub rejected: usize,
    /// Resident VMs killed by the preemption baseline.
    pub preempted_vms: usize,
}

impl AdmissionCounters {
    /// Total placement attempts.
    pub fn attempts(&self) -> usize {
        self.admitted_free
            + self.admitted_with_deflation
            + self.admitted_with_preemption
            + self.rejected
    }
}

/// Counters for provider-side transient-capacity dynamics (§7.4's
/// reclamation scenario): how often capacity changed hands and what the
/// cluster had to do about it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransientCounters {
    /// Capacity-reclamation events handled.
    pub reclaim_events: usize,
    /// Capacity-restitution events handled.
    pub restore_events: usize,
    /// Reclamations fully absorbed by deflating residents in place.
    pub absorbed_by_deflation: usize,
    /// VMs migrated off a shrinking server (the fallback when deflation
    /// alone cannot absorb a reclamation).
    pub migrations: usize,
    /// VMs migrated back to their origin server after a restitution.
    pub migrations_back: usize,
    /// Migrations aborted mid-transfer — the page copy could not finish
    /// before the source's reclamation deadline (or the transfer was
    /// cancelled by a further reclamation) and the VM was evicted.
    pub migration_aborts: usize,
    /// Migrations refused up front by the transfer scheduler's EDF
    /// admission control: the copy provably could not beat its deadline,
    /// so no bandwidth was spent and the VM fell straight through to the
    /// eviction rung instead of aborting mid-transfer.
    pub migration_rejections: usize,
    /// Resident VMs destroyed because neither deflation nor migration could
    /// absorb a reclamation — the reclamation-failure event of Figure 20.
    pub reclamation_victims: usize,
}

/// One VM moved between servers by the reclamation handler. Reported when
/// the transfer *completes* (instantly for the cost-free model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationRecord {
    /// The migrated VM.
    pub vm: VmId,
    /// Server it left.
    pub from: ServerId,
    /// Server it now runs on.
    pub to: ServerId,
    /// Wall-clock page-transfer time charged by the cost model, seconds
    /// (0 for the cost-free instant model).
    pub duration_secs: f64,
    /// Bytes moved over the wire, MiB (hot footprint × dirty-page
    /// overhead).
    pub volume_mb: f64,
    /// True when this was a migrate-back to the VM's origin server after a
    /// capacity restitution.
    pub back: bool,
}

/// A live migration that has *started* but not yet completed: the cluster
/// manager hands these to the simulator, which schedules a
/// `MigrationComplete` event at [`event_secs`](Self::event_secs) and feeds
/// it back through [`ClusterManager::complete_migration`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingMigration {
    /// Identifier of the in-flight transfer (unique within a run).
    pub id: u64,
    /// The migrating VM.
    pub vm: VmId,
    /// Source server.
    pub from: ServerId,
    /// Destination server.
    pub to: ServerId,
    /// When the page copy actually starts (queued transfers start after
    /// earlier ones release the bandwidth budget).
    pub start_secs: f64,
    /// When the `MigrationComplete` event must fire: the transfer's finish
    /// time, or the source's reclamation deadline if that expires first
    /// (the manager then aborts the migration and evicts the VM).
    pub event_secs: f64,
}

/// What a capacity reclamation / restitution did to the cluster.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CapacityChangeOutcome {
    /// Migrations that completed during this change (instant-model moves).
    pub migrated: Vec<MigrationRecord>,
    /// Transfers that started and are now in flight; the caller must
    /// schedule a `MigrationComplete` event for each.
    pub started: Vec<PendingMigration>,
    /// VMs destroyed because nothing else worked (reclamation failures).
    pub victims: Vec<VmId>,
    /// Servers whose residents' allocations may have changed (for
    /// allocation-history recording by the simulator).
    pub touched: Vec<ServerId>,
}

impl CapacityChangeOutcome {
    fn touch(&mut self, server: ServerId) {
        if !self.touched.contains(&server) {
            self.touched.push(server);
        }
    }
}

/// One transfer currently on the wire.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    vm: VmId,
    source: usize,
    dest: usize,
    start_secs: f64,
    /// When the page copy would finish.
    finish_secs: f64,
    /// Absolute reclamation deadline; the transfer aborts (VM evicted) when
    /// `finish_secs` exceeds it. Infinite for migrate-backs.
    deadline_secs: f64,
    volume_mb: f64,
    back: bool,
}

impl InFlight {
    fn aborts(&self) -> bool {
        self.finish_secs > self.deadline_secs
    }

    /// When the `MigrationComplete` event fires: completion, or the
    /// deadline if that comes first.
    fn event_secs(&self) -> f64 {
        self.finish_secs.min(self.deadline_secs)
    }
}

/// A transfer the reclamation/restitution handler has *selected* (the
/// destination reservation exists, the VM is pledged to leave its source)
/// but that has not been granted a bandwidth slot yet. Staged transfers
/// accumulate over one capacity event and are handed to the
/// [`TransferScheduler`] as a single decision batch, so the scheduling
/// policy can reorder them — or, under EDF admission control, refuse them
/// — before any slot is booked.
#[derive(Debug, Clone, Copy)]
struct StagedTransfer {
    vm: VmId,
    source: usize,
    dest: usize,
    duration_secs: f64,
    volume_mb: f64,
    /// Absolute abort deadline; infinite for migrate-backs.
    deadline_secs: f64,
    back: bool,
    /// Whether staging inserted the migration-origin entry, so a rejection
    /// can undo exactly its own bookkeeping.
    origin_inserted: bool,
}

/// The centralized cluster manager.
pub struct ClusterManager {
    controllers: Vec<LocalController>,
    placement: Box<dyn PlacementPolicy>,
    partitions: PartitionScheme,
    mechanism: DeflationMechanism,
    base_capacity: ResourceVector,
    mode: ReclamationMode,
    cost_model: MigrationCostModel,
    vm_location: HashMap<VmId, usize>,
    /// First server each migrated VM ran on, for migrate-back after a
    /// capacity restitution.
    migration_origin: HashMap<VmId, usize>,
    /// Transfers currently on the wire, by migration id.
    in_flight: HashMap<u64, InFlight>,
    /// Reverse index: which migration a VM is currently part of.
    in_flight_by_vm: HashMap<VmId, u64>,
    next_migration_id: u64,
    /// Global bandwidth-slot scheduler (owns the per-server ledgers and the
    /// ordering policy).
    scheduler: TransferScheduler,
    /// Transfers selected but not yet booked, within the current capacity
    /// event only (always empty between manager calls).
    staged: Vec<StagedTransfer>,
    /// How residents are reinflated after capacity restitutions
    /// (hysteresis / spread-out; the greedy default is bit-identical to
    /// the pre-knob behaviour).
    restore_policy: RestorePolicy,
    /// Per-server time of the last capacity reclamation, for the restore
    /// policy's hysteresis window (`-∞` before the first reclaim).
    last_reclaim_secs: Vec<f64>,
    /// Time-based page-cache regrowth model applied to a server's guests
    /// ahead of each capacity event (disabled by default — caches then
    /// only refill on usage reports, the historical behaviour).
    cache_regrowth: CacheRegrowthModel,
    counters: AdmissionCounters,
    transient: TransientCounters,
    /// Observability sink (disabled by default): placement-ranking and
    /// transfer-booking spans, plus the end-of-run counter publish.
    /// Observation only — never consulted by any decision path.
    telemetry: TelemetrySink,
    /// Incremental placement index: cached per-server views, re-derived
    /// only for servers marked dirty since the last ranking pass. Every
    /// view-affecting mutation must go through
    /// [`mark_server_dirty`](Self::mark_server_dirty).
    index: PlacementIndex,
    /// How ranking passes are evaluated (sequential default, or the
    /// parallel fan-out — a performance knob, never a semantic one).
    engine: PlacementEngine,
    /// Shared persistent worker pool for the ranking fan-out and the
    /// utilisation sections; `None` falls back to per-section workers.
    pool: Option<Arc<WorkerPool>>,
}

impl ClusterManager {
    /// Build a cluster with the given configuration and reclamation mode.
    pub fn new(config: &ClusterConfig, mode: ReclamationMode) -> Self {
        let partition_assignment = config.partitions.assign_servers(config.num_servers);
        let policy: Arc<dyn DeflationPolicy> = match &mode {
            ReclamationMode::Deflation(p) => Arc::clone(p),
            // The preemption and migration-only baselines never deflate for
            // arrivals, but the local controllers need a policy for
            // reinflation after departures.
            ReclamationMode::Preemption | ReclamationMode::MigrationOnly => {
                Arc::new(deflate_core::policy::ProportionalDeflation::default())
            }
        };
        let controllers: Vec<LocalController> = (0..config.num_servers)
            .map(|i| {
                let server = SimServer::new(ServerId(i as u32), config.server_capacity)
                    .with_partition(partition_assignment[i]);
                LocalController::new(server, Arc::clone(&policy), config.mechanism)
            })
            .collect();
        let index = PlacementIndex::new(controllers.iter().map(|c| c.server().view()).collect());
        ClusterManager {
            controllers,
            placement: config.placement.build(config.partitions),
            partitions: config.partitions,
            mechanism: config.mechanism,
            base_capacity: config.server_capacity,
            mode,
            cost_model: MigrationCostModel::instant(),
            vm_location: HashMap::new(),
            migration_origin: HashMap::new(),
            in_flight: HashMap::new(),
            in_flight_by_vm: HashMap::new(),
            next_migration_id: 0,
            scheduler: TransferScheduler::new(config.num_servers, TransferPolicy::default()),
            staged: Vec::new(),
            restore_policy: RestorePolicy::default(),
            last_reclaim_secs: vec![f64::NEG_INFINITY; config.num_servers],
            cache_regrowth: CacheRegrowthModel::default(),
            counters: AdmissionCounters::default(),
            transient: TransientCounters::default(),
            telemetry: TelemetrySink::disabled(),
            index,
            engine: PlacementEngine::default(),
            pool: None,
        }
    }

    /// Builder-style telemetry sink. The disabled default makes every
    /// span and counter a one-branch no-op; an enabled sink records
    /// placement-ranking / transfer-booking spans and publishes the
    /// manager's counters via [`publish_metrics`](Self::publish_metrics)
    /// without ever influencing a decision.
    pub fn with_telemetry(mut self, telemetry: TelemetrySink) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Builder-style placement-engine override. The sequential default is
    /// bit-identical to the pre-index full rescan (pinned by
    /// `tests/placement_golden.rs`); [`PlacementEngine::Parallel`] fans
    /// the scoring pass out to worker spans with a deterministic
    /// span-order reduce, which `tests/shard_parity.rs` pins bit-identical
    /// to the sequential pass.
    pub fn with_placement_engine(mut self, engine: PlacementEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The placement engine in effect.
    pub fn placement_engine(&self) -> PlacementEngine {
        self.engine
    }

    /// Builder-style worker pool attachment. Shared by the
    /// placement-ranking fan-out and the utilisation sections; without
    /// one, parallel sections fall back to per-section throwaway workers.
    pub fn with_worker_pool(mut self, pool: Option<Arc<WorkerPool>>) -> Self {
        self.pool = pool;
        self
    }

    /// Queue server `idx`'s cached placement view for re-derivation.
    ///
    /// Call sites are exactly the **view-affecting** mutations: capacity
    /// changes (`set_capacity`), domain admission/teardown
    /// (`create_domain*` / `destroy_domain`), deflation state changes
    /// (`deflate_to` / `apply_targets` / `deflate_into_capacity` /
    /// `reinflate*`). Page-cache-only moves (`advance_cache_regrowth`,
    /// `deflate_for_migration`), usage observations
    /// (`observe_cpu_utilization`), guest-state copies and the parked
    /// flag do not change `ServerView` and deliberately skip the mark —
    /// `tests/placement_equivalence.rs` pins the index against a full
    /// rescan after every mutation kind.
    fn mark_server_dirty(&mut self, idx: usize) {
        self.index.mark_dirty(idx);
    }

    /// Rank all servers for `vm` through the incremental index: re-derive
    /// the views of servers dirtied since the last pass, then evaluate the
    /// placement policy over the cached views (sequentially or fanned out,
    /// per the [`PlacementEngine`]). `excluded` servers — already tried
    /// and rejected within the current placement loop, or a migration's
    /// own source — are filtered from the candidates.
    fn rank_servers(&mut self, vm: &VmSpec, excluded: &[ServerId]) -> Option<PlacementDecision> {
        let controllers = &self.controllers;
        self.index
            .refresh(&self.telemetry, |i| controllers[i].server().view());
        self.index.rank(
            self.placement.as_ref(),
            vm,
            excluded,
            self.engine,
            self.pool.as_deref(),
            &self.telemetry,
        )
    }

    /// Builder-style restore-policy override. The default is
    /// [`RestorePolicy::greedy`] — every restitution immediately
    /// reinflates residents into the whole returned room, bit-identical
    /// to the behaviour before the knob existed. Hysteresis skips
    /// reinflation while the server's last reclamation is recent;
    /// spread-out reinflation hands back only a fraction of the room per
    /// restitution.
    pub fn with_restore_policy(mut self, policy: RestorePolicy) -> Self {
        self.restore_policy = policy;
        self
    }

    /// The restore policy in effect.
    pub fn restore_policy(&self) -> RestorePolicy {
        self.restore_policy
    }

    /// Builder-style cache-regrowth override. The default is
    /// [`CacheRegrowthModel::disabled`] — squeezed page caches refill
    /// only on usage reports, bit-identical to the behaviour before the
    /// model existed. With a positive rate, a server's guests regrow
    /// their caches over simulated time ahead of each capacity event, so
    /// repeated deflate-then-migrate squeezes are no longer free.
    pub fn with_cache_regrowth(mut self, model: CacheRegrowthModel) -> Self {
        self.cache_regrowth = model;
        self
    }

    /// The cache-regrowth model in effect.
    pub fn cache_regrowth(&self) -> CacheRegrowthModel {
        self.cache_regrowth
    }

    /// Builder-style migration cost model override. The default is
    /// [`MigrationCostModel::instant`] (free, immediate migrations — the
    /// historical behaviour); anything else makes migrations take
    /// page-transfer time, respect per-server bandwidth budgets and race
    /// the reclamation deadline.
    pub fn with_migration_cost(mut self, model: MigrationCostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// The migration cost model in effect.
    pub fn migration_cost(&self) -> MigrationCostModel {
        self.cost_model
    }

    /// Builder-style transfer-scheduling policy override. The default is
    /// [`TransferPolicy::fifo`] — greedy request-order booking, bit-identical
    /// to the behaviour before the scheduler existed. `SmallestFirst` and
    /// `Edf` reorder each capacity event's transfer batch; EDF additionally
    /// refuses transfers that provably cannot beat their deadline. Must be
    /// applied before the first capacity event (it resets the scheduler's
    /// bandwidth ledgers).
    pub fn with_transfer_policy(mut self, policy: TransferPolicy) -> Self {
        self.scheduler = TransferScheduler::new(self.controllers.len(), policy);
        self
    }

    /// The transfer-scheduling policy in effect.
    pub fn transfer_policy(&self) -> TransferPolicy {
        self.scheduler.policy()
    }

    /// Scheduler accounting: slots booked, EDF rejections, queueing delay.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.scheduler.stats()
    }

    /// Number of transfers currently on the wire.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// True when the VM is part of an in-flight migration (accounted on
    /// both its source and destination server until the transfer ends).
    pub fn is_in_flight(&self, vm: VmId) -> bool {
        self.in_flight_by_vm.contains_key(&vm)
    }

    /// The destination server of the VM's in-flight migration, if any —
    /// the second server whose residents a mid-transfer departure touches.
    pub fn in_flight_destination(&self, vm: VmId) -> Option<ServerId> {
        let mid = self.in_flight_by_vm.get(&vm)?;
        let flight = self.in_flight.get(mid)?;
        Some(self.controllers[flight.dest].server().id)
    }

    /// Number of servers in the cluster.
    pub fn num_servers(&self) -> usize {
        self.controllers.len()
    }

    /// Admission counters so far.
    pub fn counters(&self) -> AdmissionCounters {
        self.counters
    }

    /// Iterate over the underlying servers.
    pub fn servers(&self) -> impl Iterator<Item = &SimServer> {
        self.controllers.iter().map(|c| c.server())
    }

    /// Current placement views of all servers, derived from scratch.
    /// (The placement paths themselves rank over the incremental index;
    /// this full rescan remains the reference the equivalence tests —
    /// and external callers wanting a fresh snapshot — compare against.)
    pub fn views(&self) -> Vec<ServerView> {
        self.controllers.iter().map(|c| c.server().view()).collect()
    }

    /// Diagnostic: the server the *incremental index* would pick for `vm`
    /// right now (refreshing dirty views first), without placing anything.
    pub fn placement_preview(
        &mut self,
        vm: &VmSpec,
        excluded: &[ServerId],
    ) -> Option<PlacementDecision> {
        self.rank_servers(vm, excluded)
    }

    /// Diagnostic: the server a *from-scratch full rescan* (the pre-index
    /// code path) would pick for `vm` right now. The equivalence battery
    /// asserts this agrees with [`placement_preview`] after every
    /// mutation kind.
    ///
    /// [`placement_preview`]: Self::placement_preview
    pub fn placement_full_rescan(
        &self,
        vm: &VmSpec,
        excluded: &[ServerId],
    ) -> Option<PlacementDecision> {
        let views: Vec<ServerView> = self
            .views()
            .into_iter()
            .filter(|v| !excluded.contains(&v.id))
            .collect();
        self.placement.place(vm, &views)
    }

    /// The server index currently hosting a VM.
    pub fn locate(&self, vm: VmId) -> Option<ServerId> {
        self.vm_location
            .get(&vm)
            .map(|&i| self.controllers[i].server().id)
    }

    /// The VM's current CPU allocation as a fraction of its maximum (1.0 when
    /// undeflated); `None` if the VM is not running.
    pub fn cpu_allocation_fraction(&self, vm: VmId) -> Option<f64> {
        let &idx = self.vm_location.get(&vm)?;
        let domain = self.controllers[idx].server().domain(vm)?;
        let max = domain.spec.max_allocation[ResourceKind::Cpu];
        if max <= 0.0 {
            return Some(1.0);
        }
        Some(domain.effective_allocation()[ResourceKind::Cpu] / max)
    }

    /// All VMs currently running, with their CPU allocation fractions.
    /// Each VM is reported once, from the server it is *located* on — the
    /// destination reservation of an in-flight migration is excluded.
    pub fn running_allocation_fractions(&self) -> Vec<(VmId, f64)> {
        let mut out = Vec::new();
        for (idx, controller) in self.controllers.iter().enumerate() {
            for domain in controller.server().domains() {
                if self.vm_location.get(&domain.spec.id) != Some(&idx) {
                    continue;
                }
                let max = domain.spec.max_allocation[ResourceKind::Cpu];
                let frac = if max <= 0.0 {
                    1.0
                } else {
                    domain.effective_allocation()[ResourceKind::Cpu] / max
                };
                out.push((domain.spec.id, frac));
            }
        }
        out
    }

    /// CPU allocation fractions of the VMs resident on one server. Used by
    /// the simulator to record allocation changes touching only the server
    /// affected by an event, which keeps large trace replays cheap.
    /// In-flight destination reservations are excluded — a migrating VM is
    /// reported from its source server until the transfer completes.
    pub fn allocation_fractions_on(&self, server: ServerId) -> Vec<(VmId, f64)> {
        let idx = self.server_index(server);
        if idx >= self.controllers.len() {
            return Vec::new();
        }
        self.controllers[idx]
            .server()
            .domains()
            .filter(|domain| self.vm_location.get(&domain.spec.id) == Some(&idx))
            .map(|domain| {
                let max = domain.spec.max_allocation[ResourceKind::Cpu];
                let frac = if max <= 0.0 {
                    1.0
                } else {
                    domain.effective_allocation()[ResourceKind::Cpu] / max
                };
                (domain.spec.id, frac)
            })
            .collect()
    }

    /// Cluster-wide overcommitment: committed allocations over hardware
    /// capacity, as a fraction above 1.0 (0.0 = not overcommitted), measured
    /// on the CPU dimension.
    pub fn current_overcommitment(&self) -> f64 {
        let committed: f64 = self
            .controllers
            .iter()
            .map(|c| c.server().committed()[ResourceKind::Cpu])
            .sum();
        let capacity: f64 = self
            .controllers
            .iter()
            .map(|c| c.server().capacity[ResourceKind::Cpu])
            .sum();
        if capacity <= 0.0 {
            0.0
        } else {
            (committed / capacity - 1.0).max(0.0)
        }
    }

    /// Admission counters for transient-capacity events so far.
    pub fn transient_counters(&self) -> TransientCounters {
        self.transient
    }

    /// The available-capacity fraction a server currently runs at (1.0 when
    /// the provider has not reclaimed anything), measured against the
    /// configured hardware capacity on the CPU dimension.
    pub fn capacity_fraction(&self, server: ServerId) -> f64 {
        let idx = self.server_index(server);
        let base = self.base_capacity[deflate_core::resources::ResourceKind::Cpu];
        if idx >= self.controllers.len() || base <= 0.0 {
            return 1.0;
        }
        self.controllers[idx].server().capacity[deflate_core::resources::ResourceKind::Cpu] / base
    }

    /// Record one CPU-utilisation sample (fraction of the full allocation)
    /// for a running VM — fed by the simulator from the VM's trace. The
    /// domain's recent history drives the dirty-rate term of the migration
    /// cost model: write-heavy VMs get longer transfer estimates, which
    /// EDF admission control compares against the reclamation deadline.
    pub fn observe_vm_utilization(&mut self, vm: VmId, sample: f64) {
        if let Some(&idx) = self.vm_location.get(&vm) {
            if let Some(domain) = self.controllers[idx].server_mut().domain_mut(vm) {
                domain.observe_cpu_utilization(sample);
            }
        }
    }

    /// [`observe_vm_utilization`](Self::observe_vm_utilization) for a whole
    /// batch of samples, partitioned by shard: samples are grouped by the
    /// shard owning each VM's server, and each shard's group is applied by
    /// a worker of the persistent [`WorkerPool`] (or a per-call fallback
    /// pool) holding a disjoint `&mut` slice of the per-server
    /// controllers. Bit-identical to applying the batch sequentially —
    /// every domain is owned by exactly one shard, and a VM appears at
    /// most once per batch, so no ordering between shards is observable.
    /// Sequential configurations (`shards == 1`) submit no task at all.
    ///
    /// Utilisation observations feed only the dirty-rate history — they
    /// never change a `ServerView` — so no placement-index mark is needed.
    pub fn observe_vm_utilizations(&mut self, samples: &[(VmId, f64)], shards: ShardConfig) {
        if !shards.is_parallel() {
            for &(vm, sample) in samples {
                self.observe_vm_utilization(vm, sample);
            }
            return;
        }
        let num_servers = self.controllers.len();
        let mut buckets: Vec<Vec<(usize, VmId, f64)>> = vec![Vec::new(); shards.count()];
        for &(vm, sample) in samples {
            if let Some(&idx) = self.vm_location.get(&vm) {
                buckets[shards.shard_of(idx, num_servers)].push((idx, vm, sample));
            }
        }
        let spans = shards.spans(num_servers);
        let pool = self.pool.clone();
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(spans.len());
        let mut rest: &mut [LocalController] = &mut self.controllers;
        let mut offset = 0;
        for (span, bucket) in spans.into_iter().zip(buckets) {
            let (shard_controllers, tail) = rest.split_at_mut(span.end - offset);
            rest = tail;
            let base = offset;
            offset = span.end;
            tasks.push(Box::new(move || {
                for (idx, vm, sample) in bucket {
                    if let Some(domain) = shard_controllers[idx - base].server_mut().domain_mut(vm)
                    {
                        domain.observe_cpu_utilization(sample);
                    }
                }
            }));
        }
        run_tasks(pool.as_deref(), shards.count(), tasks);
    }

    /// Cluster-wide `(effective CPU used, CPU capacity)` totals — the
    /// quantities behind each `UtilizationTick` sample. Per-server values
    /// are evaluated shard-parallel (each worker reads a disjoint span of
    /// servers), then folded **sequentially in server order**, so the
    /// floating-point sum is bit-identical for every shard count — f64
    /// addition is not associative, and a per-shard partial-sum tree would
    /// silently break the engine's determinism contract.
    pub fn cpu_usage_snapshot(&self, shards: ShardConfig) -> (f64, f64) {
        let per_server: Vec<(f64, f64)> = if shards.is_parallel() {
            let spans = shards.spans(self.controllers.len());
            let mut partials: Vec<Option<Vec<(f64, f64)>>> = vec![None; spans.len()];
            {
                let tasks: Vec<Task<'_>> = partials
                    .iter_mut()
                    .zip(&spans)
                    .enumerate()
                    .map(|(shard, (slot, span))| {
                        let controllers = &self.controllers[span.clone()];
                        let worker_sink = self.telemetry.clone();
                        Box::new(move || {
                            let _span = worker_sink.shard_span(shard, Phase::UtilizationSampling);
                            *slot = Some(
                                controllers
                                    .iter()
                                    .map(|c| {
                                        let server = c.server();
                                        (
                                            server.effective_used()[ResourceKind::Cpu],
                                            server.capacity[ResourceKind::Cpu],
                                        )
                                    })
                                    .collect::<Vec<_>>(),
                            );
                        }) as Task<'_>
                    })
                    .collect();
                run_tasks(self.pool.as_deref(), shards.count(), tasks);
            }
            // Flatten in span order — the same server order the sequential
            // branch reads, so the fold below is bit-identical.
            partials
                .into_iter()
                .flat_map(|slot| slot.expect("snapshot task completed"))
                .collect()
        } else {
            self.controllers
                .iter()
                .map(|c| {
                    let server = c.server();
                    (
                        server.effective_used()[ResourceKind::Cpu],
                        server.capacity[ResourceKind::Cpu],
                    )
                })
                .collect()
        };
        per_server
            .into_iter()
            .fold((0.0, 0.0), |(used, cap), (u, c)| (used + u, cap + c))
    }

    /// Place a new VM, reclaiming resources if necessary.
    pub fn place_vm(&mut self, spec: VmSpec) -> PlacementResult {
        // The span guard owns its handle, so the placement paths below can
        // still borrow `self` mutably while the ranking is being timed.
        let _rank = self.telemetry.span(Phase::PlacementRank);
        let result = match self.mode.clone() {
            ReclamationMode::Deflation(_) => self.place_with_deflation(&spec),
            ReclamationMode::Preemption => self.place_with_preemption(&spec),
            ReclamationMode::MigrationOnly => self.place_without_reclamation(&spec),
        };
        match &result {
            PlacementResult::Placed { .. } => self.counters.admitted_free += 1,
            PlacementResult::PlacedWithDeflation { .. } => {
                self.counters.admitted_with_deflation += 1
            }
            PlacementResult::PlacedWithPreemption { preempted, .. } => {
                self.counters.admitted_with_preemption += 1;
                self.counters.preempted_vms += preempted.len();
            }
            PlacementResult::Rejected => self.counters.rejected += 1,
        }
        result
    }

    fn server_index(&self, id: ServerId) -> usize {
        id.0 as usize
    }

    fn place_with_deflation(&mut self, spec: &VmSpec) -> PlacementResult {
        let mut excluded: Vec<ServerId> = Vec::new();
        loop {
            let Some(decision) = self.rank_servers(spec, &excluded) else {
                return PlacementResult::Rejected;
            };
            let idx = self.server_index(decision.server);
            // Admission deflates residents and/or adds a domain; a failed
            // attempt can still have deflated, so mark unconditionally.
            self.mark_server_dirty(idx);
            match self.controllers[idx].try_admit(spec.clone()) {
                Ok(AdmissionOutcome::AdmittedWithoutDeflation) => {
                    self.vm_location.insert(spec.id, idx);
                    return PlacementResult::Placed {
                        server: decision.server,
                    };
                }
                Ok(AdmissionOutcome::AdmittedWithDeflation { reclaimed }) => {
                    self.vm_location.insert(spec.id, idx);
                    return PlacementResult::PlacedWithDeflation {
                        server: decision.server,
                        reclaimed,
                    };
                }
                Ok(AdmissionOutcome::Rejected { .. }) => {
                    excluded.push(decision.server);
                }
                Err(_) => {
                    excluded.push(decision.server);
                }
            }
            if excluded.len() >= self.controllers.len() {
                return PlacementResult::Rejected;
            }
        }
    }

    fn place_with_preemption(&mut self, spec: &VmSpec) -> PlacementResult {
        let mut excluded: Vec<ServerId> = Vec::new();
        loop {
            let Some(decision) = self.rank_servers(spec, &excluded) else {
                return PlacementResult::Rejected;
            };
            let idx = self.server_index(decision.server);
            // Victim teardown and the admission below both change the
            // server's view; mark once up front.
            self.mark_server_dirty(idx);
            // Preempt lowest-priority deflatable VMs until the new VM fits.
            let mut preempted = Vec::new();
            loop {
                let server = self.controllers[idx].server();
                if spec.max_allocation.fits_within(&server.free()) {
                    break;
                }
                let victim = server
                    .domains()
                    .filter(|d| d.spec.deflatable)
                    .min_by(|a, b| {
                        a.spec
                            .priority
                            .value()
                            .partial_cmp(&b.spec.priority.value())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|d| d.spec.id);
                let Some(victim) = victim else { break };
                let _ = self.controllers[idx].server_mut().destroy_domain(victim);
                self.vm_location.remove(&victim);
                preempted.push(victim);
            }
            let server = self.controllers[idx].server();
            if spec.max_allocation.fits_within(&server.free()) {
                let mechanism = DeflationMechanism::Transparent;
                if self.controllers[idx]
                    .server_mut()
                    .create_domain(spec.clone(), mechanism)
                    .is_ok()
                {
                    self.vm_location.insert(spec.id, idx);
                    return if preempted.is_empty() {
                        PlacementResult::Placed {
                            server: decision.server,
                        }
                    } else {
                        self.counters.preempted_vms += 0; // counted by caller
                        PlacementResult::PlacedWithPreemption {
                            server: decision.server,
                            preempted,
                        }
                    };
                }
            }
            excluded.push(decision.server);
            if excluded.len() >= self.controllers.len() {
                return PlacementResult::Rejected;
            }
        }
    }

    /// Place a VM only where its full allocation fits free capacity — no
    /// deflation, no preemption (the migration-only baseline's admission
    /// path).
    fn place_without_reclamation(&mut self, spec: &VmSpec) -> PlacementResult {
        match self.admit_on_best(spec, Vec::new(), false) {
            Some(idx) => {
                self.vm_location.insert(spec.id, idx);
                PlacementResult::Placed {
                    server: self.controllers[idx].server().id,
                }
            }
            None => PlacementResult::Rejected,
        }
    }

    /// Handle a provider-side **capacity reclamation** at one server: shrink
    /// it to `available_fraction` of its hardware capacity and absorb the
    /// shock in mode-dependent order. `now_secs` is the simulation time of
    /// the reclamation; migrations started by the handler are scheduled
    /// from it and race the cost model's reclamation deadline.
    ///
    /// * **Deflation mode** (the paper's proposal): first deflate residents
    ///   via the configured [`DeflationPolicy`]; if the policy's headroom is
    ///   exhausted, fall back to deflation-aware **migration** of the
    ///   most-deflated VMs to other servers; only when neither suffices are
    ///   the remaining over-capacity VMs destroyed and counted as
    ///   reclamation failures.
    /// * **Preemption mode**: kill lowest-priority residents until the
    ///   remainder fits (today's transient offerings).
    /// * **Migration-only mode**: migrate residents at full size to servers
    ///   with room, killing whatever cannot be placed.
    ///
    /// With a costed migration model the source server may transiently keep
    /// more than its reclaimed capacity: in-flight VMs stay resident until
    /// their `MigrationComplete` event (fed back through
    /// [`complete_migration`](Self::complete_migration)) either lands them
    /// on the destination or aborts them at the deadline.
    pub fn reclaim_capacity(
        &mut self,
        server: ServerId,
        available_fraction: f64,
        now_secs: f64,
    ) -> CapacityChangeOutcome {
        let idx = self.server_index(server);
        let mut outcome = CapacityChangeOutcome::default();
        if idx >= self.controllers.len() {
            return outcome;
        }
        let fraction = available_fraction.clamp(0.0, 1.0);
        self.transient.reclaim_events += 1;
        self.advance_caches_on(idx, now_secs);
        self.last_reclaim_secs[idx] = now_secs;
        outcome.touch(server);
        self.controllers[idx]
            .server_mut()
            .set_capacity(self.base_capacity * fraction);
        self.mark_server_dirty(idx);
        self.absorb_overage(idx, now_secs, &mut outcome);
        // Whatever room deflation/migration/preemption left is handed back
        // to the surviving residents.
        self.reinflate_if_fits(idx);
        debug_assert!(self.fits_with_pending(idx));
        outcome
    }

    /// Reinflate a server's residents — unless in-flight outbound transfers
    /// keep it transiently over capacity, in which case there is no room to
    /// hand out anyway (the completion of each transfer reinflates then).
    fn reinflate_if_fits(&mut self, idx: usize) {
        // Callers reach here right after a departure / capacity change on
        // `idx`; marking unconditionally (deduped) covers both that
        // mutation and any reinflation below.
        self.mark_server_dirty(idx);
        if self.controllers[idx]
            .server()
            .check_capacity_invariant()
            .is_ok()
        {
            self.controllers[idx].reinflate();
        }
    }

    /// The restitution-response variant of
    /// [`reinflate_if_fits`](Self::reinflate_if_fits), filtered through the
    /// [`RestorePolicy`]: within the hysteresis window of the server's last
    /// reclamation nothing is reinflated (an oscillating signal would
    /// squeeze it right back down), and with spread-out reinflation only a
    /// fraction of the free room is handed back per restitution event.
    /// Reinflation after departures and migration completions stays
    /// greedy — freed room there is not a signal edge.
    fn reinflate_after_restore(&mut self, idx: usize, now_secs: f64) {
        // The capacity change that precedes every call already dirties the
        // view; re-mark (deduped) so the reinflation below is covered even
        // if a future caller skips the capacity change.
        self.mark_server_dirty(idx);
        if now_secs - self.last_reclaim_secs[idx] < self.restore_policy.hysteresis_secs {
            return;
        }
        if self.restore_policy.step_fraction >= 1.0 {
            self.reinflate_if_fits(idx);
        } else if self.controllers[idx]
            .server()
            .check_capacity_invariant()
            .is_ok()
        {
            self.controllers[idx].reinflate_partial(self.restore_policy.step_fraction);
        }
    }

    /// Advance the time-based page-cache regrowth of every guest on one
    /// server to `now_secs` — called ahead of each capacity event so the
    /// migration cost model sees caches that refilled since the last
    /// squeeze. A no-op (and bit-identical to the pre-model behaviour)
    /// while the model is disabled.
    fn advance_caches_on(&mut self, idx: usize, now_secs: f64) {
        if !self.cache_regrowth.is_enabled() {
            return;
        }
        let model = self.cache_regrowth;
        for domain in self.controllers[idx].server_mut().domains_mut() {
            domain.advance_cache_regrowth(now_secs, model);
        }
    }

    /// Destroy a VM's domain on one server and reinflate the survivors if
    /// the server fits (it may not, while other transfers are in flight).
    fn depart_and_reinflate(&mut self, idx: usize, vm: VmId) {
        let _ = self.controllers[idx].server_mut().destroy_domain(vm);
        self.reinflate_if_fits(idx);
    }

    /// Restore the capacity invariant of a server whose capacity was just
    /// changed, in mode-dependent order: deflation mode deflates first and
    /// falls back to migration then eviction; migration-only migrates then
    /// evicts; preemption evicts straight away. A no-op when the residents
    /// already fit (counting in-flight transfers as already gone).
    fn absorb_overage(&mut self, idx: usize, now_secs: f64, outcome: &mut CapacityChangeOutcome) {
        if self.fits_with_pending(idx) {
            return;
        }
        let deadline = now_secs + self.cost_model.reclaim_deadline_secs.max(0.0);
        match self.mode.clone() {
            ReclamationMode::Deflation(_) => {
                let remaining = self.controllers[idx].deflate_into_capacity();
                self.mark_server_dirty(idx);
                if remaining.is_zero() {
                    self.transient.absorbed_by_deflation += 1;
                    return;
                }
                self.migrate_until_fits(idx, true, now_secs, deadline, outcome);
                self.kill_until_fits(idx, outcome);
            }
            ReclamationMode::MigrationOnly => {
                self.migrate_until_fits(idx, false, now_secs, deadline, outcome);
                self.kill_until_fits(idx, outcome);
            }
            ReclamationMode::Preemption => {
                self.kill_until_fits(idx, outcome);
            }
        }
    }

    /// Handle a provider-side **capacity restitution** at one server: grow
    /// it back to `available_fraction` of its hardware capacity, reinflate
    /// residents into the returned room and — when `migrate_back` is set —
    /// pull previously displaced VMs back to this, their origin, server.
    /// Migrate-backs are charged by the cost model like any other transfer
    /// (but never race a deadline — restitutions are not emergencies).
    pub fn restore_capacity(
        &mut self,
        server: ServerId,
        available_fraction: f64,
        migrate_back: bool,
        now_secs: f64,
    ) -> CapacityChangeOutcome {
        let idx = self.server_index(server);
        let mut outcome = CapacityChangeOutcome::default();
        if idx >= self.controllers.len() {
            return outcome;
        }
        let fraction = available_fraction.clamp(0.0, 1.0);
        self.transient.restore_events += 1;
        self.advance_caches_on(idx, now_secs);
        self.controllers[idx]
            .server_mut()
            .set_capacity(self.base_capacity * fraction);
        self.mark_server_dirty(idx);
        self.reinflate_after_restore(idx, now_secs);
        outcome.touch(server);
        // A "restitution" to a fraction below the current usage is really a
        // reclamation in disguise (e.g. a hand-built schedule with a
        // mislabelled direction): absorb it the same way rather than leaving
        // the server over capacity, and hand any room migration freed back
        // to the surviving residents. It opens the restore policy's
        // hysteresis window like any real reclamation — residents were
        // just squeezed, so an immediately following restitution must not
        // pump them straight back up.
        if !self.fits_with_pending(idx) {
            self.last_reclaim_secs[idx] = now_secs;
            self.absorb_overage(idx, now_secs, &mut outcome);
            self.reinflate_after_restore(idx, now_secs);
        }

        if migrate_back {
            let displaced: Vec<VmId> = self
                .migration_origin
                .iter()
                .filter(|&(vm, &origin)| {
                    origin == idx
                        && !self.in_flight_by_vm.contains_key(vm)
                        && self.vm_location.get(vm).is_some_and(|&cur| cur != idx)
                })
                .map(|(&vm, _)| vm)
                .collect();
            // Deterministic order: lowest VM id first.
            let mut displaced = displaced;
            displaced.sort();
            for vm in displaced {
                let Some(&current) = self.vm_location.get(&vm) else {
                    continue;
                };
                // The candidate's cache may have regrown since it was last
                // squeezed; bring it up to date before costing the copy.
                self.advance_caches_on(current, now_secs);
                let Some(domain) = self.controllers[current].server().domain(vm) else {
                    continue;
                };
                if domain.is_parked() {
                    // A parked replica stays put: moving it would undo the
                    // autoscaler's scale-in. It remains displaced, so a
                    // restitution after its unpark can still bring it home.
                    continue;
                }
                let spec = domain.spec.clone();
                let duration = self.cost_model.transfer_secs(domain);
                let volume = self.cost_model.transfer_volume_mb(domain);
                // Only move back when the VM fits its origin at full size —
                // a migrate-back must never force new deflation — and when
                // the cost model allows a transfer at all.
                if duration.is_infinite()
                    || !spec
                        .max_allocation
                        .fits_within(&self.controllers[idx].server().free())
                {
                    continue;
                }
                if duration <= 0.0 {
                    // Cost-free transfer: complete the move inline, the
                    // guest state travelling home with it.
                    let src = self.controllers[current].server().domain(vm).cloned();
                    self.depart_and_reinflate(current, vm);
                    self.mark_server_dirty(idx);
                    if self.controllers[idx]
                        .server_mut()
                        .create_domain(spec, self.mechanism)
                        .is_ok()
                    {
                        if let (Some(src), Some(dst)) =
                            (&src, self.controllers[idx].server_mut().domain_mut(vm))
                        {
                            dst.migrate_guest_state_from(src);
                        }
                        self.vm_location.insert(vm, idx);
                        self.migration_origin.remove(&vm);
                        self.transient.migrations_back += 1;
                        outcome.migrated.push(MigrationRecord {
                            vm,
                            from: self.controllers[current].server().id,
                            to: server,
                            duration_secs: 0.0,
                            volume_mb: volume,
                            back: true,
                        });
                        outcome.touch(self.controllers[current].server().id);
                    } else {
                        // The domain was destroyed but could not be recreated
                        // — should not happen since we checked the fit, but
                        // account for it rather than losing the VM silently.
                        // The old server's residents were reinflated by the
                        // departure, so its allocations must be re-recorded
                        // too.
                        self.vm_location.remove(&vm);
                        self.migration_origin.remove(&vm);
                        self.transient.reclamation_victims += 1;
                        outcome.victims.push(vm);
                        outcome.touch(self.controllers[current].server().id);
                    }
                } else {
                    // Costed transfer: reserve the origin-side capacity now,
                    // keep the VM running where it is, and let the
                    // MigrationComplete event land it back home. Staged like
                    // any other transfer; the deadline is infinite because
                    // restitutions are not emergencies.
                    self.mark_server_dirty(idx);
                    if self.controllers[idx]
                        .server_mut()
                        .create_domain(spec, self.mechanism)
                        .is_ok()
                    {
                        self.staged.push(StagedTransfer {
                            vm,
                            source: current,
                            dest: idx,
                            duration_secs: duration,
                            volume_mb: volume,
                            deadline_secs: f64::INFINITY,
                            back: true,
                            origin_inserted: false,
                        });
                        outcome.touch(server);
                    }
                }
            }
            self.finalize_staged(now_secs, &mut outcome);
        }
        debug_assert!(self.fits_with_pending(idx));
        outcome
    }

    /// Migrate residents off an over-capacity server until its effective
    /// usage — minus what in-flight transfers have already pledged to take
    /// away — fits. Candidates are tried most-deflated first (deflatable
    /// VMs ordered by ascending allocation fraction, then on-demand VMs),
    /// and each is re-admitted on the best other server — deflating that
    /// server's residents when `deflation_aware` is set. Each migration is
    /// charged by the cost model: instant transfers complete inline, costed
    /// ones are *staged* and handed to the [`TransferScheduler`] as one
    /// batch — the scheduling policy decides their slot order, and under
    /// EDF admission control may refuse transfers that provably cannot
    /// finish before `deadline_secs` (those VMs fall through to the
    /// eviction rung instead of aborting mid-transfer).
    ///
    /// With deflate-then-migrate enabled (and in deflation mode), each
    /// candidate surrenders its page cache *before* its transfer is
    /// estimated, shrinking the hot footprint — and thus the copy time —
    /// under the deadline.
    fn migrate_until_fits(
        &mut self,
        source: usize,
        deflation_aware: bool,
        now_secs: f64,
        deadline_secs: f64,
        outcome: &mut CapacityChangeOutcome,
    ) {
        debug_assert!(self.staged.is_empty());
        self.stage_migrations_until_fits(source, deflation_aware, deadline_secs, outcome);
        self.finalize_staged(now_secs, outcome);
    }

    /// The candidate-selection half of [`migrate_until_fits`]: pick
    /// migration candidates and destinations, completing cost-free moves
    /// inline and staging costed ones for the scheduler.
    fn stage_migrations_until_fits(
        &mut self,
        source: usize,
        deflation_aware: bool,
        deadline_secs: f64,
        outcome: &mut CapacityChangeOutcome,
    ) {
        let source_id = self.controllers[source].server().id;
        let deflate_first = self.scheduler.policy().deflate_then_migrate && deflation_aware;
        let mut attempted: Vec<VmId> = Vec::new();
        loop {
            if self.fits_with_pending(source) {
                return;
            }
            // Pick the most-deflated untried resident (deflatable first),
            // skipping VMs already part of an in-flight transfer and
            // autoscale-parked replicas — a parked domain would sort
            // first (it is the most-deflated by construction), but
            // migrating it would silently undo the park on landing, and
            // its sliver of capacity is hardly worth a transfer; the
            // eviction rung may still take it as a last resort.
            let candidate = {
                let server = self.controllers[source].server();
                let mut best: Option<(bool, f64, VmId)> = None;
                for domain in server.domains() {
                    if attempted.contains(&domain.spec.id)
                        || self.in_flight_by_vm.contains_key(&domain.spec.id)
                        || domain.is_parked()
                    {
                        continue;
                    }
                    let max = domain.spec.max_allocation.total();
                    let frac = if max <= 0.0 {
                        1.0
                    } else {
                        domain.effective_allocation().total() / max
                    };
                    // Sort key: on-demand after deflatable, then by
                    // allocation fraction, then by id for determinism.
                    let key = (!domain.spec.deflatable, frac, domain.spec.id);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
                best.map(|(_, _, id)| id)
            };
            let Some(vm) = candidate else { return };
            attempted.push(vm);
            if deflate_first {
                // Deflate-then-migrate: the guest gives up its page cache
                // before the copy is estimated, so only the RSS has to
                // cross the link. (The squeeze persists if no destination
                // is found — the cache regrows with the next usage
                // report, and a cheaper future transfer is no loss.)
                if let Some(domain) = self.controllers[source].server_mut().domain_mut(vm) {
                    if domain.spec.deflatable {
                        domain.deflate_for_migration();
                    }
                }
            }
            let Some((spec, duration, volume)) =
                self.controllers[source].server().domain(vm).map(|d| {
                    (
                        d.spec.clone(),
                        self.cost_model.transfer_secs(d),
                        self.cost_model.transfer_volume_mb(d),
                    )
                })
            else {
                continue;
            };
            if duration.is_infinite() {
                // Zero link bandwidth: migration is impossible, fall
                // through to eviction for this VM.
                continue;
            }
            let Some(target) = self.admit_on_best(&spec, vec![source_id], deflation_aware) else {
                continue;
            };
            if duration <= 0.0 {
                // Cost-free transfer: the VM now exists on the target;
                // its guest state moves over, and the source copy is
                // destroyed without reinflating yet (the server is still
                // over capacity).
                if let Some(src) = self.controllers[source].server().domain(vm) {
                    let src = src.clone();
                    if let Some(dst) = self.controllers[target].server_mut().domain_mut(vm) {
                        dst.migrate_guest_state_from(&src);
                    }
                }
                let _ = self.controllers[source].server_mut().destroy_domain(vm);
                self.mark_server_dirty(source);
                self.vm_location.insert(vm, target);
                self.migration_origin.entry(vm).or_insert(source);
                self.transient.migrations += 1;
                outcome.migrated.push(MigrationRecord {
                    vm,
                    from: source_id,
                    to: self.controllers[target].server().id,
                    duration_secs: 0.0,
                    volume_mb: volume,
                    back: false,
                });
                outcome.touch(self.controllers[target].server().id);
            } else {
                // Costed transfer: the destination reservation exists, the
                // source copy keeps running; the scheduler grants (or
                // refuses) the bandwidth slot when the batch is finalised.
                let origin_inserted = !self.migration_origin.contains_key(&vm);
                self.migration_origin.entry(vm).or_insert(source);
                self.staged.push(StagedTransfer {
                    vm,
                    source,
                    dest: target,
                    duration_secs: duration,
                    volume_mb: volume,
                    deadline_secs,
                    back: false,
                    origin_inserted,
                });
                outcome.touch(self.controllers[target].server().id);
            }
        }
    }

    /// Hand the current decision batch to the [`TransferScheduler`] and
    /// resolve its verdicts: booked transfers become in-flight (the caller
    /// schedules a `MigrationComplete` event for each), EDF-rejected ones
    /// release their destination reservation and leave the VM on its
    /// source — the eviction rung handles it if the room is still needed.
    fn finalize_staged(&mut self, now_secs: f64, outcome: &mut CapacityChangeOutcome) {
        if self.staged.is_empty() {
            return;
        }
        let _booking = self.telemetry.span(Phase::TransferBooking);
        let staged = std::mem::take(&mut self.staged);
        let requests: Vec<TransferRequest> = staged
            .iter()
            .map(|s| TransferRequest {
                vm: s.vm,
                source: s.source,
                dest: s.dest,
                duration_secs: s.duration_secs,
                volume_mb: s.volume_mb,
                deadline_secs: s.deadline_secs,
            })
            .collect();
        let slots = self.cost_model.concurrent_slots();
        let decisions = self.scheduler.book_batch(&requests, now_secs, slots);
        for (s, decision) in staged.into_iter().zip(decisions) {
            match decision {
                TransferDecision::Booked {
                    start_secs,
                    event_secs,
                } => {
                    let flight = InFlight {
                        vm: s.vm,
                        source: s.source,
                        dest: s.dest,
                        start_secs,
                        finish_secs: start_secs + s.duration_secs,
                        deadline_secs: s.deadline_secs,
                        volume_mb: s.volume_mb,
                        back: s.back,
                    };
                    debug_assert_eq!(flight.event_secs(), event_secs);
                    let id = self.next_migration_id;
                    self.next_migration_id += 1;
                    self.in_flight.insert(id, flight);
                    self.in_flight_by_vm.insert(s.vm, id);
                    outcome.started.push(PendingMigration {
                        id,
                        vm: s.vm,
                        from: self.controllers[s.source].server().id,
                        to: self.controllers[s.dest].server().id,
                        start_secs,
                        event_secs,
                    });
                }
                TransferDecision::Rejected => {
                    // Admission control: the copy provably cannot beat the
                    // deadline, so no link time is wasted on it. Drop the
                    // destination reservation; the VM stays on its source.
                    self.depart_and_reinflate(s.dest, s.vm);
                    if s.origin_inserted {
                        self.migration_origin.remove(&s.vm);
                    }
                    self.transient.migration_rejections += 1;
                    outcome.touch(self.controllers[s.dest].server().id);
                }
            }
        }
    }

    /// Resolve an in-flight migration when its `MigrationComplete` event
    /// fires. If the page copy finished before the reclamation deadline the
    /// VM lands on its destination (the source copy is destroyed and its
    /// residents reinflate); otherwise the transfer is **aborted**: both
    /// copies are destroyed and the VM is evicted, counted as a
    /// reclamation victim *and* a migration abort. Unknown ids (transfers
    /// cancelled by a departure or a forced eviction) are a no-op.
    pub fn complete_migration(&mut self, id: u64, _now_secs: f64) -> CapacityChangeOutcome {
        let mut outcome = CapacityChangeOutcome::default();
        let Some(flight) = self.in_flight.remove(&id) else {
            return outcome;
        };
        self.in_flight_by_vm.remove(&flight.vm);
        let from = self.controllers[flight.source].server().id;
        let to = self.controllers[flight.dest].server().id;
        outcome.touch(from);
        outcome.touch(to);
        if flight.aborts() {
            // The provider's deadline expired mid-transfer: the source is
            // gone and the partial destination copy is useless.
            self.depart_and_reinflate(flight.source, flight.vm);
            self.depart_and_reinflate(flight.dest, flight.vm);
            self.vm_location.remove(&flight.vm);
            self.migration_origin.remove(&flight.vm);
            self.transient.migration_aborts += 1;
            self.transient.reclamation_victims += 1;
            outcome.victims.push(flight.vm);
        } else {
            // Success: land on the destination — carrying the guest's
            // memory state (RSS, squeezed-or-not page cache, utilisation
            // history) with it, as live migration does — and free the
            // source.
            if let Some(src) = self.controllers[flight.source].server().domain(flight.vm) {
                let src = src.clone();
                if let Some(dst) = self.controllers[flight.dest]
                    .server_mut()
                    .domain_mut(flight.vm)
                {
                    dst.migrate_guest_state_from(&src);
                }
            }
            // The guest-state copy above carries the source's hotplug /
            // deflation state onto the destination domain, changing its
            // effective allocation — a view-affecting mutation.
            self.mark_server_dirty(flight.dest);
            self.depart_and_reinflate(flight.source, flight.vm);
            self.vm_location.insert(flight.vm, flight.dest);
            if flight.back {
                self.migration_origin.remove(&flight.vm);
                self.transient.migrations_back += 1;
            } else {
                self.transient.migrations += 1;
            }
            outcome.migrated.push(MigrationRecord {
                vm: flight.vm,
                from,
                to,
                duration_secs: flight.finish_secs - flight.start_secs,
                volume_mb: flight.volume_mb,
                back: flight.back,
            });
        }
        outcome
    }

    /// Resources pledged to leave this server: the effective allocations of
    /// resident domains whose in-flight *or staged* transfer has this
    /// server as its source. They still physically occupy the server but
    /// are on their way out (or will be evicted at the deadline), so
    /// capacity checks during a transfer subtract them.
    fn pending_outbound(&self, idx: usize) -> ResourceVector {
        // Sum in VM-id order, not HashMap iteration order: f64 addition is
        // not associative and a run-to-run fold-order difference could
        // flip a borderline fits_within decision, breaking the bit-exact
        // determinism the simulator guarantees.
        let mut vms: Vec<VmId> = self
            .in_flight
            .values()
            .filter(|m| m.source == idx)
            .map(|m| m.vm)
            .chain(self.staged.iter().filter(|s| s.source == idx).map(|s| s.vm))
            .collect();
        vms.sort();
        vms.dedup();
        vms.into_iter()
            .filter_map(|vm| self.controllers[idx].server().domain(vm))
            .fold(ResourceVector::ZERO, |acc, d| {
                acc + d.effective_allocation()
            })
    }

    /// The capacity invariant adjusted for in-flight transfers: effective
    /// usage minus pending outbound allocations fits the (possibly
    /// reclaimed) capacity.
    fn fits_with_pending(&self, idx: usize) -> bool {
        let server = self.controllers[idx].server();
        server
            .effective_used()
            .saturating_sub(&self.pending_outbound(idx))
            .fits_within(&server.capacity)
    }

    /// Admit a VM on the best server outside `excluded`, optionally
    /// deflating the target's residents. Returns the chosen server index.
    /// The caller is responsible for `vm_location` bookkeeping.
    fn admit_on_best(
        &mut self,
        spec: &VmSpec,
        mut excluded: Vec<ServerId>,
        deflation_aware: bool,
    ) -> Option<usize> {
        loop {
            if excluded.len() >= self.controllers.len() {
                return None;
            }
            let decision = self.rank_servers(spec, &excluded)?;
            let idx = self.server_index(decision.server);
            // Both admission paths below may mutate the target (deflation
            // and/or a new domain); mark before attempting.
            self.mark_server_dirty(idx);
            let admitted = if deflation_aware {
                matches!(
                    self.controllers[idx].try_admit(spec.clone()),
                    Ok(AdmissionOutcome::AdmittedWithoutDeflation)
                        | Ok(AdmissionOutcome::AdmittedWithDeflation { .. })
                )
            } else {
                spec.max_allocation
                    .fits_within(&self.controllers[idx].server().free())
                    && self.controllers[idx]
                        .server_mut()
                        .create_domain(spec.clone(), self.mechanism)
                        .is_ok()
            };
            if admitted {
                return Some(idx);
            }
            excluded.push(decision.server);
            if excluded.len() >= self.controllers.len() {
                return None;
            }
        }
    }

    /// Destroy residents of an over-capacity server until the rest fits
    /// (in-flight outbound allocations count as already gone): the
    /// last-resort path, counted as reclamation failures. Victims are
    /// chosen lowest-priority first among deflatable VMs, then on-demand
    /// VMs, ids breaking ties. VMs whose transfer has this server as its
    /// *source* are never selected — their capacity is already pledged to
    /// leave. An inbound in-flight *reservation* can be selected, which
    /// cancels the transfer and frees the reservation but spares the VM —
    /// it is still running healthily on its source server.
    fn kill_until_fits(&mut self, idx: usize, outcome: &mut CapacityChangeOutcome) {
        while !self.fits_with_pending(idx) {
            let victim = self.controllers[idx]
                .server()
                .domains()
                .filter(|d| {
                    // Skip outbound in-flight VMs (already subtracted by
                    // fits_with_pending; killing them would not help).
                    self.in_flight_by_vm
                        .get(&d.spec.id)
                        .and_then(|mid| self.in_flight.get(mid))
                        .is_none_or(|m| m.source != idx)
                })
                .map(|d| (!d.spec.deflatable, d.spec.priority.value(), d.spec.id))
                .min_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)))
                .map(|(_, _, id)| id);
            let Some(victim) = victim else { return };
            self.evict_vm(idx, victim, outcome);
        }
    }

    /// Make room on `idx` at the expense of `vm`. If `vm`'s domain here is
    /// only the destination reservation of an in-flight transfer, the
    /// transfer is cancelled (counted as an abort) and the VM survives on
    /// its source server; otherwise the VM is destroyed everywhere and
    /// counted as a reclamation victim.
    fn evict_vm(&mut self, idx: usize, vm: VmId, outcome: &mut CapacityChangeOutcome) {
        if let Some(&mid) = self.in_flight_by_vm.get(&vm) {
            let Some(flight) = self.in_flight.get(&mid).copied() else {
                return;
            };
            self.in_flight_by_vm.remove(&vm);
            self.in_flight.remove(&mid);
            // The migration is aborted either way. (Its bandwidth
            // reservation is left to drain — the link was in use until the
            // abort.)
            self.transient.migration_aborts += 1;
            outcome.touch(self.controllers[flight.source].server().id);
            outcome.touch(self.controllers[flight.dest].server().id);
            if flight.dest == idx && self.fits_with_pending(flight.source) {
                // Only the reservation lives here, and the source does not
                // need this transfer to restore its own invariant (true
                // for migrate-backs and for sources that have recovered):
                // drop the reservation and keep the VM running where it
                // is. It stays displaced, so its migrate-back eligibility
                // (if any) is preserved.
                self.depart_and_reinflate(flight.dest, vm);
                return;
            }
            // The running copy lives here (or the source relies on this
            // transfer to drain): the VM is lost mid-transfer.
            self.depart_and_reinflate(flight.source, vm);
            self.depart_and_reinflate(flight.dest, vm);
        } else if let Some(&loc) = self.vm_location.get(&vm) {
            let _ = self.controllers[loc].server_mut().destroy_domain(vm);
            self.mark_server_dirty(loc);
        }
        self.vm_location.remove(&vm);
        self.migration_origin.remove(&vm);
        self.transient.reclamation_victims += 1;
        outcome.victims.push(vm);
    }

    /// Handle a VM departure: remove its domain and reinflate the residents
    /// of the server it was on. A departure mid-transfer cancels the
    /// migration and frees both ends (the pending `MigrationComplete` event
    /// then resolves to a no-op).
    pub fn remove_vm(&mut self, vm: VmId) -> Result<()> {
        let idx = self
            .vm_location
            .remove(&vm)
            .ok_or(DeflateError::UnknownVm(vm))?;
        self.migration_origin.remove(&vm);
        if let Some(mid) = self.in_flight_by_vm.remove(&vm) {
            if let Some(flight) = self.in_flight.remove(&mid) {
                self.depart_and_reinflate(flight.dest, vm);
            }
        }
        self.controllers[idx].server_mut().destroy_domain(vm)?;
        self.reinflate_if_fits(idx);
        Ok(())
    }

    /// The partition scheme in effect (used by experiment harnesses for
    /// reporting).
    pub fn partition_scheme(&self) -> PartitionScheme {
        self.partitions
    }

    /// Check every server's capacity invariant, allowing in-flight
    /// transfers' pending outbound allocations to transiently exceed a
    /// reclaimed source's capacity (used by tests and debug assertions).
    /// With no transfer in flight this is the strict physical invariant.
    pub fn check_invariants(&self) -> bool {
        (0..self.controllers.len()).all(|idx| self.fits_with_pending(idx))
    }

    /// Audit probe: capacity conservation. Every server's effective usage,
    /// minus allocations pledged to leave on an in-flight transfer, must
    /// fit its (possibly reclaimed) capacity. Read-only; returns the first
    /// offending server with a diagnostic.
    pub(crate) fn audit_capacity(&self) -> std::result::Result<(), AuditFinding> {
        for idx in 0..self.controllers.len() {
            if !self.fits_with_pending(idx) {
                let server = self.controllers[idx].server();
                return Err(AuditFinding {
                    server: Some(server.id),
                    detail: format!(
                        "capacity conservation violated on server {}: effective used {} \
                         minus pending outbound {} exceeds capacity {}",
                        server.id.0,
                        server.effective_used(),
                        self.pending_outbound(idx),
                        server.capacity
                    ),
                });
            }
        }
        Ok(())
    }

    /// Audit probe: bandwidth-ledger balance. Every live in-flight transfer
    /// (resolving strictly after `now_secs`, booked before its deadline)
    /// must hold a reservation — an entry whose end time equals the
    /// transfer's event time — on **both** endpoints' scheduler ledgers.
    /// The reverse is deliberately not checked: cancelled transfers
    /// (forced evictions, departures mid-transfer) leave their
    /// reservations to drain, so the ledger may legitimately hold entries
    /// with no matching flight. Skipped entirely under an unlimited
    /// bandwidth budget, where the scheduler reserves nothing.
    pub(crate) fn audit_bandwidth_ledger(
        &self,
        now_secs: f64,
    ) -> std::result::Result<(), AuditFinding> {
        if self.cost_model.concurrent_slots() == usize::MAX {
            return Ok(());
        }
        // Group required reservation end times per endpoint. Sorted-order
        // iteration is not needed for correctness (the multiset check is
        // order-independent) but keeps the first-failure diagnostic
        // deterministic despite HashMap iteration order.
        let mut required: Vec<Vec<f64>> = vec![Vec::new(); self.controllers.len()];
        for flight in self.in_flight.values() {
            let end = flight.event_secs();
            if end > now_secs && flight.start_secs < flight.deadline_secs {
                required[flight.source].push(end);
                required[flight.dest].push(end);
            }
        }
        let ledgers = self.scheduler.ledgers();
        for (idx, req) in required.iter_mut().enumerate() {
            if req.is_empty() {
                continue;
            }
            req.sort_by(f64::total_cmp);
            let mut live: Vec<f64> = ledgers[idx]
                .iter()
                .copied()
                .filter(|&end| end > now_secs)
                .collect();
            live.sort_by(f64::total_cmp);
            // Multiset containment: every required end must be matched by a
            // distinct live ledger entry with the same end time.
            let mut li = 0;
            for &end in req.iter() {
                while li < live.len() && live[li] < end {
                    li += 1;
                }
                if li >= live.len() || live[li] != end {
                    return Err(AuditFinding {
                        server: Some(self.controllers[idx].server().id),
                        detail: format!(
                            "bandwidth ledger unbalanced on server {}: in-flight transfer \
                             resolving at t={end:.3}s has no backing reservation \
                             ({} live ledger entries, {} required)",
                            self.controllers[idx].server().id.0,
                            live.len(),
                            req.len()
                        ),
                    });
                }
                li += 1;
            }
        }
        Ok(())
    }

    /// Audit probe: placement-index consistency. Every server *not* marked
    /// dirty must have a cached view identical to one freshly derived from
    /// the server — a stale clean entry means some view-affecting mutation
    /// skipped [`mark_server_dirty`](Self::mark_server_dirty) and the
    /// ranking pass is reading corrupt data. Read-only: dirty entries are
    /// skipped, never refreshed (refreshing would mutate state the
    /// determinism contract says an auditor must not touch).
    pub(crate) fn audit_placement_index(&self) -> std::result::Result<(), AuditFinding> {
        let dirty = self.index.dirty_indices();
        for (idx, cached) in self.index.views().iter().enumerate() {
            if dirty.binary_search(&idx).is_ok() {
                continue;
            }
            let fresh = self.controllers[idx].server().view();
            if *cached != fresh {
                return Err(AuditFinding {
                    server: Some(self.controllers[idx].server().id),
                    detail: format!(
                        "placement index inconsistent on server {}: cached view \
                         (used {}, overcommitment {:.4}) differs from a fresh rescan \
                         (used {}, overcommitment {:.4}) but the server is not dirty",
                        self.controllers[idx].server().id.0,
                        cached.used,
                        cached.overcommitment,
                        fresh.used,
                        fresh.overcommitment
                    ),
                });
            }
        }
        Ok(())
    }

    /// Record this subsystem's owned heap bytes into the engine's memory
    /// ledger: the per-server controllers (domains and notification
    /// buffers), the incremental placement index, the transfer scheduler's
    /// reservation ledgers, and the migration bookkeeping maps.
    pub fn record_memory(&self, ledger: &mut MemoryLedger) {
        use deflate_core::mem::{map_entry_bytes, vec_capacity_bytes};
        use std::mem::size_of;
        let servers = vec_capacity_bytes(&self.controllers)
            + self
                .controllers
                .iter()
                .map(|c| c.accounted_bytes())
                .sum::<u64>();
        ledger.record("servers", servers);
        ledger.record("placement_index", self.index.accounted_bytes());
        ledger.record("scheduler", self.scheduler.accounted_bytes());
        let migrations = self.vm_location.len() as u64
            * map_entry_bytes(size_of::<VmId>(), size_of::<usize>())
            + self.migration_origin.len() as u64
                * map_entry_bytes(size_of::<VmId>(), size_of::<usize>())
            + self.in_flight.len() as u64
                * map_entry_bytes(size_of::<u64>(), size_of::<InFlight>())
            + self.in_flight_by_vm.len() as u64
                * map_entry_bytes(size_of::<VmId>(), size_of::<u64>())
            + vec_capacity_bytes(&self.staged)
            + vec_capacity_bytes(&self.last_reclaim_secs);
        ledger.record("migrations", migrations);
    }

    /// Mutable controller access for the auditor's mutation-style tests
    /// (corrupting a server *without* marking it dirty is exactly the bug
    /// class `audit_placement_index` exists to catch).
    #[cfg(test)]
    pub(crate) fn controller_mut(&mut self, idx: usize) -> &mut LocalController {
        &mut self.controllers[idx]
    }

    /// Mutable scheduler access for the auditor's mutation-style tests.
    #[cfg(test)]
    pub(crate) fn scheduler_mut(&mut self) -> &mut TransferScheduler {
        &mut self.scheduler
    }

    /// Insert a synthetic in-flight transfer (no domains, no reservations)
    /// so the bandwidth-ledger checker can be exercised in isolation.
    /// Returns the migration id.
    #[cfg(test)]
    pub(crate) fn inject_test_flight(
        &mut self,
        vm: VmId,
        source: usize,
        dest: usize,
        start_secs: f64,
        finish_secs: f64,
        deadline_secs: f64,
    ) -> u64 {
        let id = self.next_migration_id;
        self.next_migration_id += 1;
        self.in_flight.insert(
            id,
            InFlight {
                vm,
                source,
                dest,
                start_secs,
                finish_secs,
                deadline_secs,
                volume_mb: 0.0,
                back: false,
            },
        );
        self.in_flight_by_vm.insert(vm, id);
        id
    }

    /// Serialize the manager's **dynamic** state for an engine checkpoint:
    /// per-server capacities and resident domains (in `VmId` order — the
    /// `BTreeMap` iteration order), the reclaim-hysteresis clocks, the VM
    /// location and migration-origin maps (sorted by VM id), the in-flight
    /// transfers (sorted by migration id), the transfer scheduler's
    /// ledgers, the admission/transient counters and the placement index's
    /// queued dirty marks. Static configuration (placement policy,
    /// partitions, mechanism, cost model, restore policy, cache regrowth,
    /// telemetry, engine, pool) is **not** written — the restoring side
    /// rebuilds it from the same [`ClusterConfig`] and builder calls,
    /// which is also what lets a fork restore under a *different*
    /// [`TransferPolicy`]. Every map is emitted in sorted order, so the
    /// bytes are independent of `HashMap` layout, shard count and host.
    ///
    /// Must be called at an event boundary: `staged` transfers only exist
    /// within one capacity event and are never snapshotted.
    pub fn write_snapshot(&self, w: &mut ByteWriter) {
        debug_assert!(
            self.staged.is_empty(),
            "checkpoints are taken between manager calls only"
        );
        w.put_usize(self.controllers.len());
        for controller in &self.controllers {
            let server = controller.server();
            w.put_resources(&server.capacity);
            w.put_usize(server.domains().count());
            for domain in server.domains() {
                domain.write_snapshot(w);
            }
        }
        w.put_f64_slice(&self.last_reclaim_secs);
        let mut locations: Vec<(u64, u64)> = self
            .vm_location
            .iter()
            .map(|(vm, &idx)| (vm.0, idx as u64))
            .collect();
        locations.sort_unstable();
        w.put_usize(locations.len());
        for (vm, idx) in locations {
            w.put_u64(vm);
            w.put_u64(idx);
        }
        let mut origins: Vec<(u64, u64)> = self
            .migration_origin
            .iter()
            .map(|(vm, &idx)| (vm.0, idx as u64))
            .collect();
        origins.sort_unstable();
        w.put_usize(origins.len());
        for (vm, idx) in origins {
            w.put_u64(vm);
            w.put_u64(idx);
        }
        let mut flights: Vec<(u64, InFlight)> =
            self.in_flight.iter().map(|(&id, &f)| (id, f)).collect();
        flights.sort_unstable_by_key(|&(id, _)| id);
        w.put_usize(flights.len());
        for (id, f) in flights {
            w.put_u64(id);
            w.put_u64(f.vm.0);
            w.put_usize(f.source);
            w.put_usize(f.dest);
            w.put_f64(f.start_secs);
            w.put_f64(f.finish_secs);
            w.put_f64(f.deadline_secs);
            w.put_f64(f.volume_mb);
            w.put_bool(f.back);
        }
        w.put_u64(self.next_migration_id);
        self.scheduler.write_snapshot(w);
        w.put_usize(self.counters.admitted_free);
        w.put_usize(self.counters.admitted_with_deflation);
        w.put_usize(self.counters.admitted_with_preemption);
        w.put_usize(self.counters.rejected);
        w.put_usize(self.counters.preempted_vms);
        w.put_usize(self.transient.reclaim_events);
        w.put_usize(self.transient.restore_events);
        w.put_usize(self.transient.absorbed_by_deflation);
        w.put_usize(self.transient.migrations);
        w.put_usize(self.transient.migrations_back);
        w.put_usize(self.transient.migration_aborts);
        w.put_usize(self.transient.migration_rejections);
        w.put_usize(self.transient.reclamation_victims);
        let dirty = self.index.dirty_indices();
        w.put_usize(dirty.len());
        for idx in dirty {
            w.put_usize(idx);
        }
    }

    /// Restore [`write_snapshot`](Self::write_snapshot) state onto a
    /// **freshly constructed** manager (same [`ClusterConfig`], mode and
    /// builder overrides — the transfer policy in effect is kept, so a
    /// fork may have swapped it before restoring). The placement index is
    /// rebuilt from the restored servers and the snapshot's dirty marks
    /// are replayed onto it.
    pub fn read_snapshot(&mut self, r: &mut ByteReader<'_>) -> CheckpointResult<()> {
        let num_servers = r.get_usize()?;
        if num_servers != self.controllers.len() {
            return Err(CheckpointError::Corrupt(format!(
                "snapshot has {} servers, cluster has {}",
                num_servers,
                self.controllers.len()
            )));
        }
        for controller in &mut self.controllers {
            let server = controller.server_mut();
            server.capacity = r.get_resources()?;
            let count = r.get_usize()?;
            for _ in 0..count {
                server.restore_domain(Domain::read_snapshot(r)?);
            }
        }
        let last_reclaim = r.get_f64_vec()?;
        if last_reclaim.len() != num_servers {
            return Err(CheckpointError::Corrupt(format!(
                "reclaim clocks for {} servers, expected {}",
                last_reclaim.len(),
                num_servers
            )));
        }
        self.last_reclaim_secs = last_reclaim;
        let n = r.get_usize()?;
        self.vm_location = HashMap::with_capacity(n);
        for _ in 0..n {
            let vm = VmId(r.get_u64()?);
            let idx = r.get_u64()? as usize;
            self.vm_location.insert(vm, idx);
        }
        let n = r.get_usize()?;
        self.migration_origin = HashMap::with_capacity(n);
        for _ in 0..n {
            let vm = VmId(r.get_u64()?);
            let idx = r.get_u64()? as usize;
            self.migration_origin.insert(vm, idx);
        }
        let n = r.get_usize()?;
        self.in_flight = HashMap::with_capacity(n);
        self.in_flight_by_vm = HashMap::with_capacity(n);
        for _ in 0..n {
            let id = r.get_u64()?;
            let flight = InFlight {
                vm: VmId(r.get_u64()?),
                source: r.get_usize()?,
                dest: r.get_usize()?,
                start_secs: r.get_f64()?,
                finish_secs: r.get_f64()?,
                deadline_secs: r.get_f64()?,
                volume_mb: r.get_f64()?,
                back: r.get_bool()?,
            };
            self.in_flight_by_vm.insert(flight.vm, id);
            self.in_flight.insert(id, flight);
        }
        self.next_migration_id = r.get_u64()?;
        self.scheduler = TransferScheduler::read_snapshot(r, self.scheduler.policy())?;
        self.counters = AdmissionCounters {
            admitted_free: r.get_usize()?,
            admitted_with_deflation: r.get_usize()?,
            admitted_with_preemption: r.get_usize()?,
            rejected: r.get_usize()?,
            preempted_vms: r.get_usize()?,
        };
        self.transient = TransientCounters {
            reclaim_events: r.get_usize()?,
            restore_events: r.get_usize()?,
            absorbed_by_deflation: r.get_usize()?,
            migrations: r.get_usize()?,
            migrations_back: r.get_usize()?,
            migration_aborts: r.get_usize()?,
            migration_rejections: r.get_usize()?,
            reclamation_victims: r.get_usize()?,
        };
        self.staged.clear();
        self.index =
            PlacementIndex::new(self.controllers.iter().map(|c| c.server().view()).collect());
        let dirty = r.get_usize()?;
        for _ in 0..dirty {
            let idx = r.get_usize()?;
            self.index.mark_dirty(idx);
        }
        Ok(())
    }

    /// Publish the manager's admission, transient and transfer-scheduler
    /// accounting into the telemetry metrics registry (one-branch no-op
    /// when the metrics sink is off). Called once at the end of a run so
    /// the published values are the final counters.
    pub fn publish_metrics(&self) {
        if !self.telemetry.enabled() {
            return;
        }
        let t = &self.telemetry;
        t.count("manager.admitted_free", self.counters.admitted_free as u64);
        t.count(
            "manager.admitted_with_deflation",
            self.counters.admitted_with_deflation as u64,
        );
        t.count(
            "manager.admitted_with_preemption",
            self.counters.admitted_with_preemption as u64,
        );
        t.count("manager.rejected", self.counters.rejected as u64);
        t.count("manager.preempted_vms", self.counters.preempted_vms as u64);
        t.count(
            "transient.reclaim_events",
            self.transient.reclaim_events as u64,
        );
        t.count(
            "transient.restore_events",
            self.transient.restore_events as u64,
        );
        t.count(
            "transient.absorbed_by_deflation",
            self.transient.absorbed_by_deflation as u64,
        );
        t.count("transient.migrations", self.transient.migrations as u64);
        t.count(
            "transient.migrations_back",
            self.transient.migrations_back as u64,
        );
        t.count(
            "transient.migration_aborts",
            self.transient.migration_aborts as u64,
        );
        t.count(
            "transient.migration_rejections",
            self.transient.migration_rejections as u64,
        );
        t.count(
            "transient.reclamation_victims",
            self.transient.reclamation_victims as u64,
        );
        let sched = self.scheduler.stats();
        t.count("scheduler.booked", sched.booked as u64);
        t.count("scheduler.rejected", sched.rejected as u64);
        t.gauge_set(
            "scheduler.mean_queue_wait_secs",
            sched.mean_queue_wait_secs(),
        );
        t.gauge_set("manager.in_flight_at_end", self.in_flight.len() as f64);
        t.gauge_set("manager.num_servers", self.controllers.len() as f64);
    }
}

/// The autoscaler's view of the cluster: every replica operation goes
/// through the manager's own placement, deflation and reinflation
/// machinery, so elastic capacity is always accounted for exactly like
/// trace capacity — the autoscaler can neither create nor destroy
/// resources outside the manager's books.
impl ElasticCluster for ClusterManager {
    /// Place a new replica through the ordinary admission path (it may
    /// deflate residents, exactly like a trace arrival). `None` when every
    /// server rejects it — counted as a rejected admission.
    fn launch_replica(&mut self, spec: VmSpec) -> Option<ServerId> {
        match self.place_vm(spec) {
            PlacementResult::Placed { server }
            | PlacementResult::PlacedWithDeflation { server, .. }
            | PlacementResult::PlacedWithPreemption { server, .. } => Some(server),
            PlacementResult::Rejected => None,
        }
    }

    /// Terminate a replica like a departure: its domain is destroyed and
    /// the server's residents reinflate into the freed room.
    fn retire_replica(&mut self, vm: VmId) -> Option<ServerId> {
        let server = self.locate(vm)?;
        self.remove_vm(vm).ok()?;
        Some(server)
    }

    /// Deflate a replica to `fraction` of its allocation and mark its
    /// domain parked, so server-level reinflation passes leave it alone
    /// until [`unpark_replica`](Self::unpark_replica). The surrendered
    /// room goes to the server's other residents. `None` while the VM is
    /// part of an in-flight migration (its footprint is pledged to two
    /// servers at once — the autoscaler picks another replica).
    fn park_replica(&mut self, vm: VmId, fraction: f64) -> Option<ServerId> {
        if self.in_flight_by_vm.contains_key(&vm) {
            return None;
        }
        let &idx = self.vm_location.get(&vm)?;
        let domain = self.controllers[idx].server_mut().domain_mut(vm)?;
        let target = domain.spec.max_allocation * fraction.clamp(0.0, 1.0);
        domain.deflate_to(target);
        domain.set_parked(true);
        self.reinflate_if_fits(idx);
        Some(self.controllers[idx].server().id)
    }

    /// Clear the replica's parked flag and reinflate its server — the
    /// reinflate-on-demand path. Under reclamation pressure the replica
    /// may come back only partially inflated (it shares the room with its
    /// neighbours), which is still infinitely better than a boot delay.
    fn unpark_replica(&mut self, vm: VmId) -> Option<ServerId> {
        let &idx = self.vm_location.get(&vm)?;
        let domain = self.controllers[idx].server_mut().domain_mut(vm)?;
        domain.set_parked(false);
        self.reinflate_if_fits(idx);
        Some(self.controllers[idx].server().id)
    }

    fn replica_allocation_fraction(&self, vm: VmId) -> Option<f64> {
        self.cpu_allocation_fraction(vm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deflate_core::policy::ProportionalDeflation;
    use deflate_core::vm::{Priority, VmClass};

    fn small_cluster(mode: ReclamationMode) -> ClusterManager {
        let config = ClusterConfig {
            num_servers: 2,
            server_capacity: ResourceVector::cpu_mem(16_000.0, 32_768.0),
            placement: PlacementKind::CosineFitness,
            partitions: PartitionScheme::None,
            mechanism: DeflationMechanism::Transparent,
        };
        ClusterManager::new(&config, mode)
    }

    fn deflation_mode() -> ReclamationMode {
        ReclamationMode::Deflation(Arc::new(ProportionalDeflation::default()))
    }

    fn vm(id: u64, cores: f64, priority: f64) -> VmSpec {
        VmSpec::deflatable(
            VmId(id),
            VmClass::Interactive,
            ResourceVector::cpu_mem(cores * 1000.0, 8_192.0),
        )
        .with_priority(Priority::new(priority))
    }

    #[test]
    fn places_vms_across_servers() {
        let mut cluster = small_cluster(deflation_mode());
        for i in 0..4 {
            let result = cluster.place_vm(vm(i, 8.0, 0.5));
            assert!(result.is_placed(), "VM {i} not placed: {result:?}");
        }
        assert!(cluster.check_invariants());
        // 4 × 8 cores over 2 × 16-core servers: both servers are full and
        // balanced.
        let views = cluster.views();
        assert_eq!(views.len(), 2);
        for v in views {
            assert!(v.used.cpu() >= 15_999.0);
        }
        assert_eq!(cluster.counters().attempts(), 4);
        assert_eq!(cluster.counters().rejected, 0);
    }

    #[test]
    fn deflation_mode_overcommits_instead_of_rejecting() {
        let mut cluster = small_cluster(deflation_mode());
        for i in 0..4 {
            assert!(cluster.place_vm(vm(i, 8.0, 0.5)).is_placed());
        }
        // Cluster is full; a fifth VM forces deflation.
        let result = cluster.place_vm(vm(5, 8.0, 0.5));
        assert!(matches!(
            result,
            PlacementResult::PlacedWithDeflation { .. }
        ));
        assert!(cluster.check_invariants());
        assert!(cluster.current_overcommitment() > 0.2);
        assert_eq!(cluster.counters().admitted_with_deflation, 1);
        // The deflated VMs report allocation fractions below 1.
        let fractions = cluster.running_allocation_fractions();
        assert!(fractions.iter().any(|(_, f)| *f < 1.0));
    }

    #[test]
    fn rejects_when_nothing_can_be_reclaimed() {
        let mut cluster = small_cluster(deflation_mode());
        for i in 0..4 {
            let od = VmSpec::on_demand(
                VmId(i),
                VmClass::Unknown,
                ResourceVector::cpu_mem(16_000.0, 32_768.0),
            );
            // Two fit (one per server), two are rejected.
            cluster.place_vm(od);
        }
        let result = cluster.place_vm(vm(10, 4.0, 0.5));
        assert_eq!(result, PlacementResult::Rejected);
        assert!(cluster.counters().rejected >= 1);
    }

    #[test]
    fn preemption_mode_kills_low_priority_vms() {
        let mut cluster = small_cluster(ReclamationMode::Preemption);
        for i in 0..4 {
            assert!(cluster.place_vm(vm(i, 8.0, 0.2)).is_placed());
        }
        let result = cluster.place_vm(vm(10, 8.0, 0.9));
        match result {
            PlacementResult::PlacedWithPreemption { preempted, .. } => {
                assert!(!preempted.is_empty());
                // Preempted VMs are gone from the location map.
                for vm in &preempted {
                    assert!(cluster.locate(*vm).is_none());
                }
            }
            other => panic!("expected preemption, got {other:?}"),
        }
        assert!(cluster.counters().preempted_vms >= 1);
        assert!(cluster.check_invariants());
    }

    #[test]
    fn reclaim_deflates_and_restore_reinflates_residents() {
        let mut cluster = small_cluster(deflation_mode());
        for i in 0..4 {
            assert!(cluster.place_vm(vm(i, 8.0, 0.5)).is_placed());
        }
        // Halve server 0: both servers are full, so nothing can migrate and
        // the residents must be deflated in place.
        let outcome = cluster.reclaim_capacity(ServerId(0), 0.5, 0.0);
        assert!(
            outcome.victims.is_empty(),
            "deflation should absorb: {outcome:?}"
        );
        assert!(cluster.check_invariants());
        assert!((cluster.capacity_fraction(ServerId(0)) - 0.5).abs() < 1e-9);
        assert!(cluster
            .running_allocation_fractions()
            .iter()
            .any(|(_, f)| *f < 1.0 - 1e-9));
        assert_eq!(cluster.transient_counters().reclaim_events, 1);
        assert_eq!(cluster.transient_counters().absorbed_by_deflation, 1);
        // Give it back: everyone reinflates to full.
        cluster.restore_capacity(ServerId(0), 1.0, false, 0.0);
        assert!(cluster
            .running_allocation_fractions()
            .iter()
            .all(|(_, f)| (*f - 1.0).abs() < 1e-6));
    }

    #[test]
    fn restore_hysteresis_defers_reinflation_after_a_recent_reclaim() {
        let policy = RestorePolicy::hysteresis(60.0);
        let mut cluster = small_cluster(deflation_mode()).with_restore_policy(policy);
        assert_eq!(cluster.restore_policy(), policy);
        for i in 0..4 {
            assert!(cluster.place_vm(vm(i, 8.0, 0.5)).is_placed());
        }
        cluster.reclaim_capacity(ServerId(0), 0.5, 0.0);
        assert!(cluster
            .running_allocation_fractions()
            .iter()
            .any(|(_, f)| *f < 1.0 - 1e-9));
        // A restitution 10 s after the reclaim is inside the hysteresis
        // window: capacity returns, residents stay deflated.
        cluster.restore_capacity(ServerId(0), 1.0, false, 10.0);
        assert!((cluster.capacity_fraction(ServerId(0)) - 1.0).abs() < 1e-9);
        assert!(cluster
            .running_allocation_fractions()
            .iter()
            .any(|(_, f)| *f < 1.0 - 1e-9));
        // A restitution outside the window reinflates fully.
        cluster.restore_capacity(ServerId(0), 1.0, false, 100.0);
        assert!(cluster
            .running_allocation_fractions()
            .iter()
            .all(|(_, f)| (*f - 1.0).abs() < 1e-6));
        assert!(cluster.check_invariants());
    }

    #[test]
    fn spread_out_restores_reinflate_geometrically() {
        let mut cluster =
            small_cluster(deflation_mode()).with_restore_policy(RestorePolicy::spread(0.5));
        for i in 0..4 {
            assert!(cluster.place_vm(vm(i, 8.0, 0.5)).is_placed());
        }
        cluster.reclaim_capacity(ServerId(0), 0.5, 0.0);
        let deflated: f64 = cluster
            .allocation_fractions_on(ServerId(0))
            .iter()
            .map(|(_, f)| *f)
            .sum();
        // One restitution returns only half the free room.
        cluster.restore_capacity(ServerId(0), 1.0, false, 100.0);
        let after_one: f64 = cluster
            .allocation_fractions_on(ServerId(0))
            .iter()
            .map(|(_, f)| *f)
            .sum();
        assert!(after_one > deflated + 1e-6, "some room came back");
        assert!(
            after_one < 2.0 - 1e-6,
            "full reinflation must take several events, got {after_one}"
        );
        // Repeated restitutions converge towards full size.
        for k in 1..=6 {
            cluster.restore_capacity(ServerId(0), 1.0, false, 100.0 + k as f64);
        }
        let converged: f64 = cluster
            .allocation_fractions_on(ServerId(0))
            .iter()
            .map(|(_, f)| *f)
            .sum();
        assert!(converged > 1.95, "converged sum {converged}");
        assert!(cluster.check_invariants());
    }

    #[test]
    fn parked_replicas_are_never_migration_candidates() {
        // First-fit packs both VMs onto server 0 of a 3-server cluster.
        let config = ClusterConfig {
            num_servers: 3,
            server_capacity: ResourceVector::cpu_mem(16_000.0, 32_768.0),
            placement: PlacementKind::FirstFit,
            partitions: PartitionScheme::None,
            mechanism: DeflationMechanism::Transparent,
        };
        let mut cluster = ClusterManager::new(&config, ReclamationMode::MigrationOnly);
        assert!(cluster.place_vm(vm(1, 8.0, 0.5)).is_placed());
        assert!(cluster.place_vm(vm(2, 8.0, 0.5)).is_placed());
        // Park VM 1: most-deflated resident by construction.
        assert!(cluster.park_replica(VmId(1), 0.1).is_some());
        // Reclaim server 0 below the pair's footprint: migration must
        // skip the parked replica and move VM 2 instead.
        let outcome = cluster.reclaim_capacity(ServerId(0), 0.5, 0.0);
        assert!(outcome.victims.is_empty(), "{outcome:?}");
        assert_eq!(cluster.locate(VmId(1)), Some(ServerId(0)));
        assert_ne!(cluster.locate(VmId(2)), Some(ServerId(0)));
        let d1 = cluster.controllers[0].server().domain(VmId(1)).unwrap();
        assert!(d1.is_parked(), "the park must survive the reclamation");
        assert!(
            d1.effective_allocation().cpu() <= 1600.0 + 1e-6,
            "the parked sliver must not reinflate"
        );
        assert!(cluster.check_invariants());
    }

    #[test]
    fn disguised_reclamation_opens_the_hysteresis_window() {
        let mut cluster =
            small_cluster(deflation_mode()).with_restore_policy(RestorePolicy::hysteresis(60.0));
        for i in 0..4 {
            assert!(cluster.place_vm(vm(i, 8.0, 0.5)).is_placed());
        }
        // A "restore" below usage at t=100 squeezes like a reclamation…
        cluster.restore_capacity(ServerId(0), 0.5, false, 100.0);
        assert!(cluster
            .running_allocation_fractions()
            .iter()
            .any(|(_, f)| *f < 1.0 - 1e-9));
        // …so a true restitution one second later is inside the window:
        // residents must stay deflated, not bounce straight back up.
        cluster.restore_capacity(ServerId(0), 1.0, false, 101.0);
        assert!(cluster
            .running_allocation_fractions()
            .iter()
            .any(|(_, f)| *f < 1.0 - 1e-9));
        // Outside the window they reinflate.
        cluster.restore_capacity(ServerId(0), 1.0, false, 200.0);
        assert!(cluster
            .running_allocation_fractions()
            .iter()
            .all(|(_, f)| (*f - 1.0).abs() < 1e-6));
    }

    #[test]
    fn restore_below_usage_behaves_like_reclaim() {
        let mut cluster = small_cluster(deflation_mode());
        for i in 0..4 {
            assert!(cluster.place_vm(vm(i, 8.0, 0.5)).is_placed());
        }
        // A "restore" to half capacity while residents use all of it is a
        // reclamation in disguise: the invariant must still hold afterwards.
        let outcome = cluster.restore_capacity(ServerId(0), 0.5, false, 0.0);
        assert!(cluster.check_invariants());
        assert!(outcome.victims.is_empty());
        assert!(cluster
            .running_allocation_fractions()
            .iter()
            .any(|(_, f)| *f < 1.0 - 1e-9));
    }

    #[test]
    fn departures_reinflate_and_allow_reuse() {
        let mut cluster = small_cluster(deflation_mode());
        for i in 0..5 {
            assert!(cluster.place_vm(vm(i, 8.0, 0.5)).is_placed());
        }
        // Remove two VMs; the rest should reinflate back to full size.
        cluster.remove_vm(VmId(0)).unwrap();
        cluster.remove_vm(VmId(1)).unwrap();
        let fractions = cluster.running_allocation_fractions();
        assert_eq!(fractions.len(), 3);
        assert!(fractions.iter().all(|(_, f)| (*f - 1.0).abs() < 1e-6));
        // Removing an unknown VM errors.
        assert!(cluster.remove_vm(VmId(99)).is_err());
    }

    #[test]
    fn locate_and_allocation_fraction() {
        let mut cluster = small_cluster(deflation_mode());
        cluster.place_vm(vm(1, 4.0, 0.5));
        assert!(cluster.locate(VmId(1)).is_some());
        assert_eq!(cluster.cpu_allocation_fraction(VmId(1)), Some(1.0));
        assert_eq!(cluster.cpu_allocation_fraction(VmId(42)), None);
    }

    /// A slow-but-unconstrained cost model: 100 MiB/s links, no dirty-page
    /// overhead, no floor, one transfer slot per server, no deadline.
    fn slow_model() -> MigrationCostModel {
        MigrationCostModel {
            link_bandwidth_mbps: 100.0,
            dirty_page_overhead: 1.0,
            setup_floor_secs: 0.0,
            per_server_bandwidth_mbps: 100.0,
            reclaim_deadline_secs: f64::INFINITY,
            ..MigrationCostModel::instant()
        }
    }

    #[test]
    fn costed_migration_is_asynchronous_and_lands_on_completion() {
        let mut cluster =
            small_cluster(ReclamationMode::MigrationOnly).with_migration_cost(slow_model());
        assert!(cluster.place_vm(vm(1, 8.0, 0.5)).is_placed());
        let source = cluster.locate(VmId(1)).unwrap();
        let dest_expected = ServerId(1 - source.0);
        // Reclaim the VM's server below its footprint: it must migrate, and
        // with a costed model the transfer is in flight, not instant.
        let outcome = cluster.reclaim_capacity(source, 0.4, 100.0);
        assert_eq!(outcome.started.len(), 1, "outcome: {outcome:?}");
        assert!(outcome.migrated.is_empty());
        assert!(outcome.victims.is_empty());
        let pending = outcome.started[0];
        assert_eq!(pending.vm, VmId(1));
        assert_eq!(pending.from, source);
        assert_eq!(pending.to, dest_expected);
        assert_eq!(pending.start_secs, 100.0);
        // Fresh 8192 MiB guest: hot footprint 4096 MiB at 100 MiB/s.
        assert!((pending.event_secs - (100.0 + 40.96)).abs() < 1e-9);
        // In flight: accounted on both ends, located on the source, and
        // reported exactly once.
        assert_eq!(cluster.in_flight_count(), 1);
        assert!(cluster.is_in_flight(VmId(1)));
        assert_eq!(cluster.locate(VmId(1)), Some(source));
        assert_eq!(cluster.running_allocation_fractions().len(), 1);
        assert!(cluster.check_invariants());
        assert_eq!(cluster.transient_counters().migrations, 0);
        // Completion lands the VM on the destination with its cost.
        let done = cluster.complete_migration(pending.id, pending.event_secs);
        assert_eq!(done.migrated.len(), 1);
        assert!((done.migrated[0].duration_secs - 40.96).abs() < 1e-9);
        assert!((done.migrated[0].volume_mb - 4096.0).abs() < 1e-9);
        assert!(!done.migrated[0].back);
        assert_eq!(cluster.locate(VmId(1)), Some(dest_expected));
        assert_eq!(cluster.in_flight_count(), 0);
        assert_eq!(cluster.transient_counters().migrations, 1);
        assert!(cluster.check_invariants());
        // A stale completion id is a no-op.
        assert_eq!(
            cluster.complete_migration(pending.id, 1e9),
            CapacityChangeOutcome::default()
        );
    }

    #[test]
    fn migration_aborts_when_deadline_expires_mid_transfer() {
        let model = slow_model().with_deadline_secs(10.0);
        let mut cluster = small_cluster(ReclamationMode::MigrationOnly).with_migration_cost(model);
        assert!(cluster.place_vm(vm(1, 8.0, 0.5)).is_placed());
        let source = cluster.locate(VmId(1)).unwrap();
        let outcome = cluster.reclaim_capacity(source, 0.4, 100.0);
        assert_eq!(outcome.started.len(), 1);
        let pending = outcome.started[0];
        // The ~41 s transfer cannot finish inside the 10 s deadline: the
        // completion event fires at the deadline instead.
        assert!((pending.event_secs - 110.0).abs() < 1e-9);
        let done = cluster.complete_migration(pending.id, pending.event_secs);
        assert_eq!(done.victims, vec![VmId(1)]);
        assert!(done.migrated.is_empty());
        assert_eq!(cluster.transient_counters().migration_aborts, 1);
        assert_eq!(cluster.transient_counters().reclamation_victims, 1);
        assert_eq!(cluster.locate(VmId(1)), None);
        assert_eq!(cluster.running_allocation_fractions().len(), 0);
        assert!(cluster.check_invariants());
    }

    #[test]
    fn bandwidth_budget_queues_excess_transfers() {
        let config = ClusterConfig {
            num_servers: 3,
            server_capacity: ResourceVector::cpu_mem(16_000.0, 32_768.0),
            placement: PlacementKind::FirstFit,
            partitions: PartitionScheme::None,
            mechanism: DeflationMechanism::Transparent,
        };
        let mut cluster = ClusterManager::new(&config, ReclamationMode::MigrationOnly)
            .with_migration_cost(slow_model());
        // First-fit packs both VMs onto server 0.
        assert!(cluster.place_vm(vm(1, 8.0, 0.5)).is_placed());
        assert!(cluster.place_vm(vm(2, 8.0, 0.5)).is_placed());
        assert_eq!(cluster.locate(VmId(1)), Some(ServerId(0)));
        assert_eq!(cluster.locate(VmId(2)), Some(ServerId(0)));
        // Reclaim almost everything: both VMs must migrate, but the budget
        // allows only one concurrent transfer per server, so the second
        // starts when the first finishes.
        let outcome = cluster.reclaim_capacity(ServerId(0), 0.1, 0.0);
        assert_eq!(outcome.started.len(), 2, "outcome: {outcome:?}");
        let (first, second) = (outcome.started[0], outcome.started[1]);
        assert_eq!(first.start_secs, 0.0);
        assert!(
            (second.start_secs - first.event_secs).abs() < 1e-9,
            "second transfer must queue behind the first: {outcome:?}"
        );
        assert!(cluster.check_invariants());
        for pending in [first, second] {
            cluster.complete_migration(pending.id, pending.event_secs);
        }
        assert_eq!(cluster.transient_counters().migrations, 2);
        assert_eq!(cluster.transient_counters().migration_aborts, 0);
        assert!(cluster.check_invariants());
    }

    #[test]
    fn reclaim_cancels_inbound_migrate_back_without_evicting() {
        let mut cluster =
            small_cluster(ReclamationMode::MigrationOnly).with_migration_cost(slow_model());
        assert!(cluster.place_vm(vm(1, 8.0, 0.5)).is_placed());
        let origin = cluster.locate(VmId(1)).unwrap();
        let refuge = ServerId(1 - origin.0);
        // Displace the VM, complete the transfer, then restore the origin
        // so a migrate-back gets in flight.
        let out = cluster.reclaim_capacity(origin, 0.4, 0.0);
        let forward = out.started[0];
        cluster.complete_migration(forward.id, forward.event_secs);
        assert_eq!(cluster.locate(VmId(1)), Some(refuge));
        let restore = cluster.restore_capacity(origin, 1.0, true, 1000.0);
        assert_eq!(restore.started.len(), 1, "migrate-back must be costed");
        let back = restore.started[0];
        assert_eq!(back.to, origin);
        // A new reclamation at the origin hits only the inbound
        // reservation: the transfer is cancelled but the VM — running
        // healthily on the other server — survives.
        let reclaim = cluster.reclaim_capacity(origin, 0.3, 1001.0);
        assert!(
            reclaim.victims.is_empty(),
            "cancelling a reservation must not evict: {reclaim:?}"
        );
        assert_eq!(cluster.locate(VmId(1)), Some(refuge));
        assert_eq!(cluster.in_flight_count(), 0);
        assert_eq!(cluster.transient_counters().migration_aborts, 1);
        assert_eq!(cluster.transient_counters().reclamation_victims, 0);
        assert_eq!(cluster.transient_counters().migrations_back, 0);
        assert_eq!(cluster.running_allocation_fractions().len(), 1);
        assert!(cluster.check_invariants());
        // The stale completion event is a no-op.
        assert_eq!(
            cluster.complete_migration(back.id, back.event_secs),
            CapacityChangeOutcome::default()
        );
    }

    #[test]
    fn zero_bandwidth_falls_back_to_eviction() {
        let model = MigrationCostModel {
            link_bandwidth_mbps: 0.0,
            ..slow_model()
        };
        let mut cluster = small_cluster(ReclamationMode::MigrationOnly).with_migration_cost(model);
        assert!(cluster.place_vm(vm(1, 8.0, 0.5)).is_placed());
        let source = cluster.locate(VmId(1)).unwrap();
        let outcome = cluster.reclaim_capacity(source, 0.4, 0.0);
        // No link: migration impossible, the VM is evicted instead.
        assert!(outcome.started.is_empty());
        assert_eq!(outcome.victims, vec![VmId(1)]);
        assert_eq!(cluster.transient_counters().reclamation_victims, 1);
        assert!(cluster.check_invariants());
    }

    #[test]
    fn departure_mid_transfer_cancels_the_migration() {
        let mut cluster =
            small_cluster(ReclamationMode::MigrationOnly).with_migration_cost(slow_model());
        assert!(cluster.place_vm(vm(1, 8.0, 0.5)).is_placed());
        let source = cluster.locate(VmId(1)).unwrap();
        let outcome = cluster.reclaim_capacity(source, 0.4, 0.0);
        let pending = outcome.started[0];
        // The VM departs while its pages are still being copied.
        cluster.remove_vm(VmId(1)).unwrap();
        assert_eq!(cluster.in_flight_count(), 0);
        assert!(cluster.servers().all(|s| s.domain_count() == 0));
        // The already-scheduled completion event resolves to a no-op.
        assert_eq!(
            cluster.complete_migration(pending.id, pending.event_secs),
            CapacityChangeOutcome::default()
        );
        assert!(cluster.check_invariants());
    }

    #[test]
    fn edf_rejects_doomed_transfers_instead_of_aborting_them() {
        // Two VMs on one server, one transfer slot, and a deadline that
        // only fits one ~41 s copy: FIFO books both (the second aborts at
        // the deadline); EDF refuses the second up front.
        let config = ClusterConfig {
            num_servers: 3,
            server_capacity: ResourceVector::cpu_mem(16_000.0, 32_768.0),
            placement: PlacementKind::FirstFit,
            partitions: PartitionScheme::None,
            mechanism: DeflationMechanism::Transparent,
        };
        let model = slow_model().with_deadline_secs(50.0);
        let run = |policy: TransferPolicy| {
            let mut cluster = ClusterManager::new(&config, ReclamationMode::MigrationOnly)
                .with_migration_cost(model)
                .with_transfer_policy(policy);
            assert!(cluster.place_vm(vm(1, 8.0, 0.5)).is_placed());
            assert!(cluster.place_vm(vm(2, 8.0, 0.5)).is_placed());
            let outcome = cluster.reclaim_capacity(ServerId(0), 0.1, 0.0);
            for pending in outcome.started.clone() {
                cluster.complete_migration(pending.id, pending.event_secs);
            }
            (cluster, outcome)
        };

        let (fifo, fifo_out) = run(TransferPolicy::fifo());
        assert_eq!(fifo_out.started.len(), 2);
        assert_eq!(fifo.transient_counters().migration_aborts, 1);
        assert_eq!(fifo.transient_counters().migration_rejections, 0);
        assert_eq!(fifo.scheduler_stats().rejected, 0);

        let (edf, edf_out) = run(TransferPolicy::edf());
        assert_eq!(edf_out.started.len(), 1, "outcome: {edf_out:?}");
        assert_eq!(edf.transient_counters().migration_aborts, 0);
        assert_eq!(edf.transient_counters().migration_rejections, 1);
        assert_eq!(edf.scheduler_stats().rejected, 1);
        // Both policies lose the second VM — but EDF evicts it immediately
        // without spending 9 seconds of link time on a doomed copy, and
        // records no abort.
        assert_eq!(edf.transient_counters().reclamation_victims, 1);
        assert!(edf.check_invariants());
    }

    #[test]
    fn smallest_first_reorders_a_batch_by_volume() {
        let config = ClusterConfig {
            num_servers: 3,
            server_capacity: ResourceVector::cpu_mem(16_000.0, 65_536.0),
            placement: PlacementKind::FirstFit,
            partitions: PartitionScheme::None,
            mechanism: DeflationMechanism::Transparent,
        };
        let mut cluster = ClusterManager::new(&config, ReclamationMode::MigrationOnly)
            .with_migration_cost(slow_model())
            .with_transfer_policy(TransferPolicy::smallest_first());
        // A big VM (lower id → selected first) and a small one.
        let big = VmSpec::deflatable(
            VmId(1),
            VmClass::Interactive,
            ResourceVector::cpu_mem(8_000.0, 16_384.0),
        );
        let small = VmSpec::deflatable(
            VmId(2),
            VmClass::Interactive,
            ResourceVector::cpu_mem(8_000.0, 4_096.0),
        );
        assert!(cluster.place_vm(big).is_placed());
        assert!(cluster.place_vm(small).is_placed());
        let outcome = cluster.reclaim_capacity(ServerId(0), 0.05, 0.0);
        assert_eq!(outcome.started.len(), 2);
        let by_vm = |id: u64| {
            outcome
                .started
                .iter()
                .find(|p| p.vm == VmId(id))
                .copied()
                .unwrap()
        };
        // The small copy gets the slot first; the big one queues behind it.
        assert_eq!(by_vm(2).start_secs, 0.0);
        assert!((by_vm(1).start_secs - by_vm(2).event_secs).abs() < 1e-9);
        assert!(cluster.check_invariants());
    }

    #[test]
    fn deflate_then_migrate_shrinks_the_copy_under_the_deadline() {
        // One VM whose full hot footprint (4096 MiB at 100 MiB/s ≈ 41 s)
        // blows a 30 s deadline, but whose RSS alone (2048 MiB ≈ 20.5 s)
        // fits. Plain EDF must reject the transfer; EDF + deflate-then-
        // migrate squeezes the cache first and the copy makes it.
        let model = slow_model().with_deadline_secs(30.0);
        let run = |policy: TransferPolicy| {
            let mut cluster = small_cluster(deflation_mode())
                .with_migration_cost(model)
                .with_transfer_policy(policy);
            // A minimum allocation keeps deflation from absorbing the
            // reclamation, forcing the migration rung of the ladder.
            let spec = VmSpec::deflatable(
                VmId(1),
                VmClass::Interactive,
                ResourceVector::cpu_mem(8_000.0, 8_192.0),
            )
            .with_min_allocation(ResourceVector::cpu_mem(6_000.0, 8_192.0));
            assert!(cluster.place_vm(spec).is_placed());
            let source = cluster.locate(VmId(1)).unwrap();
            let outcome = cluster.reclaim_capacity(source, 0.1, 0.0);
            (cluster, outcome)
        };

        let (plain, plain_out) = run(TransferPolicy::edf());
        assert!(
            plain_out.started.is_empty(),
            "a 41 s copy cannot beat a 30 s deadline: {plain_out:?}"
        );
        assert_eq!(plain.transient_counters().migration_rejections, 1);

        let (squeezed, squeezed_out) = run(TransferPolicy::edf().with_deflate_then_migrate(true));
        assert_eq!(squeezed_out.started.len(), 1, "outcome: {squeezed_out:?}");
        let pending = squeezed_out.started[0];
        // Only the RSS crosses the link: 2048 MiB at 100 MiB/s.
        assert!((pending.event_secs - 20.48).abs() < 1e-9);
        assert_eq!(squeezed.transient_counters().migration_rejections, 0);
        assert!(squeezed.check_invariants());
    }

    #[test]
    fn utilization_observations_feed_transfer_estimates() {
        let model = slow_model().with_dirty_rate(50.0, 1.0);
        let mut cluster = small_cluster(ReclamationMode::MigrationOnly).with_migration_cost(model);
        assert!(cluster.place_vm(vm(1, 8.0, 0.5)).is_placed());
        let source = cluster.locate(VmId(1)).unwrap();
        // A busy guest dirties pages at half the link rate: the transfer
        // stretches by 1/(1−0.5) over the idle estimate.
        for _ in 0..8 {
            cluster.observe_vm_utilization(VmId(1), 1.0);
        }
        let outcome = cluster.reclaim_capacity(source, 0.4, 0.0);
        assert_eq!(outcome.started.len(), 1);
        // Idle: 4096/100 = 40.96 s; busy: ×2.
        assert!((outcome.started[0].event_secs - 81.92).abs() < 1e-9);
        assert!(cluster.check_invariants());
    }

    #[test]
    fn names_and_config() {
        assert_eq!(PlacementKind::CosineFitness.name(), "cosine-fitness");
        assert_eq!(PlacementKind::FirstFit.name(), "first-fit");
        assert_eq!(deflation_mode().name(), "proportional-min-aware");
        assert_eq!(ReclamationMode::Preemption.name(), "preemption");
        let cfg = ClusterConfig::paper_default(40);
        assert_eq!(cfg.num_servers, 40);
        assert_eq!(cfg.server_capacity.cpu(), 48_000.0);
    }
}
